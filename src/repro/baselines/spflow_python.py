"""The SPFlow-style Python inference baseline (the paper's 1× reference).

SPFlow performs inference "in Python code" (paper Section I/VI): a
bottom-up evaluation driven by a per-node-type function registry with
dynamic dispatch. This module reproduces that execution model faithfully:

- :func:`log_likelihood_python` — fully interpreted, *per sample*:
  recursive descent with dictionary dispatch, Python arithmetic and
  ``math``-module leaf evaluation. This is the baseline all Fig. 7/8
  speedups are measured against.
- :func:`log_likelihood_batched` — SPFlow's NumPy mode: bottom-up over
  the DAG with one NumPy call per node over the whole batch, still going
  through the dispatch registry and allocating a fresh array per node.

Both support marginalization of NaN-encoded missing features, matching
the reference semantics in :mod:`repro.spn.inference`.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List

import numpy as np

from ..spn.nodes import Categorical, Gaussian, Histogram, Leaf, Node, Product, Sum, topological_order

LOG_2PI = math.log(2.0 * math.pi)
NEG_INF = float("-inf")


# --- per-sample interpreted evaluation -------------------------------------------


def _gaussian_ll(node: Gaussian, value: float) -> float:
    z = (value - node.mean) / node.stdev
    return -0.5 * z * z - math.log(node.stdev) - 0.5 * LOG_2PI


def _categorical_ll(node: Categorical, value: float) -> float:
    idx = int(value)
    if idx < 0:
        idx = 0
    elif idx >= len(node.probabilities):
        idx = len(node.probabilities) - 1
    p = node.probabilities[idx]
    return math.log(p) if p > 0 else NEG_INF


def _histogram_ll(node: Histogram, value: float) -> float:
    bounds = node.bounds
    if value < bounds[0] or value >= bounds[-1]:
        return math.log(Histogram.EPSILON)
    # Linear scan, as in a straightforward Python implementation.
    for i in range(len(node.densities)):
        if value < bounds[i + 1]:
            d = node.densities[i]
            return math.log(d) if d > Histogram.EPSILON else math.log(Histogram.EPSILON)
    return math.log(Histogram.EPSILON)  # pragma: no cover - guarded above


_LEAF_DISPATCH: Dict[type, Callable] = {
    Gaussian: _gaussian_ll,
    Categorical: _categorical_ll,
    Histogram: _histogram_ll,
}


def _eval_sample(node: Node, sample, cache: Dict[int, float], marginal: bool) -> float:
    """Recursive per-sample evaluation with dictionary dispatch."""
    key = id(node)
    cached = cache.get(key)
    if cached is not None:
        return cached
    if isinstance(node, Leaf):
        value = sample[node.variable]
        if marginal and value != value:  # NaN check without numpy
            result = 0.0
        else:
            result = _LEAF_DISPATCH[type(node)](node, value)
    elif isinstance(node, Product):
        result = 0.0
        for child in node.children:
            result += _eval_sample(child, sample, cache, marginal)
    elif isinstance(node, Sum):
        # Per-sample log-sum-exp over the children.
        best = NEG_INF
        terms: List[float] = []
        for child, weight in zip(node.children, node.weights):
            term = (
                math.log(weight) if weight > 0 else NEG_INF
            ) + _eval_sample(child, sample, cache, marginal)
            terms.append(term)
            if term > best:
                best = term
        if best == NEG_INF:
            result = NEG_INF
        else:
            acc = 0.0
            for term in terms:
                acc += math.exp(term - best)
            result = best + math.log(acc)
    else:  # pragma: no cover - closed hierarchy
        raise TypeError(f"unknown node type {type(node).__name__}")
    cache[key] = result
    return result


def log_likelihood_python(root: Node, data: np.ndarray, marginal: bool = None) -> np.ndarray:
    """Interpreted per-sample inference (the paper's SPFlow baseline)."""
    data = np.asarray(data, dtype=np.float64)
    if marginal is None:
        marginal = bool(np.isnan(data).any())
    rows = data.tolist()
    out = np.empty(len(rows))
    for i, sample in enumerate(rows):
        out[i] = _eval_sample(root, sample, {}, marginal)
    return out


# --- batched numpy evaluation (SPFlow's numpy mode) --------------------------------

try:  # SPFlow evaluates Gaussian leaves through scipy.stats, which carries
    # substantial per-call overhead — part of why compiled code wins big.
    from scipy.stats import norm as _scipy_norm
except ImportError:  # pragma: no cover - scipy is a soft dependency
    _scipy_norm = None


def _batched_leaf(node: Leaf, column: np.ndarray, marginal: bool) -> np.ndarray:
    def density(values: np.ndarray) -> np.ndarray:
        if isinstance(node, Gaussian) and _scipy_norm is not None:
            return _scipy_norm.logpdf(values, loc=node.mean, scale=node.stdev)
        return node.log_density(values)

    if marginal:
        missing = np.isnan(column)
        safe = np.where(missing, 0.0, column)
        ll = density(safe)
        return np.where(missing, 0.0, ll)
    return density(column)


def _batched_product(values: List[np.ndarray]) -> np.ndarray:
    acc = values[0].copy()
    for value in values[1:]:
        acc = acc + value  # fresh allocation per child, as SPFlow does
    return acc


def _batched_sum(node: Sum, values: List[np.ndarray]) -> np.ndarray:
    stacked = np.stack(values, axis=0)
    with np.errstate(divide="ignore"):
        log_weights = np.log(np.asarray(node.weights))[:, None]
    shifted = stacked + log_weights
    peak = np.max(shifted, axis=0)
    with np.errstate(invalid="ignore"):
        total = np.sum(np.exp(shifted - peak), axis=0)
    result = peak + np.log(total)
    return np.where(np.isneginf(peak), -np.inf, result)


def log_likelihood_batched(root: Node, data: np.ndarray, marginal: bool = None) -> np.ndarray:
    """Bottom-up batched NumPy inference with per-node dispatch."""
    data = np.asarray(data, dtype=np.float64)
    if marginal is None:
        marginal = bool(np.isnan(data).any())
    values: Dict[int, np.ndarray] = {}
    for node in topological_order(root):
        if isinstance(node, Leaf):
            values[id(node)] = _batched_leaf(node, data[:, node.variable], marginal)
        elif isinstance(node, Product):
            values[id(node)] = _batched_product([values[id(c)] for c in node.children])
        elif isinstance(node, Sum):
            values[id(node)] = _batched_sum(node, [values[id(c)] for c in node.children])
        else:  # pragma: no cover
            raise TypeError(f"unknown node type {type(node).__name__}")
    return values[id(root)]
