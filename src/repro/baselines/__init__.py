"""Baseline inference implementations the paper compares against."""

from .rat_tensorized import TensorizedRatExecutor, TensorizedRatGPU
from .spflow_python import log_likelihood_batched, log_likelihood_python
from .tfgraph import (
    GPUSession,
    MarginalizationUnsupported,
    Session,
    TFGPUModel,
    TFGraph,
    translate_to_graph,
)

__all__ = [
    "TensorizedRatExecutor",
    "TensorizedRatGPU",
    "log_likelihood_batched",
    "log_likelihood_python",
    "GPUSession",
    "MarginalizationUnsupported",
    "Session",
    "TFGPUModel",
    "TFGraph",
    "translate_to_graph",
]
