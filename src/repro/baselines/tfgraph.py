"""Tensorflow-graph execution baseline (paper Sections V-A2 and VI).

SPFlow can translate an SPN into a Tensorflow graph, which is then
"broken down into individual operations that are launched through the
Tensorflow runtime" — the paper's explanation for the modest speedup.
This module reproduces that execution model:

- :func:`translate_to_graph` converts an SPN into an explicit dataflow
  graph of typed ops (the translation step whose time the paper reports
  separately, avg. 8.6 s for the speaker SPNs),
- :class:`Session` interprets the graph one op at a time, with the
  per-op machinery a graph runtime pays: registry dispatch, tensor
  wrapping, dtype/shape validation and a fresh output allocation per op.
- :class:`GPUSession` adds the paper's TF-GPU variant: same results,
  timed by a device model where *every graph op is a separate kernel
  launch* — which is exactly why per-node graphs gain so little on GPU
  (Fig. 7) while the tensorized RAT implementation does well (V-B2).

As in SPFlow, the translated graph does **not** support marginalization
(paper: no Tensorflow bars in Fig. 8); NaN inputs raise.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..spn.nodes import Categorical, Gaussian, Histogram, Leaf, Node, Product, Sum, topological_order


class MarginalizationUnsupported(NotImplementedError):
    """The TF-graph translation cannot marginalize missing features."""


# --- graph representation ---------------------------------------------------------


@dataclass
class TFTensor:
    """A runtime tensor: payload + validated metadata."""

    data: np.ndarray
    dtype: np.dtype
    shape: Tuple[int, ...]

    @classmethod
    def wrap(cls, data: np.ndarray) -> "TFTensor":
        data = np.asarray(data)
        return cls(data, data.dtype, data.shape)


@dataclass
class TFOp:
    """One graph node: an op kind, input op ids and compile-time params."""

    op_id: int
    kind: str
    inputs: List[int]
    params: Dict[str, object] = field(default_factory=dict)


@dataclass
class TFGraph:
    ops: List[TFOp]
    output: int
    num_features: int

    @property
    def num_ops(self) -> int:
        return len(self.ops)


def translate_to_graph(root: Node) -> TFGraph:
    """Translate an SPN into a TF-style dataflow graph of *primitive* ops.

    Mirrors SPFlow's ``spn_to_tf_graph``: the paper emphasizes that "the
    graph is still broken down into individual operations that are
    launched through the Tensorflow runtime", so each SPN node expands to
    its primitive TF ops — a Gaussian log-pdf becomes
    sub/div/square/mul/add, a weighted sum becomes
    stack/bias-add/reduce_logsumexp, and so on.
    """
    ops: List[TFOp] = []
    op_of_node: Dict[int, int] = {}
    column_gather: Dict[int, int] = {}

    def add(kind: str, inputs: List[int], **params) -> int:
        op = TFOp(len(ops), kind, inputs, params)
        ops.append(op)
        return op.op_id

    for node in topological_order(root):
        if isinstance(node, Leaf):
            gather = column_gather.get(node.variable)
            if gather is None:
                gather = add("gather_column", [], column=node.variable)
                column_gather[node.variable] = gather
            if isinstance(node, Gaussian):
                # log N(x) = -0.5 * ((x - m) / s)^2 + (-log s - 0.5 log 2pi)
                centered = add("sub_scalar", [gather], value=node.mean)
                z = add("div_scalar", [centered], value=node.stdev)
                squared = add("square", [z])
                scaled = add("mul_scalar", [squared], value=-0.5)
                op_id = add(
                    "add_scalar",
                    [scaled],
                    value=-math.log(node.stdev) - 0.5 * math.log(2 * math.pi),
                )
            elif isinstance(node, Categorical):
                cast = add("cast_int", [gather])
                clipped = add(
                    "clip", [cast], lo=0, hi=len(node.probabilities) - 1
                )
                probs = add(
                    "gather_table",
                    [clipped],
                    table=np.asarray(node.probabilities),
                )
                op_id = add("log_op", [probs])
            elif isinstance(node, Histogram):
                buckets = add(
                    "bucketize", [gather], bounds=np.asarray(node.bounds)
                )
                gathered = add(
                    "gather_table",
                    [buckets],
                    table=np.asarray(node.densities),
                )
                masked = add(
                    "mask_out_of_range",
                    [gathered, gather],
                    lo=node.bounds[0],
                    hi=node.bounds[-1],
                    fill=Histogram.EPSILON,
                )
                op_id = add("log_op", [masked])
            else:  # pragma: no cover
                raise TypeError(f"unknown leaf {type(node).__name__}")
        elif isinstance(node, Product):
            op_id = add("add_n", [op_of_node[id(c)] for c in node.children])
        elif isinstance(node, Sum):
            stacked = add("stack", [op_of_node[id(c)] for c in node.children])
            biased = add(
                "bias_add",
                [stacked],
                bias=np.log(np.asarray(node.weights)),
            )
            op_id = add("reduce_logsumexp", [biased])
        else:  # pragma: no cover
            raise TypeError(f"unknown node {type(node).__name__}")
        op_of_node[id(node)] = op_id

    return TFGraph(ops, op_of_node[id(root)], len(root.scope))


# --- op kernels ---------------------------------------------------------------------


def _kernel_gather(inputs, params, feed) -> np.ndarray:
    return np.ascontiguousarray(feed[:, params["column"]])


def _kernel_sub_scalar(inputs, params, feed) -> np.ndarray:
    return inputs[0] - params["value"]


def _kernel_add_scalar(inputs, params, feed) -> np.ndarray:
    return inputs[0] + params["value"]


def _kernel_mul_scalar(inputs, params, feed) -> np.ndarray:
    return inputs[0] * params["value"]


def _kernel_div_scalar(inputs, params, feed) -> np.ndarray:
    return inputs[0] / params["value"]


def _kernel_square(inputs, params, feed) -> np.ndarray:
    return inputs[0] * inputs[0]


def _kernel_cast_int(inputs, params, feed) -> np.ndarray:
    return inputs[0].astype(np.int64)


def _kernel_clip(inputs, params, feed) -> np.ndarray:
    return np.clip(inputs[0], params["lo"], params["hi"])


def _kernel_gather_table(inputs, params, feed) -> np.ndarray:
    return params["table"][inputs[0]]


def _kernel_log(inputs, params, feed) -> np.ndarray:
    with np.errstate(divide="ignore"):
        return np.log(np.maximum(inputs[0], 0.0))


def _kernel_bucketize(inputs, params, feed) -> np.ndarray:
    bounds = params["bounds"]
    idx = np.searchsorted(bounds, inputs[0], side="right") - 1
    return np.clip(idx, 0, len(bounds) - 2)


def _kernel_mask_out_of_range(inputs, params, feed) -> np.ndarray:
    values, x = inputs
    out = (x < params["lo"]) | (x >= params["hi"])
    fill = params["fill"]
    return np.where(out, fill, np.maximum(values, fill))


def _kernel_add_n(inputs, params, feed) -> np.ndarray:
    acc = inputs[0].copy()
    for value in inputs[1:]:
        acc = acc + value
    return acc


def _kernel_stack(inputs, params, feed) -> np.ndarray:
    return np.stack(inputs, axis=0)


def _kernel_bias_add(inputs, params, feed) -> np.ndarray:
    return inputs[0] + params["bias"][:, None]


def _kernel_reduce_logsumexp(inputs, params, feed) -> np.ndarray:
    stacked = inputs[0]
    peak = np.max(stacked, axis=0)
    with np.errstate(invalid="ignore"):
        total = np.sum(np.exp(stacked - peak), axis=0)
    result = peak + np.log(total)
    return np.where(np.isneginf(peak), -np.inf, result)


_KERNEL_REGISTRY: Dict[str, Callable] = {
    "gather_column": _kernel_gather,
    "sub_scalar": _kernel_sub_scalar,
    "add_scalar": _kernel_add_scalar,
    "mul_scalar": _kernel_mul_scalar,
    "div_scalar": _kernel_div_scalar,
    "square": _kernel_square,
    "cast_int": _kernel_cast_int,
    "clip": _kernel_clip,
    "gather_table": _kernel_gather_table,
    "log_op": _kernel_log,
    "bucketize": _kernel_bucketize,
    "mask_out_of_range": _kernel_mask_out_of_range,
    "add_n": _kernel_add_n,
    "stack": _kernel_stack,
    "bias_add": _kernel_bias_add,
    "reduce_logsumexp": _kernel_reduce_logsumexp,
}


# --- sessions -------------------------------------------------------------------------


@dataclass(frozen=True)
class TFRuntimeModel:
    """Timing model for the native TF executor's per-op overhead.

    The arithmetic of each op is measured (NumPy); the C++ executor
    machinery that does not exist in this reproduction — kernel launch
    through the executor, op-kernel context setup, inter-op thread-pool
    synchronization — is modeled as a fixed per-op cost, expressed in the
    same Python-world units as the GPU device model (DESIGN.md). This is
    the overhead the paper blames for Tensorflow's modest speedup on
    per-node SPN graphs.
    """

    per_op_overhead: float = 25e-6


class Session:
    """A graph interpreter with per-op runtime dispatch (TF-CPU model).

    Faithful to how a dataflow runtime executes a graph one op at a
    time: a dependency-counted ready queue schedules ops, every executed
    op goes through kernel-registry dispatch, input validation, output
    shape inference, tensor wrapping, and reference-counted release of
    dead intermediate tensors. On top of the measured interpretation
    time, :attr:`last_simulated_seconds` adds the modeled native-executor
    dispatch cost per op (:class:`TFRuntimeModel`).
    """

    def __init__(self, graph: TFGraph, runtime_model: Optional[TFRuntimeModel] = None):
        self.graph = graph
        self.runtime_model = runtime_model or TFRuntimeModel()
        self.ops_executed = 0
        self.last_simulated_seconds: Optional[float] = None
        # Static analysis done once at session creation (like TF's graph
        # pruning/placement): consumer lists and initial ready set.
        self._consumers: Dict[int, List[int]] = {op.op_id: [] for op in graph.ops}
        for op in graph.ops:
            for input_id in op.inputs:
                self._consumers[input_id].append(op.op_id)

    def _infer_shape(self, op: TFOp, inputs: List[np.ndarray], batch: int):
        """Output shape inference + validation, as the runtime does per op."""
        for tensor in inputs:
            if tensor.shape[-1] != batch:
                raise RuntimeError(
                    f"op {op.op_id} ({op.kind}): tensor batch mismatch"
                )
        if op.kind == "stack":
            return (len(inputs), batch)
        if op.kind == "bias_add":
            return inputs[0].shape
        return (batch,)

    def run(self, feed: np.ndarray) -> np.ndarray:
        feed = np.asarray(feed, dtype=np.float64)
        if feed.ndim != 2 or feed.shape[1] != self.graph.num_features:
            raise ValueError(
                f"feed must have shape [batch, {self.graph.num_features}]"
            )
        if np.isnan(feed).any():
            raise MarginalizationUnsupported(
                "the Tensorflow graph translation does not support the "
                "marginalization needed for missing features"
            )
        run_start = time.perf_counter()
        batch = feed.shape[0]
        ops = self.graph.ops
        pending = {op.op_id: len(op.inputs) for op in ops}
        refcount = {op_id: len(users) for op_id, users in self._consumers.items()}
        refcount[self.graph.output] = refcount.get(self.graph.output, 0) + 1
        ready: List[int] = [op.op_id for op in ops if not op.inputs]
        store: Dict[int, TFTensor] = {}

        executed = 0
        while ready:
            op_id = ready.pop()
            op = ops[op_id]
            kernel = _KERNEL_REGISTRY.get(op.kind)
            if kernel is None:
                raise KeyError(f"no kernel registered for op kind '{op.kind}'")
            inputs = [store[input_id].data for input_id in op.inputs]
            expected_shape = self._infer_shape(op, inputs, batch)
            result = kernel(inputs, op.params, feed)
            tensor = TFTensor.wrap(result)
            if tensor.shape != expected_shape:
                raise RuntimeError(
                    f"op {op.op_id} ({op.kind}): inferred {expected_shape}, "
                    f"got {tensor.shape}"
                )
            store[op_id] = tensor
            executed += 1
            # Release dead inputs (reference counting).
            for input_id in op.inputs:
                refcount[input_id] -= 1
                if refcount[input_id] == 0:
                    del store[input_id]
            # Schedule consumers whose dependencies are satisfied.
            for consumer in self._consumers[op_id]:
                pending[consumer] -= 1
                if pending[consumer] == 0:
                    ready.append(consumer)
        self.ops_executed += executed
        if executed != len(ops):
            raise RuntimeError("graph contains unreachable or cyclic ops")
        measured = time.perf_counter() - run_start
        self.last_simulated_seconds = (
            measured + executed * self.runtime_model.per_op_overhead
        )
        return store[self.graph.output].data


@dataclass(frozen=True)
class TFGPUModel:
    """Timing model for the TF-GPU execution of a graph.

    Calibrated in the same Python-world units as
    :class:`repro.gpusim.device.DeviceSpec`: each graph op is one kernel
    launch (launch-bound for per-node SPN graphs), bulk tensor math runs
    at an effective throughput advantage over host NumPy.
    """

    launch_overhead: float = 60e-6
    compute_scale: float = 0.25
    pcie_bandwidth: float = 6.0e6
    pcie_latency: float = 50e-6


class GPUSession(Session):
    """TF-GPU variant: identical results, device-model timing."""

    def __init__(self, graph: TFGraph, model: Optional[TFGPUModel] = None):
        super().__init__(graph)
        self.model = model or TFGPUModel()
        self.last_simulated_seconds: Optional[float] = None

    def run(self, feed: np.ndarray) -> np.ndarray:
        feed = np.asarray(feed, dtype=np.float64)
        start = time.perf_counter()
        result = super().run(feed)
        measured = time.perf_counter() - start
        model = self.model
        transfers = (
            2 * model.pcie_latency
            + (feed.nbytes + result.nbytes) / model.pcie_bandwidth
        )
        self.last_simulated_seconds = (
            transfers
            + self.graph.num_ops * model.launch_overhead
            + measured * model.compute_scale
        )
        return result
