"""Tensorized RAT-SPN execution (the paper's native-Tensorflow baseline).

RAT-SPNs are "natively implemented in Tensorflow" (Section V-B2): all
ten class heads share one graph and are evaluated in a single run, which
is why Tensorflow is much faster here than on generic per-node SPN
graphs. This executor reproduces that advantage: the shared sub-DAG
(identical across classes — only the head weights differ) is evaluated
exactly once per batch, with batched NumPy per node, producing all class
log-likelihoods in one pass.

For comparison, the SPNC compiler — as in the paper — must compile and
run ten distinct per-class kernels after the conversion to the SPFlow
representation, re-evaluating the shared structure each time.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..spn.nodes import Leaf, Node, Product, Sum, topological_order
from .tfgraph import TFGPUModel


class TensorizedRatExecutor:
    """Evaluates all class heads of a RAT-SPN in one shared pass."""

    def __init__(self, class_roots: Sequence[Node]):
        self.class_roots = list(class_roots)
        # One shared topological order covering every class head.
        seen: Dict[int, Node] = {}
        order: List[Node] = []
        for root in self.class_roots:
            for node in topological_order(root):
                if id(node) not in seen:
                    seen[id(node)] = node
                    order.append(node)
        self.order = order
        self.num_nodes = len(order)

    def log_likelihoods(self, data: np.ndarray) -> np.ndarray:
        """[batch, num_classes] log likelihood matrix, one shared pass."""
        data = np.asarray(data, dtype=np.float64)
        values: Dict[int, np.ndarray] = {}
        for node in self.order:
            if isinstance(node, Leaf):
                values[id(node)] = node.log_density(data[:, node.variable])
            elif isinstance(node, Product):
                acc = values[id(node.children[0])].copy()
                for child in node.children[1:]:
                    acc += values[id(child)]
                values[id(node)] = acc
            elif isinstance(node, Sum):
                stacked = np.stack([values[id(c)] for c in node.children], axis=0)
                with np.errstate(divide="ignore"):
                    logw = np.log(np.asarray(node.weights))[:, None]
                shifted = stacked + logw
                peak = np.max(shifted, axis=0)
                with np.errstate(invalid="ignore"):
                    total = np.sum(np.exp(shifted - peak), axis=0)
                result = peak + np.log(total)
                values[id(node)] = np.where(np.isneginf(peak), -np.inf, result)
            else:  # pragma: no cover
                raise TypeError(f"unknown node {type(node).__name__}")
        return np.stack([values[id(root)] for root in self.class_roots], axis=1)

    def classify(self, data: np.ndarray) -> np.ndarray:
        return np.argmax(self.log_likelihoods(data), axis=1)


class TensorizedRatGPU(TensorizedRatExecutor):
    """TF-GPU variant of the tensorized executor.

    The tensorized graph consists of a modest number of *large* fused
    tensor ops (roughly one per RAT layer), so — unlike the per-node SPN
    graphs — it is compute-bound rather than launch-bound on the GPU.
    Timing uses the shared Python-world device constants.
    """

    def __init__(self, class_roots: Sequence[Node], model: Optional[TFGPUModel] = None,
                 layer_ops: Optional[int] = None):
        super().__init__(class_roots)
        self.model = model or TFGPUModel()
        # One fused kernel per tensorized layer; estimated from DAG depth.
        self.layer_ops = layer_ops if layer_ops is not None else 32
        self.last_simulated_seconds: Optional[float] = None

    def log_likelihoods(self, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data, dtype=np.float64)
        start = time.perf_counter()
        result = super().log_likelihoods(data)
        measured = time.perf_counter() - start
        model = self.model
        transfers = (
            2 * model.pcie_latency
            + (data.nbytes + result.nbytes) / model.pcie_bandwidth
        )
        self.last_simulated_seconds = (
            transfers
            + self.layer_ops * model.launch_overhead
            + measured * model.compute_scale
        )
        return result
