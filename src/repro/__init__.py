"""SPNC reproduction: an MLIR-style compiler for fast SPN inference.

A self-contained Python reproduction of "SPNC: An Open-Source MLIR-Based
Compiler for Fast Sum-Product Network Inference on CPUs and GPUs"
(Sommer, Axenie, Koch — CGO 2022). See README.md for the architecture
overview and DESIGN.md for the substitution policy of the simulated
substrates.

Public entry points:

- :class:`CPUCompiler` / :class:`GPUCompiler` — single-call compile+run,
- :func:`repro.compiler.compile_spn` — the full pipeline with options,
- :mod:`repro.spn` — the SPFlow-equivalent modeling/learning frontend,
- :mod:`repro.baselines` — the interpreted and graph-runtime baselines.
"""

from . import dialects  # registers all dialects for parsing/passes
from .api import CPUCompiler, FallbackWarning, GPUCompiler
from .compiler.pipeline import CompilationResult, CompilerOptions, compile_spn
from .diagnostics import (
    CompilerError,
    DeviceError,
    Diagnostic,
    DiagnosticLog,
    ErrorCode,
    ExecutionError,
    OptionsError,
    PassError,
    Severity,
    StageError,
)
from .spn.nodes import Categorical, Gaussian, Histogram, Node, Product, Sum
from .spn.query import JointProbability

__version__ = "1.0.0"

__all__ = [
    "CPUCompiler",
    "GPUCompiler",
    "FallbackWarning",
    "CompilerError",
    "DeviceError",
    "Diagnostic",
    "DiagnosticLog",
    "ErrorCode",
    "ExecutionError",
    "OptionsError",
    "PassError",
    "Severity",
    "StageError",
    "CompilationResult",
    "CompilerOptions",
    "compile_spn",
    "Categorical",
    "Gaussian",
    "Histogram",
    "Node",
    "Product",
    "Sum",
    "JointProbability",
    "__version__",
]
