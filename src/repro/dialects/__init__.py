"""Dialect definitions: standard dialects plus the two SPN dialects.

Importing this package registers every dialect's operations and types, so
the parser and pass infrastructure can resolve them by name.
"""

from . import arith, func, gpu, hispn, lospn, math_dialect, memref, scf, vector

__all__ = [
    "arith",
    "func",
    "gpu",
    "hispn",
    "lospn",
    "math_dialect",
    "memref",
    "scf",
    "vector",
]
