"""The ``func`` dialect: functions, calls and returns."""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..ir.builtin import ModuleOp
from ..ir.dialect import Dialect
from ..ir.ops import Block, IRError, Operation
from ..ir.traits import Trait
from ..ir.types import Type
from ..ir.value import Value

func = Dialect("func", "Functions, calls and returns")


@func.op
class FuncOp(Operation):
    """A function definition.

    The signature is stored as ``arg_types`` / ``result_types`` attributes
    (tuples of types); the single region's entry block carries matching
    block arguments.
    """

    name = "func.func"
    traits = frozenset(
        {Trait.ISOLATED_FROM_ABOVE, Trait.SINGLE_BLOCK, Trait.FUNCTION_LIKE}
    )

    @classmethod
    def build(
        cls,
        sym_name: str,
        arg_types: Sequence[Type],
        result_types: Sequence[Type] = (),
    ) -> "FuncOp":
        op = cls(
            attributes={
                "sym_name": sym_name,
                "arg_types": tuple(arg_types),
                "result_types": tuple(result_types),
            },
            regions=1,
        )
        op.regions[0].append_block(Block(arg_types))
        return op

    @property
    def sym_name(self) -> str:
        return self.attributes["sym_name"]

    @property
    def arg_types(self) -> tuple:
        return self.attributes["arg_types"]

    @property
    def result_types(self) -> tuple:
        return self.attributes["result_types"]

    @property
    def body(self) -> Block:
        return self.body_block

    def verify_op(self) -> None:
        block = self.body_block
        if tuple(arg.type for arg in block.arguments) != tuple(self.arg_types):
            raise IRError(
                f"func '{self.sym_name}': entry block arguments do not match signature"
            )
        term = block.terminator
        if term is None or term.op_name != ReturnOp.name:
            raise IRError(f"func '{self.sym_name}' must end with func.return")
        if tuple(v.type for v in term.operands) != tuple(self.result_types):
            raise IRError(f"func '{self.sym_name}': return types do not match signature")


@func.op
class ReturnOp(Operation):
    name = "func.return"
    traits = frozenset({Trait.TERMINATOR})

    @classmethod
    def build(cls, values: Sequence[Value] = ()) -> "ReturnOp":
        return cls(operands=list(values))


@func.op
class CallOp(Operation):
    """A direct call to a function symbol in the enclosing module."""

    name = "func.call"

    @classmethod
    def build(
        cls, callee: str, operands: Sequence[Value], result_types: Sequence[Type] = ()
    ) -> "CallOp":
        return cls(
            operands=list(operands),
            result_types=list(result_types),
            attributes={"callee": callee},
        )

    @property
    def callee(self) -> str:
        return self.attributes["callee"]


def lookup_function(module: Operation, sym_name: str) -> Optional[FuncOp]:
    """Find a func.func with the given symbol name in a module."""
    for op in module.body_block.ops:
        if op.op_name == FuncOp.name and op.attributes.get("sym_name") == sym_name:
            return op
    return None


def module_functions(module: Operation) -> List[FuncOp]:
    return [op for op in module.body_block.ops if op.op_name == FuncOp.name]
