"""The ``lo_spn`` dialect (paper Section III-B, Table II).

LoSPN is the lowering target for HiSPN and represents the actual
computation of a query:

- a ``lo_spn.kernel`` is the query entry point (function-like),
- a ``lo_spn.task`` applies its region to every sample of a batch (the
  entry block receives a batch-index argument, like a loop induction
  variable),
- a ``lo_spn.body`` wraps the pure arithmetic of one sample,
- ``batch_extract``/``batch_read`` and ``batch_collect``/``batch_write``
  make the per-sample memory access pattern explicit on tensors/memrefs
  respectively, and
- arithmetic is binarized (``mul``/``add`` take exactly two operands) with
  weighted sums decomposed into mul + add.

Computation in log space is expressed through the ``!lo_spn.log<T>`` type:
values of that type *are* stored as ordinary floats holding log
probabilities, and the type instructs the backend lowering to emit
log-space instruction sequences (add for mul, log-add-exp for add).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

from ..ir.dialect import Dialect
from ..ir.ops import Block, IRError, Operation
from ..ir.traits import Trait
from ..ir.types import (
    FloatType,
    IndexType,
    MemRefType,
    TensorType,
    Type,
    register_dialect_type,
)
from ..ir.value import Value

lospn = Dialect("lo_spn", "Low-level SPN computation with tasks and kernels")


@lospn.type
class LogType(Type):
    """Marks a value as a log-space probability stored in base type T."""

    __slots__ = ("base",)

    def __init__(self, base: Type):
        if not isinstance(base, FloatType):
            raise ValueError("!lo_spn.log requires a float base type")
        self.base = base
        super().__init__((base,))

    def spelling(self) -> str:
        return f"!lo_spn.log<{self.base.spelling()}>"

    @classmethod
    def parse(cls, body: str, parser=None) -> "LogType":
        from ..ir.parser import parse_type_text

        return cls(parse_type_text(body))


register_dialect_type("lo_spn.log", LogType)

ComputationType = Union[FloatType, LogType]


def storage_type(ty: Type) -> Type:
    """The float type actually stored/computed for a computation type."""
    return ty.base if isinstance(ty, LogType) else ty


def is_log_type(ty: Type) -> bool:
    return isinstance(ty, LogType)


@lospn.op
class KernelOp(Operation):
    """Entry point for a compiled query (function-like).

    Before bufferization the kernel takes an input tensor argument and
    returns result tensors; afterwards all arguments are memrefs and
    results are written through output arguments.
    """

    name = "lo_spn.kernel"
    traits = frozenset(
        {Trait.ISOLATED_FROM_ABOVE, Trait.SINGLE_BLOCK, Trait.FUNCTION_LIKE}
    )

    @classmethod
    def build(
        cls,
        sym_name: str,
        arg_types: Sequence[Type],
        result_types: Sequence[Type] = (),
    ) -> "KernelOp":
        op = cls(
            attributes={
                "sym_name": sym_name,
                "arg_types": tuple(arg_types),
                "result_types": tuple(result_types),
            },
            regions=1,
        )
        op.regions[0].append_block(Block(arg_types))
        return op

    @property
    def sym_name(self) -> str:
        return self.attributes["sym_name"]

    @property
    def arg_types(self) -> tuple:
        return self.attributes["arg_types"]

    @property
    def result_types(self) -> tuple:
        return self.attributes["result_types"]

    @property
    def body(self) -> Block:
        return self.body_block

    def tasks(self):
        return [op for op in self.body_block.ops if op.op_name == TaskOp.name]

    def verify_op(self) -> None:
        if tuple(a.type for a in self.body_block.arguments) != tuple(self.arg_types):
            raise IRError("lo_spn.kernel block arguments do not match signature")


@lospn.op
class KernelReturnOp(Operation):
    """Terminator returning the kernel's result tensors (pre-bufferization)."""

    name = "lo_spn.kernel_return"
    traits = frozenset({Trait.TERMINATOR})

    @classmethod
    def build(cls, values: Sequence[Value] = ()) -> "KernelReturnOp":
        return cls(operands=list(values))


@lospn.op
class TaskOp(Operation):
    """Applies its region to every sample in a batch.

    Entry block arguments: the batch index (``index``) followed by one
    argument per task input. ``batchSize`` is an optimization hint (the
    runtime chunk size), not a semantic bound.
    """

    name = "lo_spn.task"
    traits = frozenset({Trait.SINGLE_BLOCK})

    @classmethod
    def build(
        cls,
        inputs: Sequence[Value],
        batch_size: int,
        result_types: Sequence[Type] = (),
    ) -> "TaskOp":
        op = cls(
            operands=list(inputs),
            result_types=list(result_types),
            attributes={"batchSize": batch_size},
            regions=1,
        )
        op.regions[0].append_block(
            Block([IndexType()] + [v.type for v in inputs])
        )
        return op

    @property
    def batch_size(self) -> int:
        return self.attributes["batchSize"]

    @property
    def body(self) -> Block:
        return self.body_block

    @property
    def batch_index(self) -> Value:
        return self.body_block.arguments[0]

    @property
    def input_args(self):
        return self.body_block.arguments[1:]

    def verify_op(self) -> None:
        args = self.body_block.arguments
        if not args or not isinstance(args[0].type, IndexType):
            raise IRError("lo_spn.task entry block must start with an index argument")
        if [a.type for a in args[1:]] != [v.type for v in self.operands]:
            raise IRError("lo_spn.task block arguments do not match inputs")


@lospn.op
class BodyOp(Operation):
    """Container for the pure per-sample arithmetic of a task."""

    name = "lo_spn.body"
    traits = frozenset({Trait.SINGLE_BLOCK})

    @classmethod
    def build(cls, inputs: Sequence[Value], result_types: Sequence[Type]) -> "BodyOp":
        op = cls(
            operands=list(inputs),
            result_types=list(result_types),
            regions=1,
        )
        op.regions[0].append_block(Block([v.type for v in inputs]))
        return op

    @property
    def body(self) -> Block:
        return self.body_block

    def verify_op(self) -> None:
        args = self.body_block.arguments
        if [a.type for a in args] != [v.type for v in self.operands]:
            raise IRError("lo_spn.body block arguments do not match inputs")
        term = self.body_block.terminator
        if term is None or term.op_name != YieldOp.name:
            raise IRError("lo_spn.body must terminate with lo_spn.yield")
        if [v.type for v in term.operands] != [r.type for r in self.results]:
            raise IRError("lo_spn.yield types do not match lo_spn.body results")


@lospn.op
class YieldOp(Operation):
    name = "lo_spn.yield"
    traits = frozenset({Trait.TERMINATOR})

    @classmethod
    def build(cls, values: Sequence[Value]) -> "YieldOp":
        return cls(operands=list(values))


class _BatchAccessBase(Operation):
    """Shared pieces of the four batch access ops."""

    @property
    def static_index(self) -> int:
        return self.attributes.get("staticIndex", 0)

    @property
    def transposed(self) -> bool:
        return self.attributes.get("transposed", False)


@lospn.op
class BatchExtractOp(_BatchAccessBase):
    """Extract one feature of one sample from an input *tensor*.

    Layout: ``transposed=False`` reads ``input[dynamicIndex, staticIndex]``
    (row-major samples); ``transposed=True`` reads
    ``input[staticIndex, dynamicIndex]``.
    """

    name = "lo_spn.batch_extract"

    @classmethod
    def build(
        cls,
        input: Value,
        dynamic_index: Value,
        static_index: int,
        transposed: bool = False,
    ) -> "BatchExtractOp":
        input_type = input.type
        if not isinstance(input_type, TensorType):
            raise IRError("lo_spn.batch_extract requires a tensor input")
        return cls(
            operands=[input, dynamic_index],
            result_types=[input_type.element_type],
            attributes={"staticIndex": static_index, "transposed": transposed},
        )

    @property
    def input(self) -> Value:
        return self.operands[0]

    @property
    def dynamic_index(self) -> Value:
        return self.operands[1]


@lospn.op
class BatchReadOp(_BatchAccessBase):
    """Read one feature of one sample from an input *memref*."""

    name = "lo_spn.batch_read"

    @classmethod
    def build(
        cls,
        input: Value,
        dynamic_index: Value,
        static_index: int,
        transposed: bool = False,
    ) -> "BatchReadOp":
        input_type = input.type
        if not isinstance(input_type, MemRefType):
            raise IRError("lo_spn.batch_read requires a memref input")
        return cls(
            operands=[input, dynamic_index],
            result_types=[input_type.element_type],
            attributes={"staticIndex": static_index, "transposed": transposed},
        )

    @property
    def input(self) -> Value:
        return self.operands[0]

    @property
    def dynamic_index(self) -> Value:
        return self.operands[1]


@lospn.op
class BatchCollectOp(_BatchAccessBase):
    """Collect per-sample results into the task's result tensor.

    Serves as the value-semantics result producer before bufferization:
    the op's tensor result becomes the task result. ``transposed=True``
    lays results out as [results x batch].
    """

    name = "lo_spn.batch_collect"

    @classmethod
    def build(
        cls,
        batch_index: Value,
        result_values: Sequence[Value],
        transposed: bool = True,
    ) -> "BatchCollectOp":
        result_values = list(result_values)
        if not result_values:
            raise IRError("lo_spn.batch_collect requires at least one value")
        elem = result_values[0].type
        shape = (len(result_values), None) if transposed else (None, len(result_values))
        tensor = TensorType(shape, elem)
        return cls(
            operands=[batch_index] + result_values,
            result_types=[tensor],
            attributes={"transposed": transposed},
        )

    @property
    def batch_index(self) -> Value:
        return self.operands[0]

    @property
    def result_values(self):
        return self.operands[1:]


@lospn.op
class BatchWriteOp(_BatchAccessBase):
    """Store per-sample results into an output memref."""

    name = "lo_spn.batch_write"

    @classmethod
    def build(
        cls,
        batch_mem: Value,
        batch_index: Value,
        result_values: Sequence[Value],
        transposed: bool = True,
    ) -> "BatchWriteOp":
        if not isinstance(batch_mem.type, MemRefType):
            raise IRError("lo_spn.batch_write requires a memref target")
        return cls(
            operands=[batch_mem, batch_index] + list(result_values),
            attributes={"transposed": transposed},
        )

    @property
    def batch_mem(self) -> Value:
        return self.operands[0]

    @property
    def batch_index(self) -> Value:
        return self.operands[1]

    @property
    def result_values(self):
        return self.operands[2:]


class _BinaryArithOp(Operation):
    traits = frozenset({Trait.PURE, Trait.COMMUTATIVE, Trait.SAME_OPERANDS_AND_RESULT_TYPE})

    @classmethod
    def build(cls, lhs: Value, rhs: Value):
        if lhs.type != rhs.type:
            raise IRError(f"'{cls.name}': operand types differ")
        return cls(operands=[lhs, rhs], result_types=[lhs.type])

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


@lospn.op
class MulOp(_BinaryArithOp):
    """Probability multiplication (an add in log space)."""

    name = "lo_spn.mul"


@lospn.op
class AddOp(_BinaryArithOp):
    """Probability addition (a log-add-exp in log space)."""

    name = "lo_spn.add"


@lospn.op
class MaxOp(_BinaryArithOp):
    """Probability maximum (the max-product semiring's "sum").

    Log storage is monotone, so the op is a plain floating-point max of
    the raw stored values in either space.
    """

    name = "lo_spn.max"


@lospn.op
class SelectMaxOp(Operation):
    """Running-argmax select: ``t if a > b else f``.

    ``a``/``b`` are probability scores (same type), ``t``/``f`` arbitrary
    same-typed payloads (argmax indices in the MPE/sampling lowerings).
    The comparison is *strict*, so chained selects keep the first
    maximum on ties — matching the reference tracebacks' first-max-wins
    rule (and ``np.argmax``).
    """

    name = "lo_spn.select_max"
    traits = frozenset({Trait.PURE})

    @classmethod
    def build(cls, a: Value, b: Value, t: Value, f: Value) -> "SelectMaxOp":
        if a.type != b.type:
            raise IRError("lo_spn.select_max: score operand types differ")
        if t.type != f.type:
            raise IRError("lo_spn.select_max: payload operand types differ")
        return cls(operands=[a, b, t, f], result_types=[t.type])


@lospn.op
class InputValueOp(Operation):
    """A raw feature value with a NaN substitution constant.

    Evaluates to the input where it is a number and to ``nanValue``
    where it is NaN. The MPE lowering substitutes leaf modes, the
    expectation lowering leaf moments; the result is a plain feature
    value (never log-typed).
    """

    name = "lo_spn.input_value"
    traits = frozenset({Trait.PURE})

    @classmethod
    def build(
        cls, value: Value, nan_value: float, result_type: ComputationType = None
    ) -> "InputValueOp":
        """``result_type`` reinterprets the raw input in the computation
        space (the bits pass through unchanged): the sampling lowering
        reads host-supplied Gumbel noise as log-space addends, the
        expectation lowering feature values as linear-space factors."""
        if is_log_type(value.type):
            raise IRError("lo_spn.input_value input must be a raw feature value")
        return cls(
            operands=[value],
            result_types=[result_type if result_type is not None else value.type],
            attributes={"nanValue": float(nan_value)},
        )

    @property
    def nan_value(self) -> float:
        return self.attributes["nanValue"]


@lospn.op
class ConstantOp(Operation):
    """A probability constant; for log types the payload is the log value."""

    name = "lo_spn.constant"
    traits = frozenset({Trait.PURE, Trait.CONSTANT_LIKE})

    @classmethod
    def build(cls, value: float, ty: ComputationType) -> "ConstantOp":
        return cls(attributes={"value": float(value)}, result_types=[ty])

    @property
    def value(self) -> float:
        return self.attributes["value"]


class _LeafOpBase(Operation):
    traits = frozenset({Trait.PURE})

    @property
    def support_marginal(self) -> bool:
        return self.attributes.get("supportMarginal", False)

    @property
    def input(self) -> Value:
        return self.operands[0]


@lospn.op
class HistogramOp(_LeafOpBase):
    """Histogram leaf: bucketized lookup (CPU: table lookup; GPU: selects)."""

    name = "lo_spn.histogram"

    @classmethod
    def build(
        cls,
        index: Value,
        bounds: Sequence[float],
        probabilities: Sequence[float],
        result_type: ComputationType,
        support_marginal: bool = False,
    ) -> "HistogramOp":
        return cls(
            operands=[index],
            result_types=[result_type],
            attributes={
                "bounds": tuple(float(b) for b in bounds),
                "probabilities": tuple(float(p) for p in probabilities),
                "bucketCount": len(probabilities),
                "supportMarginal": support_marginal,
            },
        )

    @property
    def bounds(self) -> Tuple[float, ...]:
        return self.attributes["bounds"]

    @property
    def probabilities(self) -> Tuple[float, ...]:
        return self.attributes["probabilities"]


@lospn.op
class CategoricalOp(_LeafOpBase):
    """Categorical leaf: direct probability table lookup."""

    name = "lo_spn.categorical"

    @classmethod
    def build(
        cls,
        index: Value,
        probabilities: Sequence[float],
        result_type: ComputationType,
        support_marginal: bool = False,
    ) -> "CategoricalOp":
        return cls(
            operands=[index],
            result_types=[result_type],
            attributes={
                "probabilities": tuple(float(p) for p in probabilities),
                "supportMarginal": support_marginal,
            },
        )

    @property
    def probabilities(self) -> Tuple[float, ...]:
        return self.attributes["probabilities"]


@lospn.op
class GaussianOp(_LeafOpBase):
    """Gaussian leaf: PDF (or log-PDF) evaluation."""

    name = "lo_spn.gaussian"

    @classmethod
    def build(
        cls,
        evidence: Value,
        mean: float,
        stddev: float,
        result_type: ComputationType,
        support_marginal: bool = False,
    ) -> "GaussianOp":
        return cls(
            operands=[evidence],
            result_types=[result_type],
            attributes={
                "mean": float(mean),
                "stddev": float(stddev),
                "supportMarginal": support_marginal,
            },
        )

    @property
    def mean(self) -> float:
        return self.attributes["mean"]

    @property
    def stddev(self) -> float:
        return self.attributes["stddev"]


@lospn.op
class LogOp(Operation):
    """Convert a linear-space probability into log space."""

    name = "lo_spn.log"
    traits = frozenset({Trait.PURE})

    @classmethod
    def build(cls, value: Value) -> "LogOp":
        if is_log_type(value.type):
            raise IRError("lo_spn.log input is already in log space")
        return cls(operands=[value], result_types=[LogType(value.type)])


@lospn.op
class ExpOp(Operation):
    """Convert a log-space probability back to linear space."""

    name = "lo_spn.exp"
    traits = frozenset({Trait.PURE})

    @classmethod
    def build(cls, value: Value) -> "ExpOp":
        if not is_log_type(value.type):
            raise IRError("lo_spn.exp input must be in log space")
        return cls(operands=[value], result_types=[value.type.base])


LEAF_OP_NAMES = frozenset({HistogramOp.name, CategoricalOp.name, GaussianOp.name})

ARITH_OP_NAMES = frozenset({MulOp.name, AddOp.name, MaxOp.name})

#: Ops introduced by the non-joint query lowerings (MPE, sampling,
#: conditionals, expectations).
QUERY_OP_NAMES = frozenset({MaxOp.name, SelectMaxOp.name, InputValueOp.name})
