"""The ``gpu`` dialect: kernels, launches and host/device data movement.

Mirrors the subset of MLIR's gpu dialect the SPNC GPU lowering uses: a
``gpu.module`` holding ``gpu.func`` kernels, ``gpu.launch_func`` from host
code, device buffer management (``gpu.alloc``/``gpu.dealloc``) and
explicit transfers (``gpu.memcpy`` with a direction attribute). The copy
elimination pass (Section IV-C) rewrites memcpy round trips.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..ir.dialect import Dialect
from ..ir.ops import Block, IRError, Operation
from ..ir.traits import Trait
from ..ir.types import IndexType, MemRefType, Type
from ..ir.value import Value

gpu = Dialect("gpu", "GPU kernels, launches and data transfers")

#: Valid memcpy directions.
H2D = "h2d"
D2H = "d2h"
D2D = "d2d"


@gpu.op
class GPUModuleOp(Operation):
    """Container for the device-side kernels of one compiled SPN kernel."""

    name = "gpu.module"
    traits = frozenset({Trait.ISOLATED_FROM_ABOVE, Trait.SINGLE_BLOCK})

    @classmethod
    def build(cls, sym_name: str) -> "GPUModuleOp":
        op = cls(attributes={"sym_name": sym_name}, regions=1)
        op.regions[0].append_block(Block())
        return op

    @property
    def sym_name(self) -> str:
        return self.attributes["sym_name"]

    def kernels(self) -> List["GPUFuncOp"]:
        return [op for op in self.body_block.ops if op.op_name == GPUFuncOp.name]


@gpu.op
class GPUFuncOp(Operation):
    """A device kernel function; computes one sample per thread."""

    name = "gpu.func"
    traits = frozenset(
        {Trait.ISOLATED_FROM_ABOVE, Trait.SINGLE_BLOCK, Trait.FUNCTION_LIKE}
    )

    @classmethod
    def build(cls, sym_name: str, arg_types: Sequence[Type]) -> "GPUFuncOp":
        op = cls(
            attributes={"sym_name": sym_name, "arg_types": tuple(arg_types), "kernel": True},
            regions=1,
        )
        op.regions[0].append_block(Block(arg_types))
        return op

    @property
    def sym_name(self) -> str:
        return self.attributes["sym_name"]

    @property
    def arg_types(self) -> tuple:
        return self.attributes["arg_types"]

    @property
    def body(self) -> Block:
        return self.body_block


@gpu.op
class ReturnOp(Operation):
    name = "gpu.return"
    traits = frozenset({Trait.TERMINATOR})

    @classmethod
    def build(cls) -> "ReturnOp":
        return cls()


class _IdOp(Operation):
    """Base for block/thread id and dim queries (``dimension`` in x/y/z)."""

    traits = frozenset({Trait.PURE})

    @classmethod
    def build(cls, dimension: str = "x"):
        if dimension not in ("x", "y", "z"):
            raise IRError(f"invalid gpu dimension '{dimension}'")
        return cls(
            result_types=[IndexType()], attributes={"dimension": dimension}
        )

    @property
    def dimension(self) -> str:
        return self.attributes["dimension"]


@gpu.op
class BlockIdOp(_IdOp):
    name = "gpu.block_id"


@gpu.op
class ThreadIdOp(_IdOp):
    name = "gpu.thread_id"


@gpu.op
class BlockDimOp(_IdOp):
    name = "gpu.block_dim"


@gpu.op
class GridDimOp(_IdOp):
    name = "gpu.grid_dim"


@gpu.op
class AllocOp(Operation):
    """Allocate a device buffer."""

    name = "gpu.alloc"

    @classmethod
    def build(cls, memref_type: MemRefType, dynamic_sizes: Sequence[Value] = ()) -> "AllocOp":
        return cls(operands=list(dynamic_sizes), result_types=[memref_type])


@gpu.op
class DeallocOp(Operation):
    name = "gpu.dealloc"

    @classmethod
    def build(cls, buffer: Value) -> "DeallocOp":
        return cls(operands=[buffer])


@gpu.op
class MemcpyOp(Operation):
    """Copy between host and device buffers (``direction`` attribute)."""

    name = "gpu.memcpy"

    @classmethod
    def build(cls, dst: Value, src: Value, direction: str) -> "MemcpyOp":
        if direction not in (H2D, D2H, D2D):
            raise IRError(f"invalid memcpy direction '{direction}'")
        return cls(operands=[dst, src], attributes={"direction": direction})

    @property
    def dst(self) -> Value:
        return self.operands[0]

    @property
    def src(self) -> Value:
        return self.operands[1]

    @property
    def direction(self) -> str:
        return self.attributes["direction"]


@gpu.op
class LaunchFuncOp(Operation):
    """Launch a kernel over a 1-D grid.

    Operands: grid size, block size, valid thread count (all index), then
    the kernel arguments. The valid count realizes the per-thread bounds
    guard (``if global_id < n``) of real kernels: the simulator only
    materializes in-range threads. The kernel is referenced by
    ``module @ function`` symbol attributes.
    """

    name = "gpu.launch_func"

    @classmethod
    def build(
        cls,
        module_name: str,
        kernel_name: str,
        grid_size: Value,
        block_size: Value,
        valid_count: Value,
        kernel_args: Sequence[Value],
    ) -> "LaunchFuncOp":
        return cls(
            operands=[grid_size, block_size, valid_count] + list(kernel_args),
            attributes={"module": module_name, "kernel": kernel_name},
        )

    @property
    def module_name(self) -> str:
        return self.attributes["module"]

    @property
    def kernel_name(self) -> str:
        return self.attributes["kernel"]

    @property
    def grid_size(self) -> Value:
        return self.operands[0]

    @property
    def block_size(self) -> Value:
        return self.operands[1]

    @property
    def valid_count(self) -> Value:
        return self.operands[2]

    @property
    def kernel_args(self) -> List[Value]:
        return self.operands[3:]


def lookup_gpu_module(module: Operation, sym_name: str) -> Optional[GPUModuleOp]:
    for op in module.body_block.ops:
        if op.op_name == GPUModuleOp.name and op.attributes.get("sym_name") == sym_name:
            return op
    return None
