"""The ``math`` dialect: elementary transcendental functions.

These are the functions the SPNC lowering maps to vector-library calls
(Intel SVML / GLIBC libmvec in the paper; our NumPy-backed veclib here).
"""

from __future__ import annotations

import math as pymath

from ..ir.dialect import Dialect
from ..ir.ops import IRError, Operation
from ..ir.traits import Trait
from ..ir.value import Value

from .arith import constant_value

math = Dialect("math", "Elementary mathematical functions")


class _UnaryMathOp(Operation):
    traits = frozenset({Trait.PURE, Trait.SAME_OPERANDS_AND_RESULT_TYPE})
    py_function = None  # set by subclasses

    @classmethod
    def build(cls, value: Value) -> "_UnaryMathOp":
        return cls(operands=[value], result_types=[value.type])

    def verify_op(self) -> None:
        if len(self.operands) != 1:
            raise IRError(f"'{self.op_name}' takes exactly one operand")

    def fold(self):
        const = constant_value(self.operands[0])
        if const is None:
            return None
        try:
            return [type(self).py_function(const)]
        except ValueError:
            # e.g. log of a non-positive constant: leave for runtime (-inf/nan).
            return None


@math.op
class LogOp(_UnaryMathOp):
    """Natural logarithm."""

    name = "math.log"
    py_function = pymath.log


@math.op
class ExpOp(_UnaryMathOp):
    """Natural exponential."""

    name = "math.exp"
    py_function = pymath.exp


@math.op
class SqrtOp(_UnaryMathOp):
    name = "math.sqrt"
    py_function = pymath.sqrt


@math.op
class AbsOp(_UnaryMathOp):
    name = "math.abs"
    py_function = abs


@math.op
class Log1pOp(_UnaryMathOp):
    """log(1 + x), used by the numerically stable log-add-exp expansion."""

    name = "math.log1p"
    py_function = pymath.log1p
