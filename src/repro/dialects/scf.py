"""The ``scf`` dialect: structured control flow (for / if / yield).

``scf.for`` carries loop-carried values (``iter_args``) exactly like MLIR;
the CPU lowering uses it for the batch loop and the vectorized loop with
scalar epilogue.
"""

from __future__ import annotations

from typing import List, Sequence

from ..ir.dialect import Dialect
from ..ir.ops import Block, IRError, Operation
from ..ir.traits import Trait
from ..ir.types import IndexType
from ..ir.value import BlockArgument, Value

scf = Dialect("scf", "Structured control flow")


@scf.op
class YieldOp(Operation):
    name = "scf.yield"
    traits = frozenset({Trait.TERMINATOR})

    @classmethod
    def build(cls, values: Sequence[Value] = ()) -> "YieldOp":
        return cls(operands=list(values))


@scf.op
class ForOp(Operation):
    """A counted loop: ``for i = lower to upper step step iter_args(...)``.

    Operands: lower, upper, step, then the initial values of the
    loop-carried variables. The single body block receives the induction
    variable (index) followed by the carried values, and must terminate
    with an ``scf.yield`` of the next carried values.
    """

    name = "scf.for"
    traits = frozenset({Trait.SINGLE_BLOCK})

    @classmethod
    def build(
        cls,
        lower: Value,
        upper: Value,
        step: Value,
        iter_args: Sequence[Value] = (),
    ) -> "ForOp":
        iter_args = list(iter_args)
        op = cls(
            operands=[lower, upper, step] + iter_args,
            result_types=[v.type for v in iter_args],
            regions=1,
        )
        op.regions[0].append_block(
            Block([IndexType()] + [v.type for v in iter_args])
        )
        return op

    @property
    def lower(self) -> Value:
        return self.operands[0]

    @property
    def upper(self) -> Value:
        return self.operands[1]

    @property
    def step(self) -> Value:
        return self.operands[2]

    @property
    def init_args(self) -> List[Value]:
        return self.operands[3:]

    @property
    def induction_var(self) -> BlockArgument:
        return self.body_block.arguments[0]

    @property
    def iter_args(self) -> List[BlockArgument]:
        return self.body_block.arguments[1:]

    def verify_op(self) -> None:
        block = self.body_block
        if not block.arguments or not isinstance(block.arguments[0].type, IndexType):
            raise IRError("scf.for body must start with an index block argument")
        carried = [a.type for a in block.arguments[1:]]
        if carried != [v.type for v in self.operands[3:]]:
            raise IRError("scf.for iter_args do not match init operands")
        term = block.terminator
        if term is None or term.op_name != YieldOp.name:
            raise IRError("scf.for body must end with scf.yield")
        if [v.type for v in term.operands] != carried:
            raise IRError("scf.yield types do not match scf.for iter_args")


@scf.op
class IfOp(Operation):
    """Conditional with a then-region and an optional else-region."""

    name = "scf.if"
    traits = frozenset({Trait.SINGLE_BLOCK})

    @classmethod
    def build(cls, cond: Value, result_types: Sequence = (), with_else: bool = True) -> "IfOp":
        op = cls(
            operands=[cond],
            result_types=list(result_types),
            regions=2 if with_else or result_types else 1,
        )
        for region in op.regions:
            region.append_block(Block())
        return op

    @property
    def cond(self) -> Value:
        return self.operands[0]

    @property
    def then_block(self) -> Block:
        return self.regions[0].entry_block

    @property
    def else_block(self) -> Block:
        if len(self.regions) < 2:
            raise IRError("scf.if has no else region")
        return self.regions[1].entry_block

    def verify_op(self) -> None:
        expected = [r.type for r in self.results]
        for region in self.regions:
            term = region.entry_block.terminator
            if expected and (term is None or term.op_name != YieldOp.name):
                raise IRError("scf.if with results requires scf.yield in each region")
            if term is not None and term.op_name == YieldOp.name:
                if [v.type for v in term.operands] != expected:
                    raise IRError("scf.if region yield types do not match results")
