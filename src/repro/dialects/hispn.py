"""The ``hi_spn`` dialect (paper Section III-A, Table I).

HiSPN captures a probabilistic query and the SPN DAG at the abstraction
level of the SPFlow frontend. The DAG lives inside a ``hi_spn.graph``
whose entry block has one argument per input feature; sum/product/leaf
ops model the DAG through data flow, and ``hi_spn.root`` marks the root.

All node ops produce the abstract ``!hi_spn.probability`` type: the
concrete computation datatype (f32/f64, linear or log space) is only
chosen during the lowering to LoSPN, based on graph characteristics.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..ir.dialect import Dialect
from ..ir.ops import Block, IRError, Operation
from ..ir.traits import Trait
from ..ir.types import Type, register_dialect_type
from ..ir.value import Value

hispn = Dialect("hi_spn", "High-level SPN queries and DAG structure")


@hispn.type
class ProbabilityType(Type):
    """The abstract probability type deferring the datatype decision."""

    __slots__ = ()

    def __init__(self):
        super().__init__(())

    def spelling(self) -> str:
        return "!hi_spn.probability"

    @classmethod
    def parse(cls, body: str, parser=None) -> "ProbabilityType":
        if body:
            raise ValueError("!hi_spn.probability takes no parameters")
        return cls()


register_dialect_type("hi_spn.probability", ProbabilityType)

prob = ProbabilityType()


class _QueryOp(Operation):
    """Common base for query ops wrapping a graph region."""

    traits = frozenset({Trait.ISOLATED_FROM_ABOVE, Trait.SINGLE_BLOCK})

    @classmethod
    def build(
        cls,
        num_features: int,
        input_type: Type,
        batch_size: int = 1,
        support_marginal: bool = False,
        relative_error: float = 0.0,
        **extra_attributes,
    ):
        op = cls(
            attributes={
                "numFeatures": num_features,
                "inputType": input_type,
                "batchSize": batch_size,
                "supportMarginal": support_marginal,
                "relativeError": float(relative_error),
                **extra_attributes,
            },
            regions=1,
        )
        op.regions[0].append_block(Block())
        return op

    @property
    def num_features(self) -> int:
        return self.attributes["numFeatures"]

    @property
    def input_type(self) -> Type:
        return self.attributes["inputType"]

    @property
    def batch_size(self) -> int:
        return self.attributes["batchSize"]

    @property
    def support_marginal(self) -> bool:
        return self.attributes["supportMarginal"]

    @property
    def relative_error(self) -> float:
        return self.attributes.get("relativeError", 0.0)

    @property
    def graph(self) -> "GraphOp":
        for op in self.body_block.ops:
            if op.op_name == GraphOp.name:
                return op
        raise IRError(f"'{self.op_name}' contains no hi_spn.graph")

    def verify_op(self) -> None:
        graphs = [op for op in self.body_block.ops if op.op_name == GraphOp.name]
        if len(graphs) != 1:
            raise IRError(f"'{self.op_name}' must contain exactly one hi_spn.graph")
        if graphs[0].num_features != self.num_features:
            raise IRError("query/graph numFeatures mismatch")


@hispn.op
class JointQueryOp(_QueryOp):
    """A joint probability query over a batch of fully observed samples.

    With ``supportMarginal`` set, NaN feature values are treated as
    missing evidence and marginalized at the leaves.
    """

    name = "hi_spn.joint_query"


@hispn.op
class MPEQueryOp(_QueryOp):
    """A Most-Probable-Explanation query (max-product semiring).

    Lowered to a max-product upward pass plus one arg-max result row per
    sum node; the host runtime performs the top-down traceback that
    completes missing (NaN) features with their most probable values.
    """

    name = "hi_spn.mpe_query"


@hispn.op
class SampleQueryOp(_QueryOp):
    """A seeded ancestral-sampling query conditioned on observed features.

    Lowered to a marginal upward pass plus one Gumbel-max choice row per
    sum node; the kernel reads host-supplied Gumbel noise from input
    columns appended after the real features.
    """

    name = "hi_spn.sample_query"


@hispn.op
class ConditionalQueryOp(_QueryOp):
    """A conditional ``P(Q | E)`` query for a fixed query-variable set.

    ``queryVariables`` is the compile-time tuple of feature indices
    interpreted as the query; all others are evidence. Lowered to a
    two-head kernel: the full marginal log-likelihood and the
    evidence-only one (query leaves replaced by probability 1).
    """

    name = "hi_spn.conditional_query"

    @property
    def query_variables(self) -> Tuple[int, ...]:
        return tuple(self.attributes["queryVariables"])

    def verify_op(self) -> None:
        super().verify_op()
        variables = self.query_variables
        if not variables:
            raise IRError("hi_spn.conditional_query needs query variables")
        if any(v < 0 or v >= self.num_features for v in variables):
            raise IRError("hi_spn.conditional_query variable out of range")


@hispn.op
class ExpectationQueryOp(_QueryOp):
    """A per-feature raw-moment query ``E[X_v^moment | e]``.

    Lowered in linear space to the (likelihood, moment) pair recursion
    with one result row for the root likelihood plus one per feature.
    """

    name = "hi_spn.expectation_query"

    @property
    def moment(self) -> int:
        return int(self.attributes.get("moment", 1))

    def verify_op(self) -> None:
        super().verify_op()
        if self.moment not in (1, 2):
            raise IRError("hi_spn.expectation_query supports moments 1 and 2")


@hispn.op
class GraphOp(Operation):
    """Container for the SPN DAG; block arguments are the feature inputs."""

    name = "hi_spn.graph"
    traits = frozenset({Trait.SINGLE_BLOCK})

    @classmethod
    def build(cls, num_features: int, input_type: Type) -> "GraphOp":
        op = cls(attributes={"numFeatures": num_features}, regions=1)
        op.regions[0].append_block(Block([input_type] * num_features))
        return op

    @property
    def num_features(self) -> int:
        return self.attributes["numFeatures"]

    @property
    def body(self) -> Block:
        return self.body_block

    @property
    def root_op(self) -> "RootOp":
        term = self.body_block.terminator
        if term is None or term.op_name != RootOp.name:
            raise IRError("hi_spn.graph must terminate with hi_spn.root")
        return term

    def verify_op(self) -> None:
        if len(self.body_block.arguments) != self.num_features:
            raise IRError("hi_spn.graph feature count does not match block arguments")
        self.root_op  # raises if missing


@hispn.op
class RootOp(Operation):
    """Marks the root value(s) of the SPN DAG.

    Table I lists a single ``rootValue``; as an extension, multi-head
    queries (several class SPNs sharing one DAG, compiled into a single
    kernel) mark one root per head.
    """

    name = "hi_spn.root"
    traits = frozenset({Trait.TERMINATOR})

    @classmethod
    def build(cls, root_values) -> "RootOp":
        values = list(root_values) if isinstance(root_values, (list, tuple)) else [root_values]
        if not values:
            raise IRError("hi_spn.root requires at least one root value")
        return cls(operands=values)

    @property
    def root_value(self) -> Value:
        return self.operands[0]

    @property
    def root_values(self):
        return list(self.operands)


@hispn.op
class ProductOp(Operation):
    """An SPN product node (factorization of independent scopes)."""

    name = "hi_spn.product"
    traits = frozenset({Trait.PURE, Trait.COMMUTATIVE})

    @classmethod
    def build(cls, operands: Sequence[Value]) -> "ProductOp":
        return cls(operands=list(operands), result_types=[prob])

    def verify_op(self) -> None:
        if not self.operands:
            raise IRError("hi_spn.product requires at least one operand")


@hispn.op
class SumOp(Operation):
    """An SPN weighted sum node (mixture); weights are an attribute."""

    name = "hi_spn.sum"
    traits = frozenset({Trait.PURE})

    @classmethod
    def build(cls, operands: Sequence[Value], weights: Sequence[float]) -> "SumOp":
        if len(operands) != len(weights):
            raise IRError("hi_spn.sum operand/weight count mismatch")
        return cls(
            operands=list(operands),
            result_types=[prob],
            attributes={"weights": tuple(float(w) for w in weights)},
        )

    @property
    def weights(self) -> Tuple[float, ...]:
        return self.attributes["weights"]

    def verify_op(self) -> None:
        if not self.operands:
            raise IRError("hi_spn.sum requires at least one operand")
        if len(self.operands) != len(self.weights):
            raise IRError("hi_spn.sum operand/weight count mismatch")
        total = sum(self.weights)
        if not np.isclose(total, 1.0, atol=1e-4):
            raise IRError(f"hi_spn.sum weights must sum to 1, got {total}")


@hispn.op
class HistogramOp(Operation):
    """A histogram leaf over a discretized feature.

    ``bounds`` holds bucket boundaries (len = bucketCount + 1) and
    ``probabilities`` the per-bucket mass. The input indexes buckets by
    value: bucket i covers [bounds[i], bounds[i+1]).
    """

    name = "hi_spn.histogram"
    traits = frozenset({Trait.PURE})

    @classmethod
    def build(
        cls,
        index: Value,
        bounds: Sequence[float],
        probabilities: Sequence[float],
    ) -> "HistogramOp":
        if len(bounds) != len(probabilities) + 1:
            raise IRError("hi_spn.histogram needs len(bounds) == len(probabilities)+1")
        return cls(
            operands=[index],
            result_types=[prob],
            attributes={
                "bounds": tuple(float(b) for b in bounds),
                "probabilities": tuple(float(p) for p in probabilities),
                "bucketCount": len(probabilities),
            },
        )

    @property
    def bounds(self) -> Tuple[float, ...]:
        return self.attributes["bounds"]

    @property
    def probabilities(self) -> Tuple[float, ...]:
        return self.attributes["probabilities"]

    @property
    def bucket_count(self) -> int:
        return self.attributes["bucketCount"]


@hispn.op
class CategoricalOp(Operation):
    """A categorical leaf: the input selects one of N probabilities."""

    name = "hi_spn.categorical"
    traits = frozenset({Trait.PURE})

    @classmethod
    def build(cls, index: Value, probabilities: Sequence[float]) -> "CategoricalOp":
        return cls(
            operands=[index],
            result_types=[prob],
            attributes={"probabilities": tuple(float(p) for p in probabilities)},
        )

    @property
    def probabilities(self) -> Tuple[float, ...]:
        return self.attributes["probabilities"]

    def verify_op(self) -> None:
        total = sum(self.probabilities)
        if not np.isclose(total, 1.0, atol=1e-4):
            raise IRError(f"hi_spn.categorical probabilities must sum to 1, got {total}")


@hispn.op
class GaussianOp(Operation):
    """A univariate Gaussian leaf (mean / stddev attributes)."""

    name = "hi_spn.gaussian"
    traits = frozenset({Trait.PURE})

    @classmethod
    def build(cls, evidence: Value, mean: float, stddev: float) -> "GaussianOp":
        if stddev <= 0:
            raise IRError("hi_spn.gaussian requires a positive stddev")
        return cls(
            operands=[evidence],
            result_types=[prob],
            attributes={"mean": float(mean), "stddev": float(stddev)},
        )

    @property
    def mean(self) -> float:
        return self.attributes["mean"]

    @property
    def stddev(self) -> float:
        return self.attributes["stddev"]


LEAF_OP_NAMES = frozenset(
    {HistogramOp.name, CategoricalOp.name, GaussianOp.name}
)

NODE_OP_NAMES = LEAF_OP_NAMES | {ProductOp.name, SumOp.name}

#: Every query op name, keyed by the query-kind string it implements
#: (mirrors ``repro.spn.query.QUERY_KINDS``).
QUERY_OP_NAMES = {
    "joint": JointQueryOp.name,
    "mpe": MPEQueryOp.name,
    "sample": SampleQueryOp.name,
    "conditional": ConditionalQueryOp.name,
    "expectation": ExpectationQueryOp.name,
}
