"""The ``vector`` dialect: SIMD registers and memory movement.

The SPNC CPU vectorizer rewrites the batch loop into vector form using
these ops. Two input-access strategies are representable, matching the
paper's design-space exploration (Fig. 6):

- ``vector.gather``: one strided gather per feature column, and
- ``vector.load_tile`` + ``vector.extract_column``: W contiguous row loads
  followed by in-register shuffles (the "Shuffle" configuration), which
  the paper reports as slightly faster than gathers.
"""

from __future__ import annotations

from typing import Sequence

from ..ir.dialect import Dialect
from ..ir.ops import IRError, Operation
from ..ir.traits import Trait
from ..ir.types import IndexType, MemRefType, Type, VectorType
from ..ir.value import Value

vector = Dialect("vector", "SIMD vectors and vector memory operations")


@vector.op
class BroadcastOp(Operation):
    """Splat a scalar into all lanes of a vector."""

    name = "vector.broadcast"
    traits = frozenset({Trait.PURE})

    @classmethod
    def build(cls, scalar: Value, vector_type: VectorType) -> "BroadcastOp":
        if vector_type.element_type != scalar.type:
            raise IRError("vector.broadcast element type mismatch")
        return cls(operands=[scalar], result_types=[vector_type])


@vector.op
class LoadOp(Operation):
    """Load ``W`` contiguous elements starting at a base index."""

    name = "vector.load"

    @classmethod
    def build(cls, buffer: Value, indices: Sequence[Value], vector_type: VectorType) -> "LoadOp":
        if not isinstance(buffer.type, MemRefType):
            raise IRError("vector.load requires a memref operand")
        return cls(operands=[buffer] + list(indices), result_types=[vector_type])

    @property
    def buffer(self) -> Value:
        return self.operands[0]

    @property
    def indices(self):
        return self.operands[1:]


@vector.op
class StoreOp(Operation):
    """Store a vector to ``W`` contiguous elements at a base index."""

    name = "vector.store"

    @classmethod
    def build(cls, value: Value, buffer: Value, indices: Sequence[Value]) -> "StoreOp":
        if not isinstance(value.type, VectorType):
            raise IRError("vector.store requires a vector value")
        return cls(operands=[value, buffer] + list(indices))

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def buffer(self) -> Value:
        return self.operands[1]

    @property
    def indices(self):
        return self.operands[2:]


@vector.op
class GatherOp(Operation):
    """Gather one strided column: ``result[l] = buffer[base + l, column]``.

    Models an x86 gather of feature ``column`` for W consecutive samples of
    a row-major [batch x features] buffer.
    """

    name = "vector.gather"

    @classmethod
    def build(cls, buffer: Value, base: Value, column: int, vector_type: VectorType) -> "GatherOp":
        if not isinstance(buffer.type, MemRefType) or buffer.type.rank != 2:
            raise IRError("vector.gather requires a rank-2 memref")
        return cls(
            operands=[buffer, base],
            result_types=[vector_type],
            attributes={"column": column},
        )

    @property
    def buffer(self) -> Value:
        return self.operands[0]

    @property
    def base(self) -> Value:
        return self.operands[1]

    @property
    def column(self) -> int:
        return self.attributes["column"]


@vector.op
class LoadTileOp(Operation):
    """Load W full rows ``buffer[base : base+W, :]`` as a 2-D register tile.

    Models the "loads + shuffles" strategy: W vector loads bring in W
    contiguous rows; subsequent :class:`ExtractColumnOp`\\ s are the
    in-register shuffles producing per-feature vectors.
    """

    name = "vector.load_tile"

    @classmethod
    def build(cls, buffer: Value, base: Value, rows: int) -> "LoadTileOp":
        if not isinstance(buffer.type, MemRefType) or buffer.type.rank != 2:
            raise IRError("vector.load_tile requires a rank-2 memref")
        cols = buffer.type.shape[1]
        if cols is None:
            raise IRError("vector.load_tile requires a static feature dimension")
        tile = VectorType((rows, cols), buffer.type.element_type)
        return cls(operands=[buffer, base], result_types=[tile])

    @property
    def buffer(self) -> Value:
        return self.operands[0]

    @property
    def base(self) -> Value:
        return self.operands[1]


@vector.op
class ExtractColumnOp(Operation):
    """Shuffle one column out of a 2-D register tile into a 1-D vector."""

    name = "vector.extract_column"
    traits = frozenset({Trait.PURE})

    @classmethod
    def build(cls, tile: Value, column: int) -> "ExtractColumnOp":
        tile_type = tile.type
        if not isinstance(tile_type, VectorType) or tile_type.rank != 2:
            raise IRError("vector.extract_column requires a 2-D vector tile")
        result = VectorType((tile_type.shape[0],), tile_type.element_type)
        return cls(
            operands=[tile],
            result_types=[result],
            attributes={"column": column},
        )

    @property
    def column(self) -> int:
        return self.attributes["column"]


@vector.op
class ExtractOp(Operation):
    """Extract a single lane from a vector."""

    name = "vector.extract"
    traits = frozenset({Trait.PURE})

    @classmethod
    def build(cls, vec: Value, position: int) -> "ExtractOp":
        vec_type = vec.type
        if not isinstance(vec_type, VectorType) or vec_type.rank != 1:
            raise IRError("vector.extract requires a 1-D vector")
        return cls(
            operands=[vec],
            result_types=[vec_type.element_type],
            attributes={"position": position},
        )

    @property
    def position(self) -> int:
        return self.attributes["position"]


@vector.op
class InsertOp(Operation):
    """Insert a scalar into one lane, producing a new vector."""

    name = "vector.insert"
    traits = frozenset({Trait.PURE})

    @classmethod
    def build(cls, scalar: Value, vec: Value, position: int) -> "InsertOp":
        return cls(
            operands=[scalar, vec],
            result_types=[vec.type],
            attributes={"position": position},
        )

    @property
    def position(self) -> int:
        return self.attributes["position"]


@vector.op
class ScalarizedCallOp(Operation):
    """A vector math function evaluated lane-by-lane.

    Produced by the veclib-disabled lowering path: without a vector math
    library, every lane must be extracted, the scalar libm function
    invoked, and the result re-inserted (paper Fig. 6's "AVX2 without
    VecLib" configuration, which is *slower* than scalar code). The op
    carries the function name (``log``, ``exp``, ``log1p``) as an
    attribute; the backend emits an explicit per-lane loop.
    """

    name = "vector.scalarized_call"
    traits = frozenset({Trait.PURE})

    SUPPORTED = ("log", "exp", "log1p", "sqrt")

    @classmethod
    def build(cls, fn: str, value: Value) -> "ScalarizedCallOp":
        if fn not in cls.SUPPORTED:
            raise IRError(f"unsupported scalarized function '{fn}'")
        if not isinstance(value.type, VectorType):
            raise IRError("vector.scalarized_call requires a vector operand")
        return cls(operands=[value], result_types=[value.type], attributes={"fn": fn})

    @property
    def fn(self) -> str:
        return self.attributes["fn"]


@vector.op
class GatherTableOp(Operation):
    """Indexed gather from a 1-D lookup table: ``result[l] = table[idx[l]]``.

    Used for vectorized discrete leaves (histogram / categorical): the
    integer index vector selects per-lane probabilities from the table.
    """

    name = "vector.gather_table"

    @classmethod
    def build(cls, table: Value, idx: Value) -> "GatherTableOp":
        table_type = table.type
        idx_type = idx.type
        if not isinstance(table_type, MemRefType) or table_type.rank != 1:
            raise IRError("vector.gather_table requires a rank-1 memref table")
        if not isinstance(idx_type, VectorType):
            raise IRError("vector.gather_table requires a vector of indices")
        result = VectorType(idx_type.shape, table_type.element_type)
        return cls(operands=[table, idx], result_types=[result])

    @property
    def table(self) -> Value:
        return self.operands[0]

    @property
    def index_vector(self) -> Value:
        return self.operands[1]
