"""The ``arith`` dialect: constants, integer/float arithmetic, compare, select.

Ops operate elementwise, so the same op classes are reused for scalar and
vector types (as in MLIR). Constant folding hooks implement the subset of
folds the canonicalizer needs for SPN kernels: constant-constant
arithmetic, additive/multiplicative identities, and select-of-constant.
"""

from __future__ import annotations

import operator
from typing import Any, List, Optional, Union

import numpy as np

from ..ir.builder import Builder
from ..ir.dialect import Dialect
from ..ir.ops import IRError, Operation
from ..ir.rewrite import set_constant_materializer
from ..ir.traits import Trait
from ..ir.types import FloatType, IndexType, IntegerType, Type, VectorType, i1
from ..ir.value import Value

arith = Dialect("arith", "Standard integer and floating point arithmetic")

Number = Union[int, float]


def element_type(ty: Type) -> Type:
    return ty.element_type if isinstance(ty, VectorType) else ty


@arith.op
class ConstantOp(Operation):
    """A compile-time constant scalar (``value`` attribute)."""

    name = "arith.constant"
    traits = frozenset({Trait.PURE, Trait.CONSTANT_LIKE})

    @classmethod
    def build(cls, value: Number, ty: Type) -> "ConstantOp":
        elem = element_type(ty)
        if isinstance(elem, FloatType):
            value = float(value)
        elif isinstance(elem, (IntegerType, IndexType)):
            value = int(value)
        else:
            raise IRError(f"cannot build arith.constant of type {ty}")
        return cls(attributes={"value": value}, result_types=[ty])

    @property
    def value(self) -> Number:
        return self.attributes["value"]


def constant_value(value: Value) -> Optional[Number]:
    """If ``value`` is produced by arith.constant, return its payload."""
    op = value.defining_op
    if op is not None and op.op_name == ConstantOp.name:
        return op.attributes["value"]
    return None


def _materialize(builder: Builder, value: Any, ty: Type) -> Optional[Value]:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return builder.create(ConstantOp, value, ty).result
    if isinstance(value, bool):
        return builder.create(ConstantOp, int(value), i1).result
    return None


set_constant_materializer(_materialize)


class _BinaryOp(Operation):
    """Shared base for elementwise binary ops."""

    traits = frozenset({Trait.PURE, Trait.SAME_OPERANDS_AND_RESULT_TYPE})
    py_operator = None  # set by subclasses
    identity: Optional[Number] = None  # right identity, if folding is safe

    @classmethod
    def build(cls, lhs: Value, rhs: Value) -> "_BinaryOp":
        if lhs.type != rhs.type:
            raise IRError(f"'{cls.name}': operand types differ: {lhs.type} vs {rhs.type}")
        return cls(operands=[lhs, rhs], result_types=[lhs.type])

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def verify_op(self) -> None:
        if len(self.operands) != 2:
            raise IRError(f"'{self.op_name}' requires exactly two operands")
        if self.operands[0].type != self.operands[1].type:
            raise IRError(f"'{self.op_name}' operand types differ")

    def fold(self):
        lhs_const = constant_value(self.operands[0])
        rhs_const = constant_value(self.operands[1])
        if lhs_const is not None and rhs_const is not None:
            return [type(self).py_operator(lhs_const, rhs_const)]
        if rhs_const is not None and rhs_const == type(self).identity:
            return [self.operands[0]]
        return None


@arith.op
class AddFOp(_BinaryOp):
    name = "arith.addf"
    traits = _BinaryOp.traits | {Trait.COMMUTATIVE}
    py_operator = operator.add
    identity = 0.0


@arith.op
class SubFOp(_BinaryOp):
    name = "arith.subf"
    py_operator = operator.sub
    identity = 0.0


@arith.op
class MulFOp(_BinaryOp):
    name = "arith.mulf"
    traits = _BinaryOp.traits | {Trait.COMMUTATIVE}
    py_operator = operator.mul
    identity = 1.0


@arith.op
class DivFOp(_BinaryOp):
    name = "arith.divf"
    py_operator = operator.truediv
    identity = 1.0


@arith.op
class AddIOp(_BinaryOp):
    name = "arith.addi"
    traits = _BinaryOp.traits | {Trait.COMMUTATIVE}
    py_operator = operator.add
    identity = 0


@arith.op
class SubIOp(_BinaryOp):
    name = "arith.subi"
    py_operator = operator.sub
    identity = 0


@arith.op
class MulIOp(_BinaryOp):
    name = "arith.muli"
    traits = _BinaryOp.traits | {Trait.COMMUTATIVE}
    py_operator = operator.mul
    identity = 1


@arith.op
class NegFOp(Operation):
    name = "arith.negf"
    traits = frozenset({Trait.PURE, Trait.SAME_OPERANDS_AND_RESULT_TYPE})

    @classmethod
    def build(cls, value: Value) -> "NegFOp":
        return cls(operands=[value], result_types=[value.type])

    def fold(self):
        const = constant_value(self.operands[0])
        if const is not None:
            return [-const]
        return None


_CMP_PREDICATES = {
    "eq": operator.eq,
    "ne": operator.ne,
    "slt": operator.lt,
    "sle": operator.le,
    "sgt": operator.gt,
    "sge": operator.ge,
    "ult": operator.lt,
    "ule": operator.le,
    "ugt": operator.gt,
    "uge": operator.ge,
    "olt": operator.lt,
    "ole": operator.le,
    "ogt": operator.gt,
    "oge": operator.ge,
    "oeq": operator.eq,
    "one": operator.ne,
    # Unordered float predicates (true when an operand is NaN at runtime;
    # folding only happens on non-NaN constants where they coincide).
    "ueq": operator.eq,
    "une": operator.ne,
}


class _CmpOp(Operation):
    traits = frozenset({Trait.PURE})

    @classmethod
    def build(cls, predicate: str, lhs: Value, rhs: Value) -> "_CmpOp":
        if predicate not in _CMP_PREDICATES:
            raise IRError(f"unknown comparison predicate '{predicate}'")
        if lhs.type != rhs.type:
            raise IRError(f"'{cls.name}': operand types differ")
        result = (
            VectorType(lhs.type.shape, i1) if isinstance(lhs.type, VectorType) else i1
        )
        return cls(
            operands=[lhs, rhs],
            result_types=[result],
            attributes={"predicate": predicate},
        )

    @property
    def predicate(self) -> str:
        return self.attributes["predicate"]

    def fold(self):
        lhs_const = constant_value(self.operands[0])
        rhs_const = constant_value(self.operands[1])
        if lhs_const is not None and rhs_const is not None:
            return [int(_CMP_PREDICATES[self.predicate](lhs_const, rhs_const))]
        return None


@arith.op
class CmpIOp(_CmpOp):
    name = "arith.cmpi"


@arith.op
class CmpFOp(_CmpOp):
    name = "arith.cmpf"


@arith.op
class SelectOp(Operation):
    """``select(cond, true_value, false_value)``, elementwise on vectors."""

    name = "arith.select"
    traits = frozenset({Trait.PURE})

    @classmethod
    def build(cls, cond: Value, true_value: Value, false_value: Value) -> "SelectOp":
        if true_value.type != false_value.type:
            raise IRError("arith.select branch types differ")
        return cls(
            operands=[cond, true_value, false_value],
            result_types=[true_value.type],
        )

    def fold(self):
        cond_const = constant_value(self.operands[0])
        if cond_const is not None:
            return [self.operands[1] if cond_const else self.operands[2]]
        if self.operands[1] is self.operands[2]:
            return [self.operands[1]]
        return None


@arith.op
class IndexCastOp(Operation):
    """Cast between index and integer types."""

    name = "arith.index_cast"
    traits = frozenset({Trait.PURE})

    @classmethod
    def build(cls, value: Value, result_type: Type) -> "IndexCastOp":
        return cls(operands=[value], result_types=[result_type])

    def fold(self):
        const = constant_value(self.operands[0])
        if const is not None:
            return [int(const)]
        return None


@arith.op
class SIToFPOp(Operation):
    """Signed integer to floating point conversion."""

    name = "arith.sitofp"
    traits = frozenset({Trait.PURE})

    @classmethod
    def build(cls, value: Value, result_type: Type) -> "SIToFPOp":
        return cls(operands=[value], result_types=[result_type])

    def fold(self):
        const = constant_value(self.operands[0])
        if const is not None:
            return [float(const)]
        return None


@arith.op
class FPToSIOp(Operation):
    """Floating point to signed integer conversion (truncating)."""

    name = "arith.fptosi"
    traits = frozenset({Trait.PURE})

    @classmethod
    def build(cls, value: Value, result_type: Type) -> "FPToSIOp":
        return cls(operands=[value], result_types=[result_type])

    def fold(self):
        const = constant_value(self.operands[0])
        if const is not None:
            return [int(const)]
        return None


@arith.op
class TruncFOp(Operation):
    """Floating point truncation (e.g. f64 -> f32)."""

    name = "arith.truncf"
    traits = frozenset({Trait.PURE})

    @classmethod
    def build(cls, value: Value, result_type: Type) -> "TruncFOp":
        return cls(operands=[value], result_types=[result_type])


@arith.op
class ExtFOp(Operation):
    """Floating point extension (e.g. f32 -> f64)."""

    name = "arith.extf"
    traits = frozenset({Trait.PURE})

    @classmethod
    def build(cls, value: Value, result_type: Type) -> "ExtFOp":
        return cls(operands=[value], result_types=[result_type])


@arith.op
class DivSIOp(_BinaryOp):
    """Signed integer division (floor semantics in our Python backend)."""

    name = "arith.divsi"
    py_operator = operator.floordiv
    identity = 1


@arith.op
class RemSIOp(_BinaryOp):
    name = "arith.remsi"
    py_operator = operator.mod


@arith.op
class AndIOp(_BinaryOp):
    name = "arith.andi"
    traits = _BinaryOp.traits | {Trait.COMMUTATIVE}
    py_operator = operator.and_


@arith.op
class OrIOp(_BinaryOp):
    name = "arith.ori"
    traits = _BinaryOp.traits | {Trait.COMMUTATIVE}
    py_operator = operator.or_
    identity = 0


@arith.op
class MinFOp(_BinaryOp):
    name = "arith.minf"
    traits = _BinaryOp.traits | {Trait.COMMUTATIVE}
    py_operator = min


@arith.op
class MaxFOp(_BinaryOp):
    name = "arith.maxf"
    traits = _BinaryOp.traits | {Trait.COMMUTATIVE}
    py_operator = max
