"""The ``memref`` dialect: buffer allocation, loads, stores and copies."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..ir.dialect import Dialect
from ..ir.ops import IRError, Operation
from ..ir.traits import Trait
from ..ir.types import IndexType, MemRefType, Type
from ..ir.value import Value

memref = Dialect("memref", "Buffers with explicit load/store semantics")


@memref.op
class AllocOp(Operation):
    """Allocate a buffer; dynamic dimensions are passed as index operands."""

    name = "memref.alloc"

    @classmethod
    def build(cls, memref_type: MemRefType, dynamic_sizes: Sequence[Value] = ()) -> "AllocOp":
        dynamic = sum(1 for d in memref_type.shape if d is None)
        if dynamic != len(dynamic_sizes):
            raise IRError(
                f"memref.alloc of {memref_type} needs {dynamic} dynamic sizes, "
                f"got {len(dynamic_sizes)}"
            )
        return cls(operands=list(dynamic_sizes), result_types=[memref_type])


@memref.op
class DeallocOp(Operation):
    name = "memref.dealloc"

    @classmethod
    def build(cls, buffer: Value) -> "DeallocOp":
        return cls(operands=[buffer])


@memref.op
class LoadOp(Operation):
    name = "memref.load"

    @classmethod
    def build(cls, buffer: Value, indices: Sequence[Value]) -> "LoadOp":
        buffer_type = buffer.type
        if not isinstance(buffer_type, MemRefType):
            raise IRError("memref.load requires a memref operand")
        if len(indices) != buffer_type.rank:
            raise IRError(
                f"memref.load on rank-{buffer_type.rank} memref needs "
                f"{buffer_type.rank} indices, got {len(indices)}"
            )
        return cls(
            operands=[buffer] + list(indices),
            result_types=[buffer_type.element_type],
        )

    @property
    def buffer(self) -> Value:
        return self.operands[0]

    @property
    def indices(self):
        return self.operands[1:]


@memref.op
class StoreOp(Operation):
    name = "memref.store"

    @classmethod
    def build(cls, value: Value, buffer: Value, indices: Sequence[Value]) -> "StoreOp":
        buffer_type = buffer.type
        if not isinstance(buffer_type, MemRefType):
            raise IRError("memref.store requires a memref operand")
        if value.type != buffer_type.element_type:
            raise IRError(
                f"memref.store element mismatch: {value.type} into {buffer_type}"
            )
        return cls(operands=[value, buffer] + list(indices))

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def buffer(self) -> Value:
        return self.operands[1]

    @property
    def indices(self):
        return self.operands[2:]


@memref.op
class CopyOp(Operation):
    """Copy the contents of one buffer into another of equal shape."""

    name = "memref.copy"

    @classmethod
    def build(cls, source: Value, target: Value) -> "CopyOp":
        return cls(operands=[source, target])

    @property
    def source(self) -> Value:
        return self.operands[0]

    @property
    def target(self) -> Value:
        return self.operands[1]


@memref.op
class DimOp(Operation):
    """Query a (dynamic) dimension of a memref."""

    name = "memref.dim"

    @classmethod
    def build(cls, buffer: Value, dim: int) -> "DimOp":
        return cls(
            operands=[buffer],
            result_types=[IndexType()],
            attributes={"dim": dim},
        )

    @property
    def dim(self) -> int:
        return self.attributes["dim"]


@memref.op
class ConstantBufferOp(Operation):
    """A read-only buffer initialized from a dense payload.

    Stands in for MLIR's ``memref.global`` + ``memref.get_global`` pair;
    used for leaf-distribution lookup tables (histogram buckets,
    categorical probabilities).
    """

    name = "memref.constant_buffer"
    traits = frozenset({Trait.PURE})

    @classmethod
    def build(cls, data: np.ndarray, element_type: Type) -> "ConstantBufferOp":
        data = np.asarray(data)
        ty = MemRefType(tuple(data.shape), element_type)
        return cls(attributes={"data": data}, result_types=[ty])

    @property
    def data(self) -> np.ndarray:
        return self.attributes["data"]
