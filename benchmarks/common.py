"""Shared infrastructure for the figure/table reproduction benchmarks.

Every benchmark prints a paper-style summary table (what the figure
shows) next to the values this reproduction measures. Absolute numbers
are not comparable — the backend is a Python-ISA simulator (DESIGN.md) —
so EXPERIMENTS.md tracks the *shape*: orderings, rough factors and
crossovers.

Environment knobs:

- ``REPRO_BENCH_SCALE``: float multiplier on workload sizes (default 1.0).
  Raise it to push sample counts / SPN sizes toward paper scale.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.data import SpeakerDatasetConfig, generate_speaker_dataset, train_speaker_spns
from repro.spn import LearnSPNOptions

#: Workload scale factor (1.0 = laptop scale).
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(value: int, minimum: int = 1) -> int:
    return max(minimum, int(round(value * SCALE)))


def round_to(value: int, multiple: int) -> int:
    """Round ``value`` up to a multiple (so vector widths divide batches)."""
    return max(multiple, ((value + multiple - 1) // multiple) * multiple)


class TimingResult(float):
    """Median wall-clock seconds per round, as a plain float.

    Extra attributes keep the warm-up call (which absorbs first-call
    compile/caching cost) separate from the measured rounds, and expose
    per-round variance so BENCH numbers can be sanity-checked:

    - ``warmup_seconds``: duration of the discarded warm-up call,
    - ``mean`` / ``stdev``: statistics over the measured rounds,
    - ``rounds``: number of measured rounds,
    - ``times``: the raw per-round durations.
    """

    warmup_seconds: float
    mean: float
    stdev: float
    rounds: int
    times: tuple

    def __new__(cls, times: List[float], warmup_seconds: float) -> "TimingResult":
        self = super().__new__(cls, float(np.median(times)))
        self.warmup_seconds = float(warmup_seconds)
        self.mean = float(np.mean(times))
        self.stdev = float(np.std(times))
        self.rounds = len(times)
        self.times = tuple(times)
        return self


def time_callable(
    fn: Callable, min_rounds: int = 3, max_seconds: float = 5.0
) -> TimingResult:
    """Median wall-clock seconds of ``fn`` over adaptive rounds.

    The first call is a discarded warm-up (its duration is reported
    separately as ``warmup_seconds``), so first-call compile time never
    pollutes the measured rounds.
    """
    warmup_start = time.perf_counter()
    fn()  # warm-up
    warmup_seconds = time.perf_counter() - warmup_start
    times: List[float] = []
    budget_start = time.perf_counter()
    while len(times) < min_rounds and time.perf_counter() - budget_start < max_seconds:
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return TimingResult(times, warmup_seconds)


def write_bench_json(name: str, payload: dict, merge: bool = False) -> str:
    """Write a BENCH_*.json perf-trajectory file at the repo root.

    ``REPRO_BENCH_OUT`` overrides the output directory. With
    ``merge=True`` existing top-level keys not present in ``payload``
    are preserved, so independent benchmarks (e.g. the Fig. 7 table and
    the scaling curve) can co-own one file without clobbering each
    other. Returns the path.
    """
    out_dir = os.environ.get(
        "REPRO_BENCH_OUT", os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    if merge and os.path.exists(path):
        try:
            with open(path) as handle:
                existing = json.load(handle)
        except (OSError, ValueError):
            existing = {}
        existing.update(payload)
        payload = existing
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _lpt_makespan(durations: List[float], workers: int) -> float:
    """Makespan of a longest-processing-time list schedule.

    Mirrors the runtime's chunk plan (uniform chunks, tail last): sort
    descending, always assign to the least-loaded worker.
    """
    loads = [0.0] * max(1, workers)
    for duration in sorted(durations, reverse=True):
        loads[loads.index(min(loads))] += duration
    return max(loads)


def scaling_curve(
    make_executable: Callable[[int], object],
    inputs: np.ndarray,
    workers=(1, 2, 4, 8),
    batch_hint: Optional[int] = None,
) -> dict:
    """Thread-count → throughput curve for the sharded batch executor.

    ``make_executable(w)`` must return a compiled executable whose
    kernel was built with ``num_threads=w``; every executable this
    opens is closed before returning. Points where the host has at
    least ``w`` cores are **measured** wall-clock. Where it does not (a
    laptop or 1-core CI box cannot *measure* 8-way scaling), the point
    is **modeled** in the same native-equivalent "calibration units"
    the gpusim uses (see its module docs): a Python-ISA kernel call
    splits into a row-*independent* interpreter pass (one NumPy-call
    dispatch per SPN op — an artifact of Python as the ISA; a native
    SPNC kernel pays a plain function call instead) and the
    row-*proportional* vectorized compute, which releases the GIL and
    is what actually shards. Both terms are measured on the
    single-thread executable; the model charges the interpreter pass
    once as the Amdahl serial term and list-schedules the per-chunk
    compute (the exact ``plan_chunks`` decomposition) onto ``w``
    workers. The modeled 1-worker time reproduces the measured
    single-call wall from the same two parameters, which is the model's
    calibration check; each point records its ``mode`` so BENCH
    consumers can tell measurement from model.
    """
    from repro.runtime.threadpool import plan_chunks

    host_cores = os.cpu_count() or 1
    rows = int(inputs.shape[0])
    workers = tuple(sorted(set(int(w) for w in workers)))
    if not workers or workers[0] != 1:
        workers = (1,) + workers

    ex1 = make_executable(1)
    opened = [ex1]
    params: Dict[str, float] = {}

    try:
        wall_1 = float(time_callable(lambda: ex1.execute(inputs)))
        hint = min(int(batch_hint or ex1.signature.batch_size), rows)

        def model_params():
            if not params:
                # One-row call ≈ the pure interpreter pass; the marginal
                # row cost falls out of a hint-wide call.
                fixed = float(time_callable(lambda: ex1.execute(inputs[:1])))
                full = float(time_callable(lambda: ex1.execute(inputs[:hint])))
                params["fixed"] = fixed
                params["marginal"] = max((full - fixed) / hint, 1e-12)
            return params["fixed"], params["marginal"]

        points: Dict[str, dict] = {}
        for w in workers:
            if w == 1:
                mode, seconds, baseline = "measured", wall_1, wall_1
            elif host_cores >= w:
                ex = make_executable(w)
                opened.append(ex)
                seconds = float(time_callable(lambda: ex.execute(inputs)))
                mode, baseline = "measured", wall_1
            else:
                fixed, marginal = model_params()
                works = [
                    (end - start) * marginal
                    for start, end in plan_chunks(rows, hint, w)
                ]
                seconds = fixed + _lpt_makespan(works, w)
                # Same-model baseline keeps modeled speedups internally
                # consistent even where it drifts from the measured wall.
                mode, baseline = "modeled", fixed + rows * marginal
            speedup = baseline / seconds if seconds > 0 else 0.0
            points[str(w)] = {
                "mode": mode,
                "seconds": seconds,
                "samples_per_second": rows / seconds if seconds > 0 else 0.0,
                "speedup": speedup,
                "efficiency": speedup / w,
            }
        curve = {
            "host_cores": host_cores,
            "rows": rows,
            "chunk_hint": hint,
            "measured_single_thread_seconds": wall_1,
            "workers": points,
            "note": (
                "modeled points (host_cores < w): native-equivalent "
                "calibration — measured row-independent interpreter pass "
                "charged once (Amdahl serial term) + measured "
                "row-proportional vector compute list-scheduled over the "
                "plan_chunks decomposition; measured points are wall-clock"
            ),
        }
        if params:
            curve["model"] = {
                "serial_seconds": params["fixed"],
                "per_row_seconds": params["marginal"],
                "baseline_seconds": params["fixed"] + rows * params["marginal"],
            }
        return curve
    finally:
        for ex in opened:
            ex.close()


#: Every FigureReport registers itself here; the benchmark conftest
#: prints them in the terminal summary so the paper-vs-measured tables
#: appear even when pytest captures stdout.
ALL_REPORTS: List["FigureReport"] = []


@dataclass
class FigureReport:
    """Collects (configuration → measurement) rows and prints the figure."""

    figure: str
    title: str
    unit: str = "us/sample"
    paper: Dict[str, str] = field(default_factory=dict)
    rows: Dict[str, float] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def __post_init__(self):
        ALL_REPORTS.append(self)

    def add(self, name: str, value: float) -> None:
        self.rows[name] = value

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        width = max([len(k) for k in list(self.rows) + list(self.paper)] + [12])
        lines = [
            "",
            f"=== {self.figure}: {self.title} ===",
            f"{'configuration':<{width}}  {'measured (' + self.unit + ')':>22}  paper",
        ]
        for name, value in self.rows.items():
            paper = self.paper.get(name, "-")
            lines.append(f"{name:<{width}}  {value:>22.3f}  {paper}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        lines.append("")
        return "\n".join(lines)

    def show(self) -> None:
        print(self.render())


# --- cached speaker workload (shared by Figs. 6-9 and compile-time stats) ---------

_SPEAKER_CACHE: Optional[dict] = None


def speaker_workload() -> dict:
    """Speaker-ID SPNs + clean/noisy evaluation sets (cached per session).

    Learned SPNs land in the high hundreds to low thousands of operations
    (the paper's average is ~2.5k); sample counts default to 8192 clean /
    16384 noisy and grow with REPRO_BENCH_SCALE (paper: 245k / 1.2M).
    """
    global _SPEAKER_CACHE
    if _SPEAKER_CACHE is not None:
        return _SPEAKER_CACHE

    clean = round_to(scaled(8192), 4096)
    noisy = round_to(scaled(16384), 4096)
    config = SpeakerDatasetConfig(
        num_speakers=3,
        train_samples_per_speaker=scaled(2500),
        clean_samples=clean,
        noisy_samples=noisy,
        noise_missing_fraction=0.3,
        seed=17,
    )
    dataset = generate_speaker_dataset(config)
    options = LearnSPNOptions(
        min_instances=10, independence_threshold=0.28, max_depth=20
    )
    spns = train_speaker_spns(dataset, options)
    _SPEAKER_CACHE = {
        "dataset": dataset,
        "spns": spns,
        "clean": dataset.clean,
        "noisy": dataset.noisy,
    }
    return _SPEAKER_CACHE


# --- cached RAT-SPN workload (Figs. 10-13 and the V-B2 table) ----------------------

_RAT_CACHE: Optional[dict] = None


def rat_workload() -> dict:
    """RAT-SPN class models + image data (cached per session).

    The default scale gives ~1.6k nodes (~10k LoSPN operations) per class
    — the paper's models have ~340k nodes; REPRO_BENCH_SCALE grows
    ``num_repetitions`` toward that. The partition-size and
    opt-level sweeps are shape-invariant in this range.
    """
    global _RAT_CACHE
    if _RAT_CACHE is not None:
        return _RAT_CACHE
    from repro.data import ImageDatasetConfig, generate_image_dataset
    from repro.spn import RatSpnConfig, build_rat_spn, train_rat_spn

    config = RatSpnConfig(
        num_features=64,
        num_classes=4,
        depth=3,
        num_repetitions=scaled(4),
        num_sums=6,
        num_input_distributions=3,
        seed=2,
    )
    roots = build_rat_spn(config)
    images = generate_image_dataset(
        ImageDatasetConfig(
            num_classes=config.num_classes,
            side=8,
            train_per_class=scaled(150),
            test_samples=round_to(scaled(2048), 1024),
            seed=23,
        )
    )
    train_rat_spn(roots, images.train, images.train_labels, em_iterations=2)
    _RAT_CACHE = {"config": config, "roots": roots, "images": images}
    return _RAT_CACHE


#: Max-partition-size sweep for the ~10k-op default RAT models.
RAT_PARTITION_SIZES = (300, 600, 1200, 2500, 5000, 10000)


def geomean(values) -> float:
    values = np.asarray(list(values), dtype=np.float64)
    return float(np.exp(np.log(values).mean()))
