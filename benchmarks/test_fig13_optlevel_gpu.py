"""Fig. 13 — RAT-SPN: optimization level vs compile & execution time (GPU).

Paper: same shape as the CPU sweep — -O0 compiles fastest and executes
slowest; -O1…-O3 cost more compile time with similar execution times.
On the GPU path -O0 additionally keeps the naive host↔device round
trips (no copy elimination), which shows up as extra transfer time.
"""

import time

import pytest

from repro.compiler import CompilerOptions, compile_spn
from repro.spn import JointProbability

from .common import FigureReport, rat_workload

report = FigureReport(
    "Fig. 13",
    "RAT-SPN optimization-level sweep, GPU",
    unit="seconds",
    paper={
        "-O0: exec (sim)": "slowest (naive copies)",
        "-O1: exec (sim)": "paper's pick",
    },
)

_exec_times = {}
_compile_times = {}
_bytes_moved = {}

OPT_LEVELS = (0, 1, 2, 3)
PARTITION_SIZE = 2500


@pytest.mark.parametrize("opt", OPT_LEVELS)
def test_fig13_opt_level(benchmark, opt):
    workload = rat_workload()
    spn = workload["roots"][0]
    images = workload["images"].test
    options = CompilerOptions(
        target="gpu", max_partition_size=PARTITION_SIZE, opt_level=opt
    )
    query = JointProbability(batch_size=64)

    holder = {}

    def compile_once():
        start = time.perf_counter()
        holder["result"] = compile_spn(spn, query, options)
        holder["compile_seconds"] = time.perf_counter() - start

    benchmark.pedantic(compile_once, rounds=1, iterations=1)
    # Unified pass instrumentation: the per-stage breakdown accounts for
    # (a bounded share of) the measured wall-clock, and the GPU leg's
    # codegen stage is reported under its frozen public name.
    stage_seconds = holder["result"].stage_seconds
    assert sum(stage_seconds.values()) <= holder["compile_seconds"]
    assert "gpu-codegen" in stage_seconds
    executable = holder["result"].executable
    simulated = min(
        (executable(images), executable.simulated_seconds())[1] for _ in range(5)
    )
    _compile_times[opt] = holder["compile_seconds"]
    _exec_times[opt] = simulated
    _bytes_moved[opt] = executable.last_profile.bytes_moved
    report.add(f"-O{opt}: compile", holder["compile_seconds"])
    report.add(f"-O{opt}: exec (sim)", simulated)


def test_fig13_summary(benchmark):
    benchmark(lambda: None)
    report.note(
        f"bytes moved per run: -O0 {_bytes_moved[0]:,} vs -O1 {_bytes_moved[1]:,} "
        "(copy elimination)"
    )
    report.show()
    assert _compile_times[0] == min(_compile_times.values())
    assert _exec_times[0] == max(_exec_times.values())
    # Copy elimination at -O1 reduces data movement.
    assert _bytes_moved[1] < _bytes_moved[0]
