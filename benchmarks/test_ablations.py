"""Ablations of the design choices DESIGN.md calls out.

Not figures from the paper — these quantify the individual mechanisms the
paper describes qualitatively: the Simple-Moves refinement of the graph
partitioning (§IV-A4), CSE on binarized SPN kernels (§IV-A5), and the
backend's vector-register reuse (-O2).
"""

import pytest

from repro.compiler import CompilerOptions, compile_spn
from repro.compiler.frontend import build_hispn_module
from repro.compiler.lower_to_lospn import lower_to_lospn
from repro.compiler.partitioning import GraphPartitioner, PartitioningOptions
from repro.ir.transforms import run_cse
from repro.spn import JointProbability

from .common import FigureReport, rat_workload, time_callable

report = FigureReport(
    "Ablations",
    "Mechanism-level ablations (values as noted per row)",
    unit="see row",
)


def _rat_body_ops():
    workload = rat_workload()
    module = lower_to_lospn(
        build_hispn_module(workload["roots"][0], JointProbability(batch_size=64))
    )
    body = [op for op in module.walk() if op.op_name == "lo_spn.body"][0]
    return [op for op in body.body.ops if op.op_name != "lo_spn.yield"]


def test_ablation_partition_refinement(benchmark):
    """Simple-Moves refinement reduces the store/load cut cost."""
    ops = _rat_body_ops()

    def run_refined():
        partitioner = GraphPartitioner(
            ops, PartitioningOptions(max_partition_size=1200, refinement_rounds=2)
        )
        partitioner.run()
        return partitioner.stats

    stats = benchmark(run_refined)
    no_refine = GraphPartitioner(
        ops, PartitioningOptions(max_partition_size=1200, refinement_rounds=0)
    )
    no_refine.run()
    report.add("partition cut, no refinement (cost)", no_refine.stats.final_cut_cost)
    report.add("partition cut, simple moves (cost)", stats.final_cut_cost)
    report.add("refinement moves applied", stats.moves_applied)
    assert stats.final_cut_cost <= no_refine.stats.final_cut_cost
    assert stats.moves_applied > 0


def test_ablation_cse(benchmark):
    """CSE shrinks the CPU-lowered kernels (repeated emitter constants:
    log-add-exp guards, clamp bounds, marginal placeholders)."""
    from repro.compiler.bufferization import (
        bufferize,
        insert_deallocations,
        remove_result_copies,
    )
    from repro.compiler.cpu.lowering import CPULoweringOptions, lower_kernel_to_cpu

    workload = rat_workload()
    spn = workload["roots"][0]

    def lowered_op_count(run_cse_pass):
        module = lower_to_lospn(
            build_hispn_module(spn, JointProbability(batch_size=64))
        )
        module = bufferize(module)
        remove_result_copies(module)
        insert_deallocations(module)
        lowered = lower_kernel_to_cpu(module, CPULoweringOptions(vectorize=True))
        eliminated = run_cse(lowered) if run_cse_pass else 0
        return len(lowered.walk()), eliminated

    before, _ = lowered_op_count(False)
    after, eliminated = benchmark.pedantic(
        lambda: lowered_op_count(True), rounds=1, iterations=1
    )
    report.add("lowered ops before CSE", before)
    report.add("lowered ops after CSE", before - eliminated)
    assert eliminated > 0


def test_ablation_vector_register_reuse(benchmark):
    """-O2's out= register reuse speeds up vectorized kernels."""
    workload = rat_workload()
    spn = workload["roots"][0]
    images = workload["images"].test
    query = JointProbability(batch_size=images.shape[0])

    plain = compile_spn(
        spn, query, CompilerOptions(vectorize="lanes", opt_level=1)
    ).executable
    reuse = compile_spn(
        spn, query, CompilerOptions(vectorize="lanes", opt_level=2)
    ).executable

    benchmark(lambda: reuse(images))
    t_plain = time_callable(lambda: plain(images), min_rounds=3)
    t_reuse = time_callable(lambda: reuse(images), min_rounds=3)
    report.add("vector kernel, fresh allocations (s)", t_plain)
    report.add("vector kernel, register reuse (s)", t_reuse)
    assert "out=" in reuse.source
    assert "out=" not in plain.source
    # Reuse must not be slower beyond noise (it is usually faster).
    assert t_reuse <= t_plain * 1.05


def test_ablation_summary(benchmark):
    benchmark(lambda: None)
    report.show()
