"""Structure-level optimization suite on a RAT-SPN — the tentpole BENCH.

Workload: per-class RAT-SPN heads round-tripped through serialization
into *independent deep copies* (as if each class model had been
exported and re-imported separately, the way the paper's per-class
pipeline hands models around), then combined into one class-marginal
mixture. The frontend can no longer see the cross-class sharing that
``build_rat_spn`` creates in-process, so ``structure-cse`` has to
recover it by canonical hashing — exactly the redundancy the paper
identifies as the reason its per-class kernels trail the tensorized
baselines. On top of that, each head's root mixture gets a planted
near-zero tail (exact zeros plus a 1e-200 sliver) so the range-gated
``structure-prune`` pass measurably fires within its accuracy budget.

Measured per structure_opt spelling (none / cse / cse,prune /
cse,prune,compress):

- per-pass HiSPN op-count deltas and pass wall time (from the
  PassManager instrumentation),
- end-to-end compile time and batch inference time,
- max |Δ log-likelihood| against the unoptimized reference over the
  modeled input domain (must be 0 for CSE, ≤ budget for lossy suites),
- a DifferentialOracle ``check_structure_case`` run across the
  cpu/gpu execution-configuration matrix (the *proof*, not just a spot
  check).

Everything lands in ``BENCH_structure.json``. Acceptance (always
asserted): cse+prune removes ≥ 30% of HiSPN ops. The *measured*
compile-time regression tripwire — optimized compile must stay faster
than baseline — is a separate gated test (``REPRO_STRUCTURE_GATE=1``,
the CI structure canary) so laptop noise never fails a local run.
"""

import os

import numpy as np
import pytest

from repro.compiler import CompilerOptions, compile_spn
from repro.spn import (
    JointProbability,
    RatSpnConfig,
    Sum,
    build_rat_spn,
    deserialize,
    num_nodes,
    serialize,
)
from repro.testing.generators import Case
from repro.testing.oracle import DifferentialOracle, clamp_to_modeled_domain

from .common import FigureReport, round_to, scaled, time_callable, write_bench_json

#: Shared accuracy budget for the lossy suites (matches the fuzzer
#: default, split by the ladder across prune/compress).
BUDGET = 0.05

#: (row label, CompilerOptions structure kwargs) per measured variant.
VARIANTS = (
    ("baseline", {"structure_opt": "none"}),
    ("cse", {"structure_opt": "cse"}),
    ("cse+prune", {"structure_opt": "cse,prune", "accuracy_budget": BUDGET}),
    (
        "cse+prune+compress",
        {"structure_opt": "cse,prune,compress", "accuracy_budget": BUDGET},
    ),
)

report = FigureReport(
    "Structure",
    "RAT-SPN structure suite: HiSPN op reduction / compile / inference",
    unit="see row",
    paper={},
)

#: Populated by ``test_structure_suite`` and consumed by the gated
#: regression test + summary (same pattern as the §V-B2 table rows).
_RESULTS: dict = {}

_WORKLOAD: dict = {}


def structure_workload() -> dict:
    """Class-marginal mixture of deep-copied RAT-SPN heads (cached)."""
    if _WORKLOAD:
        return _WORKLOAD
    config = RatSpnConfig(
        num_features=16,
        num_classes=4,
        depth=2,
        num_repetitions=scaled(2),
        num_sums=4,
        num_input_distributions=3,
        seed=5,
    )
    heads = build_rat_spn(config)
    query = JointProbability(batch_size=round_to(scaled(2048), 512))

    # Serialization round-trip = deep copy preserving *intra*-head
    # sharing while severing every cross-head Python-object identity.
    copies = [deserialize(serialize(head, query))[0] for head in heads]
    for head in copies:
        weights = np.asarray(head.weights, dtype=np.float64)
        # Planted prune fodder at fixed positions (identical across
        # heads, so after CSE re-shares the backbone the dropped
        # children go fully dead and the op count actually shrinks):
        # exact zeros are always dropped; the 1e-200 sliver exercises
        # the range-gated perturbation bound, which at this 16-feature
        # scope admits only astronomically small masses (see
        # compiler/structure/ranges.py — the bound is sound pointwise,
        # hence extremely conservative on deep Gaussian scopes).
        weights[-3:] = 0.0
        weights[-4] = 1e-200
        live = weights[:-4]
        weights[:-4] = live * (1.0 - 1e-200) / live.sum()
        head.weights = [float(w) for w in weights]

    mixture = Sum(copies, [1.0 / len(copies)] * len(copies))
    rng = np.random.default_rng(41)
    inputs = rng.normal(0.0, 2.0, size=(query.batch_size, 16)).astype(np.float32)
    _WORKLOAD.update(
        {
            "config": config,
            "mixture": mixture,
            "query": query,
            "inputs": inputs,
            "nodes_per_head": num_nodes(copies[0]),
        }
    )
    return _WORKLOAD


def _structure_records(result):
    return [r for r in result.timings.records if r.name.startswith("structure-")]


def _hispn_ops_after_simplify(result) -> int:
    for record in result.timings.records:
        if record.name == "hispn-simplify":
            return record.ops_after
    raise AssertionError("hispn-simplify record missing from instrumentation")


def test_structure_suite(benchmark):
    workload = structure_workload()
    mixture, query, inputs = (
        workload["mixture"],
        workload["query"],
        workload["inputs"],
    )
    domain_inputs = clamp_to_modeled_domain(mixture, inputs)

    variants: dict = {}
    reference = None
    reference_domain = None
    for name, kwargs in VARIANTS:
        options = CompilerOptions(**kwargs)
        result = compile_spn(mixture, query, options)
        records = _structure_records(result)
        ops_before = (
            records[0].ops_before if records else _hispn_ops_after_simplify(result)
        )
        ops_after = records[-1].ops_after if records else ops_before
        executable = result.executable
        inference = time_callable(lambda e=executable: e(inputs))
        outputs = executable(inputs)
        outputs_domain = executable(domain_inputs)

        if name == "baseline":
            reference, reference_domain = outputs, outputs_domain
            max_error = 0.0
            exact = True
        else:
            # CSE merges bit-identical computations, so its output is
            # bit-exact on arbitrary inputs; lossy suites are only
            # promised the budget over the modeled domain.
            exact = bool(np.array_equal(outputs, reference))
            max_error = float(np.max(np.abs(outputs_domain - reference_domain)))

        variants[name] = {
            "passes": [
                {
                    "name": r.name,
                    "seconds": r.seconds,
                    "ops_before": r.ops_before,
                    "ops_after": r.ops_after,
                }
                for r in records
            ],
            "suite_ops_before": ops_before,
            "suite_ops_after": ops_after,
            "op_reduction": round(1.0 - ops_after / ops_before, 4),
            "compile_seconds": result.compile_time,
            "inference_seconds": float(inference),
            "inference_stdev": inference.stdev,
            "max_abs_error": max_error,
            "bit_exact_vs_baseline": exact,
        }
        report.add(f"{name}: hispn ops", float(ops_after))
        report.add(f"{name}: compile s", result.compile_time)
        report.add(f"{name}: inference s", float(inference))
    benchmark(lambda: None)  # timings collected above

    base = variants["baseline"]
    opt = variants["cse+prune"]

    # --- semantic contract ------------------------------------------------
    assert variants["cse"]["bit_exact_vs_baseline"], (
        "structure-cse must be bit-exact against the unoptimized kernel"
    )
    for lossy in ("cse+prune", "cse+prune+compress"):
        assert variants[lossy]["max_abs_error"] <= BUDGET, (
            f"{lossy}: max |Δ log-likelihood| "
            f"{variants[lossy]['max_abs_error']:.3e} exceeds budget {BUDGET}"
        )

    # --- acceptance: >= 30% HiSPN op reduction from cse+prune -------------
    assert opt["op_reduction"] >= 0.30, (
        f"cse+prune removed only {opt['op_reduction']:.1%} of HiSPN ops "
        f"({opt['suite_ops_before']} -> {opt['suite_ops_after']}); "
        "acceptance floor is 30%"
    )
    # Pruning itself must fire (planted zero/near-zero tail weights).
    prune_record = variants["cse+prune"]["passes"][-1]
    assert prune_record["name"] == "structure-prune"
    assert prune_record["ops_after"] < prune_record["ops_before"], (
        "structure-prune removed no ops despite planted near-zero weights"
    )

    # --- oracle proof across the execution-configuration matrix ----------
    oracle = DifferentialOracle()
    case = Case(
        seed=0,
        index=0,
        spn=mixture,
        num_features=16,
        query=JointProbability(batch_size=64),
        inputs=inputs[:64].astype(np.float64),
    )
    divergences = oracle.check_structure_case(
        case, "cse,prune", accuracy_budget=BUDGET
    )
    assert divergences == [], [d.config for d in divergences]

    payload = {
        "model": {
            "classes": workload["config"].num_classes,
            "features": workload["config"].num_features,
            "nodes_per_head": workload["nodes_per_head"],
            "hispn_ops_baseline": base["suite_ops_before"],
        },
        "accuracy_budget": BUDGET,
        "variants": variants,
        "acceptance": {
            "op_reduction_cse_prune": opt["op_reduction"],
            "op_reduction_floor": 0.30,
            "compile_speedup_cse_prune": round(
                base["compile_seconds"] / opt["compile_seconds"], 4
            ),
            "inference_speedup_cse_prune": round(
                base["inference_seconds"] / opt["inference_seconds"], 4
            ),
            "oracle_divergences": 0,
        },
    }
    _RESULTS.update(payload)
    path = write_bench_json("structure", payload)
    report.note(f"wrote {path}")


def test_structure_gate(benchmark):
    """Measured compile-time regression tripwire (CI structure canary).

    The cse+prune suite shrinks the HiSPN module by ≥ 30%, so every
    downstream stage (lower, partition, bufferize, codegen) has less to
    chew on — optimized compiles must not be slower than baseline. The
    floor is deliberately loose (1.0x) so runner noise survives while a
    suite that *adds* net compile time is caught.
    """
    if os.environ.get("REPRO_STRUCTURE_GATE") != "1":
        pytest.skip("structure gate disabled (set REPRO_STRUCTURE_GATE=1)")
    if not _RESULTS:
        pytest.skip("structure suite results unavailable")
    benchmark(lambda: None)

    speedup = _RESULTS["acceptance"]["compile_speedup_cse_prune"]
    report.add("gate: compile speedup", speedup)
    assert speedup >= 1.0, (
        f"cse+prune compile is {1.0 / speedup:.2f}x SLOWER than baseline "
        f"(BENCH_structure.json acceptance.compile_speedup_cse_prune="
        f"{speedup}); the structure suite must pay for itself"
    )
    assert _RESULTS["acceptance"]["op_reduction_cse_prune"] >= 0.30


def test_structure_summary(benchmark):
    benchmark(lambda: None)
    if not _RESULTS:
        pytest.skip("structure suite results unavailable")
    acceptance = _RESULTS["acceptance"]
    report.note(
        f"cse+prune: {acceptance['op_reduction_cse_prune']:.1%} fewer HiSPN "
        f"ops, {acceptance['compile_speedup_cse_prune']:.2f}x compile, "
        f"{acceptance['inference_speedup_cse_prune']:.2f}x inference, "
        f"oracle clean at budget {BUDGET}"
    )
    report.show()
