"""Fig. 8 — performance comparison on noisy speech with marginalization.

Paper: the Tensorflow translation does not support the marginalization
needed for missing features, so no TF bars appear. Speedups over SPFlow
Python: SPNC no-vec 482x, GPU 524x, AVX2 814x, AVX-512 935x — with the
GPU overtaking the non-vectorized CPU here because more samples are
available for simultaneous processing.
"""

import numpy as np
import pytest

from repro.baselines import MarginalizationUnsupported, Session, log_likelihood_python, translate_to_graph
from repro.compiler import CompilerOptions, compile_spn
from repro.spn import JointProbability

from .common import FigureReport, geomean, scaled, speaker_workload

report = FigureReport(
    "Fig. 8",
    "Noisy speech (marginalized): speedup over SPFlow Python",
    unit="speedup (x)",
    paper={
        "spnc no-vec": "482x",
        "spnc gpu": "524x",
        "spnc avx2": "814x",
        "spnc avx512": "935x",
        "tensorflow": "unsupported (no bars)",
    },
)

_state = {}


def _setup():
    if _state:
        return _state
    workload = speaker_workload()
    inputs = workload["noisy"]
    x64 = inputs.astype(np.float64)
    n = inputs.shape[0]
    probe = max(64, scaled(128))
    import time

    baseline = []
    for spn in workload["spns"]:
        start = time.perf_counter()
        log_likelihood_python(spn, x64[:probe])
        baseline.append((time.perf_counter() - start) / probe)
    _state.update(workload=workload, inputs=inputs, x64=x64, n=n, baseline=baseline)
    return _state


def _record(name, per_sample_seconds):
    state = _setup()
    report.add(
        name, geomean(b / t for b, t in zip(state["baseline"], per_sample_seconds))
    )


CONFIGS = {
    "spnc no-vec": CompilerOptions(vectorize="off"),
    "spnc avx2": CompilerOptions(vectorize="lanes", opt_level=2),
    "spnc avx512": CompilerOptions(vectorize="lanes", vector_isa="avx512", opt_level=2),
}


@pytest.mark.parametrize("name", list(CONFIGS))
def test_fig08_spnc_cpu(benchmark, name):
    state = _setup()
    query = JointProbability(batch_size=state["n"], support_marginal=True)
    executables = [
        compile_spn(spn, query, CONFIGS[name]).executable
        for spn in state["workload"]["spns"]
    ]
    inputs = state["inputs"]

    def run_all():
        for executable in executables:
            executable(inputs)

    benchmark(run_all)
    per_spn = benchmark.stats.stats.median / len(executables) / state["n"]
    _record(name, [per_spn] * len(executables))


def test_fig08_spnc_gpu(benchmark):
    state = _setup()
    query = JointProbability(batch_size=64, support_marginal=True)
    executables = [
        compile_spn(spn, query, CompilerOptions(target="gpu")).executable
        for spn in state["workload"]["spns"]
    ]
    inputs = state["inputs"]

    benchmark(lambda: [e(inputs) for e in executables])
    per_sample = []
    for executable in executables:
        simulated = min(
            (executable(inputs), executable.simulated_seconds())[1]
            for _ in range(5)
        )
        per_sample.append(simulated / state["n"])
    _record("spnc gpu", per_sample)


def test_fig08_tensorflow_unsupported(benchmark):
    """The TF graph translation rejects marginalization (paper: no bars)."""
    state = _setup()
    session = Session(translate_to_graph(state["workload"]["spns"][0]))
    benchmark(lambda: None)
    with pytest.raises(MarginalizationUnsupported):
        session.run(state["x64"])


def test_fig08_summary(benchmark):
    benchmark(lambda: None)
    report.add("tensorflow", float("nan"))
    report.note("marginalized NaN features; TF translation raises (as in SPFlow)")
    report.show()
    rows = report.rows
    assert rows["spnc avx512"] > rows["spnc avx2"] > rows["spnc gpu"]
    # Paper Fig. 8: the GPU overtakes the non-vectorized CPU on the noisy
    # workload; in Python-ISA units it does so by a large margin.
    assert rows["spnc gpu"] > rows["spnc no-vec"]
    assert rows["spnc no-vec"] > 1.0
