"""Fig. 6 — CPU mapping-strategy design-space exploration.

Paper: execution time of the speaker-ID inference for No-Vec, AVX2
(vectorized without a vector library), +VecLib, +Shuffle. Key shape:
vectorization *without* a vector math library is slower than scalar
code; the vector library gives the big win; loads+shuffles add a small
further improvement over gathers.
"""

import numpy as np
import pytest

from repro.compiler import CompilerOptions, compile_spn
from repro.spn import JointProbability

from .common import FigureReport, speaker_workload, time_callable

report = FigureReport(
    "Fig. 6",
    "CPU configuration DSE, clean speech (execution time per sample)",
    paper={
        "no-vec": "1x (reference)",
        "avx2 (no veclib)": "slower than no-vec",
        "avx2 +veclib": "large improvement",
        "avx2 +veclib +shuffle": "small further improvement",
    },
)

CONFIGS = {
    "no-vec": CompilerOptions(vectorize="off"),
    "avx2 (no veclib)": CompilerOptions(
        vectorize="lanes", use_vector_library=False, use_shuffle=False
    ),
    "avx2 +veclib": CompilerOptions(vectorize="lanes", use_shuffle=False),
    "avx2 +veclib +shuffle": CompilerOptions(vectorize="lanes", use_shuffle=True),
}


@pytest.mark.parametrize("name", list(CONFIGS))
def test_fig06_cpu_config(benchmark, name):
    workload = speaker_workload()
    spn = workload["spns"][0]
    inputs = workload["clean"]
    query = JointProbability(batch_size=inputs.shape[0])
    executable = compile_spn(spn, query, CONFIGS[name]).executable

    benchmark(lambda: executable(inputs))
    per_sample = benchmark.stats.stats.median / inputs.shape[0] * 1e6
    report.add(name, per_sample)
    benchmark.extra_info["us_per_sample"] = per_sample


def test_fig06_summary(benchmark):
    benchmark(lambda: None)
    assert set(report.rows) == set(CONFIGS)
    report.note(
        "veclib effect reproduces: no-veclib is several times slower than +veclib"
    )
    report.note(
        "documented deviation (EXPERIMENTS.md): in Python-ISA units the scalar "
        "baseline is disproportionately slow, so 'avx2 (no veclib)' lands "
        "between no-vec and +veclib instead of above no-vec as in the paper"
    )
    report.show()
    # The veclib effect must reproduce strongly (paper: no-veclib loses big).
    assert report.rows["avx2 (no veclib)"] > 3 * report.rows["avx2 +veclib"]
    # Vectorized with veclib beats scalar.
    assert report.rows["avx2 +veclib"] < report.rows["no-vec"]
