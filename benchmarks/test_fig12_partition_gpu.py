"""Fig. 12 — RAT-SPN: max partition size vs compile & execution time (GPU).

Paper: for the GPU a smaller range of partition sizes is interesting —
small kernels incur too much launch/communication overhead. Compilation
time increases with partition size; execution time improves at a much
slower rate; the paper picks 10k operations.
"""

import time

import pytest

from repro.compiler import CompilerOptions, compile_spn
from repro.spn import JointProbability

from .common import RAT_PARTITION_SIZES, FigureReport, rat_workload

report = FigureReport(
    "Fig. 12",
    "RAT-SPN partition-size sweep, GPU",
    unit="seconds",
    paper={
        "exec trend": "small kernels pay launch+transfer overhead",
    },
)

_exec_times = {}
_compile_times = {}


@pytest.mark.parametrize("psize", RAT_PARTITION_SIZES)
def test_fig12_partition_size(benchmark, psize):
    workload = rat_workload()
    spn = workload["roots"][0]
    images = workload["images"].test
    options = CompilerOptions(target="gpu", max_partition_size=psize)
    query = JointProbability(batch_size=64)

    holder = {}

    def compile_once():
        start = time.perf_counter()
        holder["result"] = compile_spn(spn, query, options)
        holder["compile_seconds"] = time.perf_counter() - start

    benchmark.pedantic(compile_once, rounds=1, iterations=1)
    executable = holder["result"].executable
    simulated = min(
        (executable(images), executable.simulated_seconds())[1] for _ in range(5)
    )
    _compile_times[psize] = holder["compile_seconds"]
    _exec_times[psize] = simulated
    report.add(f"psize={psize:>6}: compile", holder["compile_seconds"])
    report.add(f"psize={psize:>6}: exec (sim)", simulated)
    benchmark.extra_info.update(
        tasks=holder["result"].num_tasks, simulated_exec=simulated
    )


def test_fig12_summary(benchmark):
    benchmark(lambda: None)
    report.show()
    sizes = sorted(_exec_times)
    # Many small kernels pay launch overhead: the smallest partition size
    # must execute slower than the largest.
    assert _exec_times[sizes[0]] > _exec_times[sizes[-1]]
