"""Fig. 11 — RAT-SPN: optimization level vs compile & execution time (CPU).

Paper: -O0 compiles fastest but executes slowest; -O1 through -O3
significantly increase compilation time while improving execution time,
with only small differences among them — the paper picks -O1.
"""

import time

import pytest

from repro.compiler import CompilerOptions, compile_spn
from repro.spn import JointProbability

from .common import FigureReport, rat_workload, time_callable

report = FigureReport(
    "Fig. 11",
    "RAT-SPN optimization-level sweep, CPU",
    unit="seconds",
    paper={
        "-O0: exec": "slowest execution",
        "-O1: exec": "big improvement; paper's pick",
        "-O2: exec": "similar to -O1",
        "-O3: exec": "similar to -O1",
    },
)

_compile_times = {}
_exec_times = {}
_slowest_stage = {}

OPT_LEVELS = (0, 1, 2, 3)
PARTITION_SIZE = 2500


@pytest.mark.parametrize("opt", OPT_LEVELS)
def test_fig11_opt_level(benchmark, opt):
    workload = rat_workload()
    spn = workload["roots"][0]
    images = workload["images"].test
    query = JointProbability(batch_size=images.shape[0])
    options = CompilerOptions(
        max_partition_size=PARTITION_SIZE, vectorize="lanes", opt_level=opt
    )

    holder = {}

    def compile_once():
        start = time.perf_counter()
        holder["result"] = compile_spn(spn, query, options)
        holder["compile_seconds"] = time.perf_counter() - start

    benchmark.pedantic(compile_once, rounds=1, iterations=1)
    exec_seconds = time_callable(
        lambda: holder["result"].executable(images), min_rounds=3
    )
    # The unified pass instrumentation breaks the wall-clock compile time
    # down per stage; the per-stage sum is bounded by what we measured.
    stage_seconds = holder["result"].stage_seconds
    assert sum(stage_seconds.values()) <= holder["compile_seconds"]
    _slowest_stage[opt] = max(stage_seconds, key=stage_seconds.get)
    _compile_times[opt] = holder["compile_seconds"]
    _exec_times[opt] = exec_seconds
    report.add(f"-O{opt}: compile", holder["compile_seconds"])
    report.add(f"-O{opt}: exec", exec_seconds)


def test_fig11_summary(benchmark):
    benchmark(lambda: None)
    report.note(
        "compile time grows with the optimization level, as in the paper"
    )
    report.note(
        "dominant stage per level: "
        + ", ".join(f"-O{opt} {_slowest_stage[opt]}" for opt in OPT_LEVELS)
    )
    report.note(
        "documented deviation (EXPERIMENTS.md): the paper's large -O0 "
        "execution penalty comes from LLVM -O0 keeping values in memory; "
        "the Python-ISA backend has no spill analog, so CPU execution "
        "times differ only mildly across levels (the GPU sweep, Fig. 13, "
        "shows the full -O0 penalty via the retained host round trips)"
    )
    report.show()
    # -O0 compiles fastest (allow a small noise margin on the cheap end);
    # the expensive end (-O3) must clearly cost more than -O0.
    assert _compile_times[0] <= min(_compile_times.values()) * 1.15
    assert _compile_times[3] > _compile_times[0]
    # Execution: the best optimized level beats -O0, and all levels stay
    # within a narrow band (the paper's "differences are small").
    assert min(_exec_times[i] for i in (1, 2, 3)) < _exec_times[0]
    assert max(_exec_times.values()) / min(_exec_times.values()) < 1.6
