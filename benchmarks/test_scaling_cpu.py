"""CPU thread scaling — sharded multi-core batch execution.

Not a paper figure: SPNC's published CPU numbers are single-threaded.
This benchmark tracks what the sharded :class:`ChunkedExecutor` runtime
adds on top — the 1→N-worker throughput curve of the batch-vectorized
kernel (the reproduction's headline CPU configuration), recorded into
``BENCH_cpu.json`` as ``scaling`` + ``parallel_efficiency``.

Two distinct claims, with distinct evidence:

- **The curve** (``test_scaling_curve``): via
  :func:`common.scaling_curve` — measured wall-clock where the host has
  the cores, otherwise modeled from contention-free per-chunk timings
  on an LPT schedule (each point labels its ``mode``). The acceptance
  shape — ≥1.5× at 2 workers, monotone gains through 4 — must hold on
  every host.
- **The CI gate** (``test_scaling_gate``): a *measured-only* regression
  tripwire. Enabled with ``REPRO_SCALING_GATE=1`` on hosts with ≥2
  cores (the CI perf job), it fails if 2-thread wall-clock throughput
  falls below 1.2× single-thread — a deliberately loose floor that
  survives runner noise yet catches the sharded path serializing (e.g.
  a lock slipping into the hot loop).
"""

import os

import numpy as np
import pytest

from repro.compiler import CompilerOptions, compile_spn
from repro.spn import JointProbability

from .common import FigureReport, scaling_curve, speaker_workload, write_bench_json

#: Worker counts for the recorded curve (acceptance: monotone to >= 4).
WORKERS = (1, 2, 4, 8)

#: Compiled chunk hint: wide enough that per-chunk Python dispatch is
#: amortized, narrow enough that 8192 rows shard into >= 2*W chunks for
#: every W above.
BATCH_HINT = 1024

#: Scaling is a steady-state property; tiny row counts measure dispatch
#: overhead instead, so inputs are tiled up to this floor regardless of
#: REPRO_BENCH_SCALE (same convention as the Fig. 9 benchmark).
MIN_ROWS = 8192

report = FigureReport(
    "Scaling",
    "CPU batch-kernel thread scaling (speedup vs 1 worker)",
    unit="x 1-thread",
    paper={},
)


def _inputs():
    workload = speaker_workload()
    inputs = workload["clean"]
    if inputs.shape[0] < MIN_ROWS:
        repeats = -(-MIN_ROWS // inputs.shape[0])
        inputs = np.tile(inputs, (repeats, 1))[:MIN_ROWS]
    return workload["spns"][0], inputs[:MIN_ROWS]


def _make_executable(spn):
    query = JointProbability(batch_size=BATCH_HINT)

    def make(num_threads):
        options = CompilerOptions(vectorize="batch", num_threads=num_threads)
        return compile_spn(spn, query, options).executable

    return make


def test_scaling_curve(benchmark):
    spn, inputs = _inputs()
    curve = scaling_curve(_make_executable(spn), inputs, workers=WORKERS)
    benchmark(lambda: None)  # timings happen inside scaling_curve

    for w in WORKERS:
        point = curve["workers"][str(w)]
        report.add(f"{w} workers ({point['mode']})", point["speedup"])
    report.note(f"host cores: {curve['host_cores']}, rows: {curve['rows']}")
    report.note(curve["note"])

    speedups = {w: curve["workers"][str(w)]["speedup"] for w in WORKERS}
    # Acceptance: >= 1.5x at 2 workers, monotone gains through 4.
    assert speedups[2] >= 1.5
    assert speedups[2] > speedups[1]
    assert speedups[4] > speedups[2]

    efficiency = curve["workers"][str(max(WORKERS))]["efficiency"]
    path = write_bench_json(
        "cpu",
        {"scaling": curve, "parallel_efficiency": efficiency},
        merge=True,
    )
    report.note(f"wrote {path}")


def test_partition_parallelism(benchmark):
    """Analysis-gated partition-level task parallelism (BENCH row).

    Compiles a wide SPN whose partitions the memory-access analysis
    proves disjoint, runs the wave schedule on the worker pool and
    records serial-vs-parallel wall-clock plus the schedule shape into
    ``BENCH_cpu.json`` as ``partition_parallelism``. Correctness is a
    hard gate (bit-identical to serial); the speedup is recorded, not
    gated — the win depends on partition count and task width.
    """
    from .common import time_callable
    from repro.spn import Gaussian, Product, Sum

    leaf = lambda f: Gaussian(f, 0.0, 1.0)  # noqa: E731
    products = [
        Product([leaf(2 * i), leaf(2 * i + 1)]) for i in range(8)
    ]
    spn = Sum(products, [1.0 / 8] * 8)
    rng = np.random.default_rng(7)
    inputs = rng.normal(size=(MIN_ROWS, 16)).astype(np.float32)
    query = JointProbability(batch_size=BATCH_HINT)

    serial = compile_spn(
        spn,
        query,
        CompilerOptions(vectorize="batch", max_partition_size=8),
    ).executable
    parallel = compile_spn(
        spn,
        query,
        CompilerOptions(
            vectorize="batch",
            max_partition_size=8,
            partition_parallel=True,
            num_threads=4,
        ),
    ).executable
    try:
        assert parallel.parallel_plan is not None, (
            "parallelize-partitions did not fire on a provably "
            "disjoint task graph"
        )
        expected = serial.execute(inputs)
        observed = parallel.execute(inputs)
        assert np.array_equal(expected, observed), (
            "partition-parallel execution must be bit-identical to serial"
        )
        waves = parallel.last_waves
        wall_serial = float(time_callable(lambda: serial.execute(inputs)))
        wall_parallel = float(time_callable(lambda: parallel.execute(inputs)))
    finally:
        serial.close()
        parallel.close()
    benchmark(lambda: None)

    speedup = wall_serial / wall_parallel if wall_parallel > 0 else 0.0
    report.add("partition-parallel speedup", speedup)
    report.note(
        f"waves: {[len(w) for w in waves]} (tasks per wave), "
        f"serial {wall_serial:.4f}s vs parallel {wall_parallel:.4f}s"
    )
    path = write_bench_json(
        "cpu",
        {
            "partition_parallelism": {
                "waves": waves,
                "num_tasks": sum(len(w) for w in waves),
                "parallel_wave_width": max(len(w) for w in waves),
                "serial_seconds": wall_serial,
                "parallel_seconds": wall_parallel,
                "speedup": speedup,
                "bit_identical": True,
                "workers": 4,
            }
        },
        merge=True,
    )
    report.note(f"wrote {path}")


def test_scaling_gate(benchmark):
    if os.environ.get("REPRO_SCALING_GATE") != "1":
        pytest.skip("measured scaling gate disabled (set REPRO_SCALING_GATE=1)")
    if (os.cpu_count() or 1) < 2:
        pytest.skip("measured scaling gate needs >= 2 host cores")

    from .common import time_callable

    spn, inputs = _inputs()
    make = _make_executable(spn)
    ex1, ex2 = make(1), make(2)
    try:
        wall_1 = float(time_callable(lambda: ex1.execute(inputs)))
        wall_2 = float(time_callable(lambda: ex2.execute(inputs)))
    finally:
        ex1.close()
        ex2.close()
    benchmark(lambda: None)

    measured = wall_1 / wall_2
    report.add("gate: 2 workers measured", measured)
    assert measured >= 1.2, (
        f"sharded 2-thread run only {measured:.2f}x single-thread "
        f"(wall 1T={wall_1:.4f}s, 2T={wall_2:.4f}s); the parallel hot "
        "path has likely regressed (floor: 1.2x)"
    )


def test_scaling_summary(benchmark):
    benchmark(lambda: None)
    report.show()
