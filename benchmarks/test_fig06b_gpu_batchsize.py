"""§V-A1 (GPU) — batch-size sweep for GPU kernel launches.

Paper: "the most important parameter is the user-provided batch size,
which will be used as the constant block size for the GPU kernel
launches. After evaluating a range of different batch sizes, it becomes
clear that a small block size of 64 is preferable."
"""

import pytest

from repro.compiler import CompilerOptions, compile_spn
from repro.spn import JointProbability

from .common import FigureReport, speaker_workload

BLOCK_SIZES = (16, 32, 64, 128, 256, 512, 1024)

report = FigureReport(
    "§V-A1 (GPU)",
    "GPU block-size sweep, clean speech (simulated time per sample)",
    paper={f"block={b}": "" for b in BLOCK_SIZES} | {"block=64": "optimum"},
)


@pytest.mark.parametrize("block", BLOCK_SIZES)
def test_gpu_block_size(benchmark, block):
    workload = speaker_workload()
    spn = workload["spns"][0]
    inputs = workload["clean"]
    executable = compile_spn(
        spn,
        JointProbability(batch_size=block),
        CompilerOptions(target="gpu"),
    ).executable

    benchmark(lambda: executable(inputs))
    # The device model scales *measured* kernel compute; take the minimum
    # over several executions so host-side jitter does not mask the
    # occupancy differences between block sizes.
    simulated = min(
        (executable(inputs), executable.simulated_seconds())[1] for _ in range(12)
    )
    per_sample = simulated / inputs.shape[0] * 1e6
    report.add(f"block={block}", per_sample)
    benchmark.extra_info["simulated_us_per_sample"] = per_sample


def test_gpu_block_size_summary(benchmark):
    benchmark(lambda: None)
    report.note("reported values are simulated device time (gpusim model)")
    report.show()
    # The occupancy model's optimum is deterministic: block size 64.
    from repro.gpusim import DeviceSpec

    spec = DeviceSpec()
    occupancy = {
        b: spec.occupancy(b, spec.default_registers_per_thread)
        for b in BLOCK_SIZES
    }
    assert max(occupancy, key=occupancy.get) == 64
    # The measured sweep must agree within host-timing noise: 64 is the
    # best block size, or within 3% of it.
    best = min(report.rows.values())
    assert report.rows["block=64"] <= best * 1.03
