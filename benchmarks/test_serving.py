"""Serving benchmark — dynamic batching vs one-request-per-kernel.

The whole-batch vectorized kernels amortize per-call overhead over
thousands of rows; a serving layer that issues one kernel call per
request throws that away. This benchmark drives the *same* async
server machinery with the same open-loop Poisson traffic under two
batching policies:

- **naive**: ``max_batch=1, max_wait_us=0`` — one request per kernel
  call, the baseline any server without a dynamic batcher implements;
- **batched**: the default coalescing policy (max-batch + max-wait).

The offered rate is chosen to saturate the naive configuration (a few
times its measured per-call capacity), so the comparison shows what
batching buys under overload: higher delivered QPS at lower p99, with
every request still reaching exactly one terminal outcome
(``lost == 0`` for both runs — rejection and expiry are answers, not
drops). Results seed ``BENCH_serving.json``.
"""

import os
import time

import numpy as np

from repro.serving import InferenceServer, ServerConfig
from repro.serving.loadgen import poisson_load
from repro.spn import Gaussian, Product, Sum
from repro.spn.sampling import sample as sample_spn

from .common import FigureReport, scaled, write_bench_json

report = FigureReport(
    "Serving",
    "Dynamic batching vs naive one-request-per-kernel (same Poisson load)",
    unit="delivered qps",
)

#: Per-request deadline — under saturation the naive server must shed
#: load through deadline expiry / backpressure, never unbounded queueing.
TIMEOUT_S = 0.3
QUEUE_CAPACITY = 256


def _workload():
    """A Gaussian-mixture SPN heavy enough that per-call cost matters.

    The size floor is deliberately independent of ``REPRO_BENCH_SCALE``:
    the comparison needs the naive server's per-call capacity to sit
    well below the rate the Poisson generator can offer, or neither
    configuration saturates and the runs are indistinguishable.
    """
    features = 16
    components = max(24, scaled(32))
    rng = np.random.default_rng(7)
    children, weights = [], []
    for _ in range(components):
        means = rng.normal(scale=2.0, size=features)
        stddevs = rng.uniform(0.5, 2.0, size=features)
        children.append(
            Product([
                Gaussian(f, float(means[f]), float(stddevs[f]))
                for f in range(features)
            ])
        )
        weights.append(float(rng.uniform(0.5, 1.5)))
    total = sum(weights)
    spn = Sum(children, [w / total for w in weights])
    rows = sample_spn(spn, 256, rng)
    return spn, rows


def _drive(spn, rows, config, rate_qps, duration_s):
    with InferenceServer(config=config) as server:
        server.publish("bench", spn)
        run = poisson_load(
            server, "bench", rows,
            rate_qps=rate_qps, duration_s=duration_s,
            seed=11, timeout_s=TIMEOUT_S,
        )
        run["health"] = server.health()["models"]["bench"]
    return run


def test_serving_batching_beats_naive(benchmark):
    benchmark(lambda: None)
    spn, rows = _workload()

    # Measure single-row kernel cost to pick a saturating offered rate.
    with InferenceServer(config=ServerConfig(max_batch=1, max_wait_us=0)) as probe:
        probe.publish("bench", spn)
        executable = probe.registry.current("bench").executable
        executable(rows[:1])  # warm-up
        start = time.perf_counter()
        calls = 20
        for index in range(calls):
            executable(rows[index % len(rows)][None, :])
        per_call_s = (time.perf_counter() - start) / calls
    naive_capacity_qps = 1.0 / per_call_s
    # 3x the naive capacity saturates it; the cap keeps the offered rate
    # within what a single-threaded Poisson generator can actually emit.
    rate_qps = min(2500.0, max(400.0, 3.0 * naive_capacity_qps))
    duration_s = max(1.5, 3.0 * float(os.environ.get("REPRO_BENCH_SCALE", "1.0")))

    naive_config = ServerConfig(
        max_batch=1, max_wait_us=0,
        queue_capacity=QUEUE_CAPACITY, default_timeout_s=TIMEOUT_S,
    )
    batched_config = ServerConfig(
        max_batch=1024, max_wait_us=2000,
        queue_capacity=QUEUE_CAPACITY, default_timeout_s=TIMEOUT_S,
    )
    naive = _drive(spn, rows, naive_config, rate_qps, duration_s)
    batched = _drive(spn, rows, batched_config, rate_qps, duration_s)

    report.add("naive (max_batch=1)", naive["achieved_qps"])
    report.add("dynamic batching", batched["achieved_qps"])
    report.note(
        f"offered {rate_qps:.0f} qps for {duration_s:.1f}s; single-row "
        f"kernel call {per_call_s * 1e3:.2f} ms "
        f"(naive capacity ~{naive_capacity_qps:.0f} qps)"
    )
    report.note(
        f"p99: naive {naive['latency_ms']['p99']:.1f} ms, "
        f"batched {batched['latency_ms']['p99']:.1f} ms; "
        f"mean batch size {batched['health']['mean_batch_size']:.1f}"
    )
    report.show()

    # Zero-lost accounting: every request got exactly one terminal outcome.
    assert naive["lost"] == 0 and batched["lost"] == 0
    assert naive["outcomes"]["failed"] == 0
    assert batched["outcomes"]["failed"] == 0

    # The headline claim: at the same offered load, dynamic batching
    # delivers more QPS at no worse p99 than one-request-per-kernel.
    assert batched["achieved_qps"] > 1.2 * naive["achieved_qps"]
    assert batched["latency_ms"]["p99"] <= naive["latency_ms"]["p99"]
    # Batching actually happened (the win has a mechanism).
    assert batched["health"]["mean_batch_size"] > 2.0

    path = write_bench_json(
        "serving",
        {
            "offered_qps": rate_qps,
            "duration_s": duration_s,
            "timeout_ms": TIMEOUT_S * 1e3,
            "per_kernel_call_ms": per_call_s * 1e3,
            "naive": {k: naive[k] for k in
                      ("achieved_qps", "outcomes", "lost", "latency_ms")},
            "batched": {k: batched[k] for k in
                        ("achieved_qps", "outcomes", "lost", "latency_ms")},
            "mean_batch_size": batched["health"]["mean_batch_size"],
            "batch_size_histogram": batched["health"]["batch_size_histogram"],
            "qps_ratio": batched["achieved_qps"] / max(naive["achieved_qps"], 1e-9),
            "bench_scale": float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
        },
    )
    report.note(f"wrote {path}")
