"""§V-B2 — RAT-SPN classification times (the paper's closing comparison).

Paper (10k MNIST images): TF-GPU 0.427 s ≈ SPNC-CPU 0.444 s < SPNC-GPU
1.299 s < TF-CPU 1.72 s. Key shape: the compiler's CPU executables are
on par with the native tensorized Tensorflow implementation on the GPU
and clearly beat Tensorflow on the CPU; the compiler's GPU path is
slower because each of the per-class SPNs transfers the input and
launches separately after the conversion to SPFlow.
"""

import numpy as np
import pytest

from repro.baselines import TensorizedRatExecutor, TensorizedRatGPU
from repro.compiler import CompilerOptions, compile_spn
from repro.spn import JointProbability

from .common import FigureReport, rat_workload, time_callable

report = FigureReport(
    "§V-B2",
    "RAT-SPN classification of the test images (total seconds)",
    unit="seconds",
    paper={
        "tf gpu (tensorized)": "0.427 s",
        "spnc cpu": "0.444 s",
        "spnc gpu": "1.299 s",
        "tf cpu (tensorized)": "1.72 s",
    },
)

_rows = {}
_accuracy = {}


def _classify_accuracy(scores, labels):
    return float((np.argmax(scores, axis=1) == labels).mean())


def test_tab_tf_cpu(benchmark):
    workload = rat_workload()
    executor = TensorizedRatExecutor(workload["roots"])
    images = workload["images"].test

    benchmark(lambda: executor.log_likelihoods(images))
    _rows["tf cpu (tensorized)"] = benchmark.stats.stats.median
    _accuracy["tf"] = _classify_accuracy(
        executor.log_likelihoods(images), workload["images"].test_labels
    )


def test_tab_tf_gpu(benchmark):
    workload = rat_workload()
    executor = TensorizedRatGPU(workload["roots"])
    images = workload["images"].test

    benchmark(lambda: executor.log_likelihoods(images))
    simulated = min(
        (executor.log_likelihoods(images), executor.last_simulated_seconds)[1]
        for _ in range(5)
    )
    _rows["tf gpu (tensorized)"] = simulated


def test_tab_spnc_cpu(benchmark):
    workload = rat_workload()
    images = workload["images"].test
    query = JointProbability(batch_size=images.shape[0])
    options = CompilerOptions(
        vectorize="lanes", opt_level=2, max_partition_size=2500
    )
    executables = [
        compile_spn(spn, query, options).executable for spn in workload["roots"]
    ]

    def run_all_classes():
        return np.stack([e(images) for e in executables], axis=1)

    benchmark(run_all_classes)
    _rows["spnc cpu"] = benchmark.stats.stats.median
    _accuracy["spnc"] = _classify_accuracy(
        run_all_classes(), workload["images"].test_labels
    )


def test_tab_spnc_cpu_multihead(benchmark):
    """Extension: all class heads compiled into ONE kernel with shared
    sub-DAGs — removing the per-class redundancy the paper identifies as
    the reason its compiler trails the tensorized TF execution."""
    workload = rat_workload()
    images = workload["images"].test
    query = JointProbability(batch_size=images.shape[0])
    options = CompilerOptions(vectorize="lanes", opt_level=2, max_partition_size=2500)
    executable = compile_spn(list(workload["roots"]), query, options).executable

    benchmark(lambda: executable(images))
    _rows["spnc cpu (multi-head, ext.)"] = benchmark.stats.stats.median
    scores = executable(images)
    _accuracy["multihead"] = _classify_accuracy(
        scores.T, workload["images"].test_labels
    )


def test_tab_spnc_gpu(benchmark):
    workload = rat_workload()
    images = workload["images"].test
    query = JointProbability(batch_size=64)
    options = CompilerOptions(target="gpu", max_partition_size=2500)
    executables = [
        compile_spn(spn, query, options).executable for spn in workload["roots"]
    ]

    benchmark(lambda: [e(images) for e in executables])
    # Ten distinct per-class kernels: input transferred per class, as the
    # paper notes for its own GPU numbers.
    simulated = 0.0
    for executable in executables:
        simulated += min(
            (executable(images), executable.simulated_seconds())[1]
            for _ in range(3)
        )
    _rows["spnc gpu"] = simulated


def test_tab_summary(benchmark):
    benchmark(lambda: None)
    for name, value in _rows.items():
        report.add(name, value)
    report.note(
        f"classification agreement: tf={_accuracy.get('tf'):.3f} "
        f"spnc={_accuracy.get('spnc'):.3f} (identical decision rule)"
    )
    report.note(
        "documented deviation (EXPERIMENTS.md): the tensorized TF-CPU baseline "
        "(shared-DAG, full-batch NumPy) is near-optimal in Python-ISA units, so "
        "it ranks first here instead of last as in the paper; the intra-SPNC "
        "shape (CPU beats GPU due to per-class transfers/launches) and the "
        "on-par relation between SPNC-CPU and tensorized TF-GPU reproduce"
    )
    report.show()
    # Shape (paper): the compiler's GPU path trails its CPU path because
    # each of the per-class SPNs transfers the input and launches separately.
    assert _rows["spnc gpu"] > _rows["spnc cpu"]
    # SPNC-CPU performs on par with the tensorized TF-GPU execution
    # (paper: 0.444 s vs 0.427 s; allow a small constant factor here).
    assert _rows["spnc cpu"] < 3.0 * _rows["tf gpu (tensorized)"]
    # The compiled CPU result must agree with the TF decision rule.
    assert abs(_accuracy["tf"] - _accuracy["spnc"]) < 0.02
    # The multi-head extension removes the per-class redundancy: faster
    # than the per-class kernels and classification-identical.
    assert _rows["spnc cpu (multi-head, ext.)"] < _rows["spnc cpu"]
    assert abs(_accuracy["multihead"] - _accuracy["spnc"]) < 0.02
