"""Fig. 7 — performance comparison on clean speech samples.

Paper (speedup over SPFlow's Python execution, geo-mean across speakers):
TF-CPU 1.5x, TF-GPU 1.38x, SPNC-GPU 352x, SPNC no-vec 564x, AVX2 801x,
AVX-512 976x.

Reproduction shape (DESIGN.md / EXPERIMENTS.md): absolute factors
compress in Python-ISA units, but the key orderings hold —
AVX-512 > AVX2 > GPU > TF-CPU > TF-GPU, compiled-vectorized beats every
baseline, and every configuration beats the interpreted baseline.
The documented deviation is the no-vec configuration, which lands near
the bottom because scalar Python is disproportionately slow.
"""

import os

import numpy as np
import pytest

from repro.baselines import GPUSession, Session, log_likelihood_python, translate_to_graph
from repro.compiler import CompilerOptions, compile_spn
from repro.spn import JointProbability

from .common import FigureReport, geomean, scaled, speaker_workload, write_bench_json

report = FigureReport(
    "Fig. 7",
    "Clean speech: speedup over SPFlow Python (geo-mean across speakers)",
    unit="speedup (x)",
    paper={
        "tf-cpu": "1.5x",
        "tf-gpu": "1.38x",
        "spnc gpu": "352x",
        "spnc no-vec": "564x",
        "spnc avx2": "801x",
        "spnc avx512": "976x",
        "spnc batch": "(n/a — this reproduction's W=batch mode)",
    },
)

_state = {}


def _setup():
    if _state:
        return _state
    workload = speaker_workload()
    inputs = workload["clean"]
    x64 = inputs.astype(np.float64)
    n = inputs.shape[0]

    # The 1x reference: SPFlow's interpreted Python inference, measured
    # on a subsample (its per-sample cost is size-independent).
    probe = max(64, scaled(128))
    baseline_per_sample = []
    for spn in workload["spns"]:
        import time

        start = time.perf_counter()
        log_likelihood_python(spn, x64[:probe])
        baseline_per_sample.append((time.perf_counter() - start) / probe)
    _state.update(
        workload=workload,
        inputs=inputs,
        x64=x64,
        n=n,
        baseline=baseline_per_sample,
        speedups={},
    )
    return _state


def _record(name, per_sample_seconds):
    state = _setup()
    state.setdefault("per_sample", {})[name] = geomean(per_sample_seconds)
    speedups = [b / t for b, t in zip(state["baseline"], per_sample_seconds)]
    report.add(name, geomean(speedups))


# Vectorization modes are spelled explicitly so the design-space rows keep
# their meaning now that the compiler default is "batch".
SPNC_CONFIGS = {
    "spnc no-vec": CompilerOptions(vectorize="off"),
    "spnc avx2": CompilerOptions(vectorize="lanes", opt_level=2),
    "spnc avx512": CompilerOptions(
        vectorize="lanes", vector_isa="avx512", opt_level=2
    ),
    "spnc batch": CompilerOptions(vectorize="batch"),
}


@pytest.mark.parametrize("name", list(SPNC_CONFIGS))
def test_fig07_spnc_cpu(benchmark, name):
    state = _setup()
    executables = [
        compile_spn(
            spn, JointProbability(batch_size=state["n"]), SPNC_CONFIGS[name]
        ).executable
        for spn in state["workload"]["spns"]
    ]
    inputs = state["inputs"]

    def run_all():
        for executable in executables:
            executable(inputs)

    benchmark(run_all)
    per_spn = benchmark.stats.stats.median / len(executables) / state["n"]
    _record(name, [per_spn] * len(executables))


def test_fig07_spnc_gpu(benchmark):
    state = _setup()
    executables = [
        compile_spn(
            spn, JointProbability(batch_size=64), CompilerOptions(target="gpu")
        ).executable
        for spn in state["workload"]["spns"]
    ]
    inputs = state["inputs"]

    def run_all():
        for executable in executables:
            executable(inputs)

    benchmark(run_all)
    per_sample = []
    for executable in executables:
        simulated = min(
            (executable(inputs), executable.simulated_seconds())[1]
            for _ in range(5)
        )
        per_sample.append(simulated / state["n"])
    _record("spnc gpu", per_sample)


def test_fig07_tensorflow(benchmark):
    state = _setup()
    sessions = [
        Session(translate_to_graph(spn)) for spn in state["workload"]["spns"]
    ]
    x64 = state["x64"]

    def run_all():
        for session in sessions:
            session.run(x64)

    benchmark(run_all)
    cpu_per_sample = []
    gpu_per_sample = []
    for session in sessions:
        session.run(x64)
        cpu_per_sample.append(session.last_simulated_seconds / state["n"])
        gpu = GPUSession(session.graph)
        gpu.run(x64)
        gpu_per_sample.append(gpu.last_simulated_seconds / state["n"])
    _record("tf-cpu", cpu_per_sample)
    _record("tf-gpu", gpu_per_sample)


def test_fig07_summary(benchmark):
    benchmark(lambda: None)
    state = _setup()
    report.note("1x = SPFlow interpreted Python inference (per-sample probe)")
    report.note(
        "documented deviation: no-vec ranks below TF here (scalar Python-ISA "
        "penalty); all other orderings match the paper"
    )
    report.note(
        "spnc batch = the paper's vectorizer with W set to the whole chunk "
        "(the default CPU configuration of this reproduction)"
    )
    report.show()
    rows = report.rows
    # Orderings that must reproduce (paper Fig. 7).
    assert rows["spnc avx512"] > rows["spnc avx2"] > rows["spnc gpu"]
    assert rows["spnc gpu"] > rows["tf-cpu"] > rows["tf-gpu"]
    # Everything is a genuine speedup over the Python baseline.
    assert all(v > 1.0 for v in rows.values())

    # The batch mode is the reproduction's headline configuration: it must
    # beat the best fixed-lane configuration and be >= 10x faster than the
    # scalar (no-vec) kernels on this workload.
    per_sample = state["per_sample"]
    speedup_vs_scalar = per_sample["spnc no-vec"] / per_sample["spnc batch"]
    assert rows["spnc batch"] > rows["spnc avx512"]
    assert speedup_vs_scalar >= 10.0

    # Seed the perf trajectory: BENCH_cpu.json tracks the batch-mode
    # throughput and its margin over scalar from this PR onward. Merge:
    # the thread-scaling benchmark co-owns this file (scaling keys).
    path = write_bench_json(
        "cpu",
        {
            "figure": "fig07_clean_speech",
            "mode": "batch",
            "batch_size": state["n"],
            "num_speakers": len(state["workload"]["spns"]),
            "samples_per_second": 1.0 / per_sample["spnc batch"],
            "per_sample_seconds": {k: v for k, v in per_sample.items()},
            "speedup_vs_scalar": speedup_vs_scalar,
            "speedup_vs_spflow_python": rows["spnc batch"],
            "bench_scale": float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
        },
        merge=True,
    )
    report.note(f"wrote {path}")
