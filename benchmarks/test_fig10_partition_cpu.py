"""Fig. 10 — RAT-SPN: max partition size vs compile & execution time (CPU).

Paper: increasing the maximum partition size first *decreases* CPU
compilation time (fewer tasks, less per-task overhead) up to ~10k
operations, after which it increases again; execution time improves
monotonically with partition size (fewer intermediate buffers). The
paper selects 25k as the best trade-off.
"""

import time

import pytest

from repro.compiler import CompilerOptions, compile_spn
from repro.spn import JointProbability

from .common import RAT_PARTITION_SIZES, FigureReport, rat_workload, time_callable

report = FigureReport(
    "Fig. 10",
    "RAT-SPN partition-size sweep, CPU",
    unit="seconds",
    paper={
        "compile @ smallest": "high (many tasks)",
        "exec trend": "improves with partition size",
    },
)

_compile_times = {}
_exec_times = {}


@pytest.mark.parametrize("psize", RAT_PARTITION_SIZES)
def test_fig10_partition_size(benchmark, psize):
    workload = rat_workload()
    spn = workload["roots"][0]
    images = workload["images"].test
    query = JointProbability(batch_size=images.shape[0])
    options = CompilerOptions(max_partition_size=psize, vectorize="lanes")

    holder = {"compile_seconds": float("inf")}

    def compile_once():
        start = time.perf_counter()
        holder["result"] = compile_spn(spn, query, options)
        holder["compile_seconds"] = min(
            holder["compile_seconds"], time.perf_counter() - start
        )

    benchmark.pedantic(compile_once, rounds=2, iterations=1)
    result = holder["result"]
    exec_seconds = time_callable(lambda: result.executable(images), min_rounds=3)

    _compile_times[psize] = holder["compile_seconds"]
    _exec_times[psize] = exec_seconds
    report.add(f"psize={psize:>6}: compile", holder["compile_seconds"])
    report.add(f"psize={psize:>6}: exec", exec_seconds)
    benchmark.extra_info.update(
        tasks=result.num_tasks,
        compile_seconds=holder["compile_seconds"],
        exec_seconds=exec_seconds,
    )


def test_fig10_summary(benchmark):
    benchmark(lambda: None)
    sizes = sorted(_compile_times)
    report.note(f"sweep over max partition sizes {sizes}")
    report.note(
        "the paper's U-curve is shallow here: the Python backend's "
        "per-function costs are near-linear, so the sweep mainly shows "
        "the execution-time trend (fewer partitions, fewer buffers)"
    )
    report.show()
    # The compile-time curve stays within a modest band (no blow-up at
    # either end; the paper's strong right-side increase comes from
    # superlinear LLVM ISel/regalloc, which this backend does not have).
    assert max(_compile_times.values()) <= min(_compile_times.values()) * 2.5
    # Execution time trend: the largest partitions never run slower than
    # the smallest (fewer intermediate buffers).
    assert _exec_times[sizes[-1]] <= _exec_times[sizes[0]] * 1.10
