"""Fig. 9 — GPU execution-time breakdown, serialized and overlapped.

Paper: "Data movements between host and device in both cases make up for
more than 60% of the execution time", explaining why the GPU executable
trails the vectorized CPU despite fast on-device compute.

This reproduction reports the figure twice:

- **serialized** (single stream): the paper's breakdown — every memcpy
  and launch end to end on one timeline; data movement must exceed 60 %.
- **overlapped** (multi-stream software pipeline): the chunked
  H2D→kernel→D2H pipeline issues chunks round-robin on device streams,
  so the upload DMA engine, download DMA engine and compute engine run
  concurrently. ``overlap_fraction`` is the share of the serialized
  transfer time the pipeline reclaims — the "left on the table" portion
  of the paper's >60 % that multi-streaming wins back.
"""

import numpy as np
import pytest

from repro.compiler import CompilerOptions, compile_spn
from repro.spn import JointProbability

from .common import SCALE, FigureReport, speaker_workload

#: Device streams for the pipelined configuration (≥2 chunks per stream).
PIPELINE_STREAMS = 8

#: The breakdown is a steady-state *fraction*, not a throughput: tiny
#: row counts shift the amortization balance (per-call NumPy overhead
#: inflates compute), so inputs are tiled up to this floor regardless of
#: REPRO_BENCH_SCALE.
MIN_ROWS = 8192

report = FigureReport(
    "Fig. 9",
    "GPU execution-time breakdown (fraction of simulated time)",
    unit="fraction",
    paper={
        "clean / data movement": "> 0.60",
        "clean / compute": "< 0.40",
        "noisy / data movement": "> 0.60",
        "noisy / compute": "< 0.40",
    },
)


def _rows(workload, split):
    inputs = workload[split]
    if inputs.shape[0] < MIN_ROWS:
        repeats = -(-MIN_ROWS // inputs.shape[0])
        inputs = np.tile(inputs, (repeats, 1))[:MIN_ROWS]
    return inputs


@pytest.mark.parametrize("split", ["clean", "noisy"])
def test_fig09_breakdown(benchmark, split):
    workload = speaker_workload()
    spn = workload["spns"][0]
    inputs = _rows(workload, split)
    query = JointProbability(batch_size=64, support_marginal=(split == "noisy"))
    executable = compile_spn(spn, query, CompilerOptions(target="gpu")).executable

    benchmark(lambda: executable(inputs))
    profile = executable.last_profile
    report.add(f"{split} / data movement", profile.serial_transfer_fraction)
    report.add(f"{split} / compute", 1.0 - profile.serial_transfer_fraction)
    benchmark.extra_info["transfer_fraction"] = profile.serial_transfer_fraction
    benchmark.extra_info["bytes_moved"] = profile.bytes_moved


@pytest.mark.parametrize("split", ["clean", "noisy"])
def test_fig09_overlapped(benchmark, split):
    workload = speaker_workload()
    spn = workload["spns"][0]
    inputs = _rows(workload, split)
    query = JointProbability(batch_size=64, support_marginal=(split == "noisy"))
    executable = compile_spn(
        spn, query, CompilerOptions(target="gpu", streams=PIPELINE_STREAMS)
    ).executable

    benchmark(lambda: executable(inputs))
    profile = executable.last_profile
    assert executable.last_pipeline_chunks >= 2 * PIPELINE_STREAMS
    # Pipelining is timing-only: the same records on an overlapped
    # schedule. The serialized sum is unchanged in meaning, the makespan
    # shrinks, and the difference is transfer time hidden under compute.
    report.add(
        f"{split} / overlapped makespan (x serialized)",
        profile.makespan_seconds / profile.serialized_seconds,
    )
    report.add(f"{split} / overlap fraction", profile.overlap_fraction)
    report.add(
        f"{split} / exposed transfer (overlapped)",
        profile.overlapped_transfer_fraction,
    )
    benchmark.extra_info["overlap_fraction"] = profile.overlap_fraction
    benchmark.extra_info["num_streams"] = profile.num_streams


def test_fig09_summary(benchmark):
    benchmark(lambda: None)
    report.note("fractions from the gpusim execution profile (device model)")
    report.note(
        f"overlapped rows: {PIPELINE_STREAMS}-stream chunked "
        "H2D->kernel->D2H pipeline (dual DMA engines + compute engine)"
    )
    report.show()
    if SCALE >= 1.0:
        # The >60 % claim is about representative workloads: LearnSPN
        # structures trained on REPRO_BENCH_SCALE-shrunk data have a
        # different op count, which shifts the compute/transfer balance
        # the figure is about (the overlap properties below do not
        # depend on that balance and hold at every scale).
        assert report.rows["clean / data movement"] > 0.60
        assert report.rows["noisy / data movement"] > 0.60
    # The pipeline must reclaim at least half of the serialized
    # transfer time on both splits (the tentpole acceptance bar).
    assert report.rows["clean / overlap fraction"] >= 0.5
    assert report.rows["noisy / overlap fraction"] >= 0.5
    assert report.rows["clean / overlapped makespan (x serialized)"] < 1.0
    assert report.rows["noisy / overlapped makespan (x serialized)"] < 1.0
