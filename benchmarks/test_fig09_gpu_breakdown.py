"""Fig. 9 — GPU execution-time breakdown.

Paper: "Data movements between host and device in both cases make up for
more than 60% of the execution time", explaining why the GPU executable
trails the vectorized CPU despite fast on-device compute.
"""

import pytest

from repro.compiler import CompilerOptions, compile_spn
from repro.spn import JointProbability

from .common import FigureReport, speaker_workload

report = FigureReport(
    "Fig. 9",
    "GPU execution-time breakdown (fraction of simulated time)",
    unit="fraction",
    paper={
        "clean / data movement": "> 0.60",
        "clean / compute": "< 0.40",
        "noisy / data movement": "> 0.60",
        "noisy / compute": "< 0.40",
    },
)


@pytest.mark.parametrize("split", ["clean", "noisy"])
def test_fig09_breakdown(benchmark, split):
    workload = speaker_workload()
    spn = workload["spns"][0]
    inputs = workload[split]
    query = JointProbability(batch_size=64, support_marginal=(split == "noisy"))
    executable = compile_spn(spn, query, CompilerOptions(target="gpu")).executable

    benchmark(lambda: executable(inputs))
    profile = executable.last_profile
    report.add(f"{split} / data movement", profile.transfer_fraction)
    report.add(f"{split} / compute", 1.0 - profile.transfer_fraction)
    benchmark.extra_info["transfer_fraction"] = profile.transfer_fraction
    benchmark.extra_info["bytes_moved"] = profile.bytes_moved


def test_fig09_summary(benchmark):
    benchmark(lambda: None)
    report.note("fractions from the gpusim execution profile (device model)")
    report.show()
    assert report.rows["clean / data movement"] > 0.60
    assert report.rows["noisy / data movement"] > 0.60
