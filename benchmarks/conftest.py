"""Benchmark-suite fixtures.

Compile-time measurements create millions of short-lived IR objects; as
the session accumulates long-lived state (cached workloads, compiled
kernels), full GC collections get slower and skew *later* benchmarks.
Freezing the survivors between tests keeps the collector's work — and
therefore the timings — stable across the whole suite.
"""

import gc

import pytest


@pytest.fixture(autouse=True)
def _stable_gc():
    gc.collect()
    gc.freeze()
    yield
    gc.unfreeze()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every figure's paper-vs-measured table in the summary, so the
    reproductions are visible even without ``-s``."""
    from .common import ALL_REPORTS

    populated = [report for report in ALL_REPORTS if report.rows]
    if not populated:
        return
    terminalreporter.section("paper figure reproductions")
    for report in populated:
        terminalreporter.write(report.render() + "\n")
