"""§V-A2 — compilation-time statistics for the speaker-ID SPNs.

Paper: average compile time 3.3 s for CPU (max 18 s), 1.7 s for GPU
(max 4.1 s); the SPFlow→Tensorflow graph translation takes 8.6 s on
average (max 14.5 s). Shape: per-model compilation is seconds-scale and
the TF translation is the slowest of the three.
"""

import time

import pytest

from repro.baselines import translate_to_graph
from repro.compiler import CompilerOptions, compile_spn
from repro.spn import JointProbability

from .common import FigureReport, speaker_workload

report = FigureReport(
    "§V-A2",
    "Compilation / translation time per speaker model",
    unit="seconds (avg)",
    paper={
        "spnc cpu": "3.3 s avg (18 s max)",
        "spnc gpu": "1.7 s avg (4.1 s max)",
        "tf translation": "8.6 s avg (14.5 s max)",
    },
)


def test_compile_time_cpu(benchmark):
    workload = speaker_workload()
    spns = workload["spns"]
    times = []

    def compile_all():
        times.clear()
        for spn in spns:
            start = time.perf_counter()
            compile_spn(
                spn,
                JointProbability(batch_size=4096),
                CompilerOptions(vectorize="lanes"),
            )
            times.append(time.perf_counter() - start)

    benchmark.pedantic(compile_all, rounds=1, iterations=1)
    report.add("spnc cpu", sum(times) / len(times))
    report.add("spnc cpu (max)", max(times))


def test_compile_time_gpu(benchmark):
    workload = speaker_workload()
    spns = workload["spns"]
    times = []

    def compile_all():
        times.clear()
        for spn in spns:
            start = time.perf_counter()
            compile_spn(
                spn, JointProbability(batch_size=64), CompilerOptions(target="gpu")
            )
            times.append(time.perf_counter() - start)

    benchmark.pedantic(compile_all, rounds=1, iterations=1)
    report.add("spnc gpu", sum(times) / len(times))
    report.add("spnc gpu (max)", max(times))


def test_tf_translation_time(benchmark):
    workload = speaker_workload()
    spns = workload["spns"]
    times = []

    def translate_all():
        times.clear()
        for spn in spns:
            start = time.perf_counter()
            translate_to_graph(spn)
            times.append(time.perf_counter() - start)

    benchmark.pedantic(translate_all, rounds=1, iterations=1)
    report.add("tf translation", sum(times) / len(times))


def test_compile_time_summary(benchmark):
    benchmark(lambda: None)
    report.note(
        "per-model compile cost is seconds-scale here too; the paper's "
        "GPU-faster-than-CPU ordering holds (no vectorizer on the GPU path)"
    )
    report.show()
    assert report.rows["spnc gpu"] <= report.rows["spnc cpu"]
