"""Tests for the HiSPN dialect (paper Table I)."""

import pytest

from repro.dialects import hispn
from repro.ir import Builder, IRError, ModuleOp, f32, parse_module, print_op, verify


def build_query(num_features=2, support_marginal=False):
    module = ModuleOp.build()
    b = Builder.at_end(module.body)
    query = b.create(
        hispn.JointQueryOp,
        num_features=num_features,
        input_type=f32,
        batch_size=8,
        support_marginal=support_marginal,
    )
    graph = Builder.at_end(query.body_block).create(hispn.GraphOp, num_features, f32)
    return module, query, graph


class TestProbabilityType:
    def test_spelling(self):
        assert hispn.ProbabilityType().spelling() == "!hi_spn.probability"

    def test_uniqued(self):
        assert hispn.ProbabilityType() == hispn.prob

    def test_parse_rejects_parameters(self):
        with pytest.raises(ValueError):
            hispn.ProbabilityType.parse("f32")


class TestQueryAndGraph:
    def test_query_attributes(self):
        module, query, graph = build_query()
        assert query.num_features == 2
        assert query.batch_size == 8
        assert query.input_type == f32
        assert not query.support_marginal
        assert query.graph is graph

    def test_graph_features_are_block_args(self):
        _, _, graph = build_query(num_features=3)
        assert len(graph.body.arguments) == 3
        assert all(arg.type == f32 for arg in graph.body.arguments)

    def test_verify_requires_root(self):
        module, _, graph = build_query()
        with pytest.raises(IRError):
            verify(module)

    def test_query_graph_feature_mismatch(self):
        module, query, graph = build_query()
        gb = Builder.at_end(graph.body)
        leaf = gb.create(hispn.GaussianOp, graph.body.arguments[0], 0.0, 1.0)
        gb.create(hispn.RootOp, leaf.result)
        query.attributes["numFeatures"] = 5
        with pytest.raises(IRError):
            verify(module)

    def test_full_query_verifies_and_round_trips(self):
        module, query, graph = build_query()
        gb = Builder.at_end(graph.body)
        g0 = gb.create(hispn.GaussianOp, graph.body.arguments[0], 0.0, 1.0)
        g1 = gb.create(hispn.GaussianOp, graph.body.arguments[1], 1.0, 2.0)
        prod = gb.create(hispn.ProductOp, [g0.result, g1.result])
        hist = gb.create(
            hispn.HistogramOp, graph.body.arguments[0], [0, 1, 2], [0.5, 0.5]
        )
        cat = gb.create(hispn.CategoricalOp, graph.body.arguments[1], [0.1, 0.9])
        prod2 = gb.create(hispn.ProductOp, [hist.result, cat.result])
        total = gb.create(hispn.SumOp, [prod.result, prod2.result], [0.25, 0.75])
        gb.create(hispn.RootOp, total.result)
        verify(module)
        text = print_op(module)
        reparsed = parse_module(text)
        verify(reparsed)
        assert print_op(reparsed) == text


class TestNodeOps:
    def test_product_requires_operands(self):
        with pytest.raises(IRError):
            hispn.ProductOp.build([]).verify_op()

    def test_sum_weight_count_checked(self):
        _, _, graph = build_query()
        gb = Builder.at_end(graph.body)
        leaf = gb.create(hispn.GaussianOp, graph.body.arguments[0], 0.0, 1.0)
        with pytest.raises(IRError):
            hispn.SumOp.build([leaf.result], [0.5, 0.5])

    def test_sum_weights_must_normalize(self):
        module, _, graph = build_query()
        gb = Builder.at_end(graph.body)
        a = gb.create(hispn.GaussianOp, graph.body.arguments[0], 0.0, 1.0)
        b = gb.create(hispn.GaussianOp, graph.body.arguments[0], 1.0, 1.0)
        s = gb.create(hispn.SumOp, [a.result, b.result], [0.9, 0.9])
        gb.create(hispn.RootOp, s.result)
        with pytest.raises(IRError):
            verify(module)

    def test_gaussian_attrs(self):
        _, _, graph = build_query()
        gb = Builder.at_end(graph.body)
        g = gb.create(hispn.GaussianOp, graph.body.arguments[0], 1.5, 0.5)
        assert g.mean == 1.5
        assert g.stddev == 0.5
        assert g.result.type == hispn.prob

    def test_gaussian_rejects_nonpositive_stddev(self):
        _, _, graph = build_query()
        with pytest.raises(IRError):
            hispn.GaussianOp.build(graph.body.arguments[0], 0.0, 0.0)

    def test_histogram_bucket_counts(self):
        _, _, graph = build_query()
        h = hispn.HistogramOp.build(
            graph.body.arguments[0], [0, 1, 2, 3], [0.2, 0.3, 0.5]
        )
        assert h.bucket_count == 3
        assert h.bounds == (0.0, 1.0, 2.0, 3.0)

    def test_histogram_bounds_length_checked(self):
        _, _, graph = build_query()
        with pytest.raises(IRError):
            hispn.HistogramOp.build(graph.body.arguments[0], [0, 1], [0.2, 0.8])

    def test_categorical_normalization_checked(self):
        module, _, graph = build_query()
        gb = Builder.at_end(graph.body)
        c = gb.create(hispn.CategoricalOp, graph.body.arguments[0], [0.3, 0.3])
        gb.create(hispn.RootOp, c.result)
        with pytest.raises(IRError):
            verify(module)

    def test_table1_inventory(self):
        """Every operation listed in Table I exists with the right name."""
        expected = {
            "hi_spn.joint_query",
            "hi_spn.graph",
            "hi_spn.root",
            "hi_spn.product",
            "hi_spn.sum",
            "hi_spn.histogram",
            "hi_spn.categorical",
            "hi_spn.gaussian",
        }
        from repro.ir import registered_dialects

        names = {cls.name for cls in registered_dialects()["hi_spn"].op_classes}
        assert expected <= names
