"""Tests for the arith dialect: builders, verification, folding."""

import pytest

from repro.dialects import arith
from repro.ir import Block, IRError, Trait, VectorType, f32, f64, i1, i64, index


@pytest.fixture
def args():
    return Block([f32, f32]).arguments


class TestConstant:
    def test_float_constant(self):
        c = arith.ConstantOp.build(1.5, f32)
        assert c.value == 1.5
        assert c.result.type == f32

    def test_int_constant_coerces(self):
        c = arith.ConstantOp.build(3.0, i64)
        assert c.value == 3
        assert isinstance(c.value, int)

    def test_index_constant(self):
        c = arith.ConstantOp.build(7, index)
        assert c.value == 7

    def test_vector_constant(self):
        c = arith.ConstantOp.build(2.0, VectorType((8,), f32))
        assert c.result.type == VectorType((8,), f32)

    def test_constant_like_trait(self):
        assert arith.ConstantOp.build(0, i64).has_trait(Trait.CONSTANT_LIKE)

    def test_constant_value_helper(self, args):
        c = arith.ConstantOp.build(4.0, f32)
        assert arith.constant_value(c.result) == 4.0
        assert arith.constant_value(args[0]) is None


class TestBinaryOps:
    @pytest.mark.parametrize(
        "cls", [arith.AddFOp, arith.SubFOp, arith.MulFOp, arith.DivFOp]
    )
    def test_float_ops_build(self, cls, args):
        op = cls.build(args[0], args[1])
        assert op.result.type == f32

    def test_type_mismatch_rejected(self):
        a = Block([f32, f64]).arguments
        with pytest.raises(IRError):
            arith.AddFOp.build(a[0], a[1])

    def test_commutative_traits(self):
        assert Trait.COMMUTATIVE in arith.AddFOp.traits
        assert Trait.COMMUTATIVE in arith.MulFOp.traits
        assert Trait.COMMUTATIVE not in arith.SubFOp.traits
        assert Trait.COMMUTATIVE not in arith.DivFOp.traits

    @pytest.mark.parametrize(
        "cls,a,b,expected",
        [
            (arith.AddFOp, 2.0, 3.0, 5.0),
            (arith.SubFOp, 2.0, 3.0, -1.0),
            (arith.MulFOp, 2.0, 3.0, 6.0),
            (arith.DivFOp, 3.0, 2.0, 1.5),
            (arith.MinFOp, 2.0, 3.0, 2.0),
            (arith.MaxFOp, 2.0, 3.0, 3.0),
        ],
    )
    def test_constant_constant_folds(self, cls, a, b, expected):
        ca = arith.ConstantOp.build(a, f64)
        cb = arith.ConstantOp.build(b, f64)
        op = cls.build(ca.result, cb.result)
        assert op.fold() == [expected]

    @pytest.mark.parametrize(
        "cls,a,b,expected",
        [
            (arith.AddIOp, 2, 3, 5),
            (arith.SubIOp, 2, 3, -1),
            (arith.MulIOp, 2, 3, 6),
            (arith.DivSIOp, 7, 2, 3),
            (arith.RemSIOp, 7, 2, 1),
        ],
    )
    def test_integer_folds(self, cls, a, b, expected):
        ca = arith.ConstantOp.build(a, i64)
        cb = arith.ConstantOp.build(b, i64)
        assert cls.build(ca.result, cb.result).fold() == [expected]

    def test_identity_fold(self, args):
        zero = arith.ConstantOp.build(0.0, f32)
        op = arith.AddFOp.build(args[0], zero.result)
        assert op.fold() == [args[0]]

    def test_no_fold_without_constants(self, args):
        assert arith.AddFOp.build(args[0], args[1]).fold() is None

    def test_negf_fold(self):
        c = arith.ConstantOp.build(2.5, f64)
        assert arith.NegFOp.build(c.result).fold() == [-2.5]

    def test_verify_op_checks_arity(self, args):
        op = arith.AddFOp.build(args[0], args[1])
        op.verify_op()
        bad = arith.AddFOp(operands=[args[0]], result_types=[f32])
        with pytest.raises(IRError):
            bad.verify_op()


class TestComparisons:
    def test_cmpf_builds_i1(self, args):
        op = arith.CmpFOp.build("olt", args[0], args[1])
        assert op.result.type == i1
        assert op.predicate == "olt"

    def test_cmp_vector_result(self):
        vec = VectorType((4,), f32)
        a = Block([vec, vec]).arguments
        op = arith.CmpFOp.build("oge", a[0], a[1])
        assert op.result.type == VectorType((4,), i1)

    def test_unknown_predicate_rejected(self, args):
        with pytest.raises(IRError):
            arith.CmpFOp.build("wat", args[0], args[1])

    @pytest.mark.parametrize(
        "pred,a,b,expected",
        [
            ("eq", 1, 1, 1),
            ("ne", 1, 2, 1),
            ("slt", 1, 2, 1),
            ("sge", 1, 2, 0),
            ("oeq", 1, 2, 0),
            ("une", 1, 1, 0),
        ],
    )
    def test_cmp_folds(self, pred, a, b, expected):
        cls = arith.CmpIOp if pred in ("eq", "ne", "slt", "sge") else arith.CmpFOp
        ty = i64 if cls is arith.CmpIOp else f64
        ca = arith.ConstantOp.build(a, ty)
        cb = arith.ConstantOp.build(b, ty)
        assert cls.build(pred, ca.result, cb.result).fold() == [expected]


class TestSelect:
    def test_build_checks_branch_types(self, args):
        cond = arith.CmpFOp.build("olt", args[0], args[1])
        other = Block([f64]).arguments[0]
        with pytest.raises(IRError):
            arith.SelectOp.build(cond.result, args[0], other)

    def test_fold_constant_condition(self, args):
        true_c = arith.ConstantOp.build(1, i1)
        op = arith.SelectOp.build(true_c.result, args[0], args[1])
        assert op.fold() == [args[0]]

    def test_fold_same_branches(self, args):
        cond = arith.CmpFOp.build("olt", args[0], args[1])
        op = arith.SelectOp.build(cond.result, args[0], args[0])
        assert op.fold() == [args[0]]


class TestCasts:
    def test_fptosi_fold_truncates(self):
        c = arith.ConstantOp.build(2.9, f64)
        assert arith.FPToSIOp.build(c.result, i64).fold() == [2]

    def test_sitofp_fold(self):
        c = arith.ConstantOp.build(3, i64)
        assert arith.SIToFPOp.build(c.result, f64).fold() == [3.0]

    def test_index_cast_fold(self):
        c = arith.ConstantOp.build(5, i64)
        assert arith.IndexCastOp.build(c.result, index).fold() == [5]

    def test_extf_truncf_types(self, args):
        ext = arith.ExtFOp.build(args[0], f64)
        assert ext.result.type == f64
        trunc = arith.TruncFOp.build(ext.result, f32)
        assert trunc.result.type == f32
