"""Tests for the scf, memref, vector and gpu dialects."""

import numpy as np
import pytest

from repro.dialects import gpu, memref, scf, vector
from repro.dialects.arith import ConstantOp
from repro.ir import (
    Block,
    Builder,
    IRError,
    MemRefType,
    ModuleOp,
    VectorType,
    f32,
    f64,
    index,
    verify,
)
from repro.ir.types import i64


@pytest.fixture
def index_args():
    return Block([index, index]).arguments


class TestSCF:
    def test_for_structure(self, index_args):
        c0 = ConstantOp.build(0, index)
        loop = scf.ForOp.build(c0.result, index_args[0], index_args[1], [])
        assert loop.induction_var.type == index
        assert loop.iter_args == []
        assert loop.lower is c0.result

    def test_for_iter_args(self, index_args):
        c0 = ConstantOp.build(0, index)
        init = ConstantOp.build(1.0, f32)
        loop = scf.ForOp.build(c0.result, index_args[0], index_args[1], [init.result])
        assert len(loop.results) == 1
        assert loop.results[0].type == f32
        assert loop.iter_args[0].type == f32
        assert loop.init_args == [init.result]

    def test_for_verify_checks_yield(self, index_args):
        c0 = ConstantOp.build(0, index)
        init = ConstantOp.build(1.0, f32)
        loop = scf.ForOp.build(c0.result, index_args[0], index_args[1], [init.result])
        Builder.at_end(loop.body_block).create(scf.YieldOp, [])
        with pytest.raises(IRError):
            loop.verify_op()

    def test_if_regions(self, index_args):
        from repro.dialects.arith import CmpIOp

        cond = CmpIOp.build("slt", index_args[0], index_args[1])
        op = scf.IfOp.build(cond.result, [f32])
        tb = Builder.at_end(op.then_block)
        tv = tb.create(ConstantOp, 1.0, f32)
        tb.create(scf.YieldOp, [tv.result])
        eb = Builder.at_end(op.else_block)
        ev = eb.create(ConstantOp, 2.0, f32)
        eb.create(scf.YieldOp, [ev.result])
        op.verify_op()

    def test_if_yield_type_checked(self, index_args):
        from repro.dialects.arith import CmpIOp

        cond = CmpIOp.build("slt", index_args[0], index_args[1])
        op = scf.IfOp.build(cond.result, [f32])
        tb = Builder.at_end(op.then_block)
        tv = tb.create(ConstantOp, 1.0, f64)
        tb.create(scf.YieldOp, [tv.result])
        Builder.at_end(op.else_block).create(scf.YieldOp, [])
        with pytest.raises(IRError):
            op.verify_op()


class TestMemRef:
    def test_alloc_dynamic_dims(self, index_args):
        ty = MemRefType((None, 4), f32)
        alloc = memref.AllocOp.build(ty, [index_args[0]])
        assert alloc.result.type == ty

    def test_alloc_dim_count_checked(self, index_args):
        with pytest.raises(IRError):
            memref.AllocOp.build(MemRefType((None, None), f32), [index_args[0]])

    def test_load_rank_checked(self, index_args):
        buf = memref.AllocOp.build(MemRefType((4, 4), f32), [])
        with pytest.raises(IRError):
            memref.LoadOp.build(buf.result, [index_args[0]])

    def test_load_result_type(self, index_args):
        buf = memref.AllocOp.build(MemRefType((4,), f64), [])
        load = memref.LoadOp.build(buf.result, [index_args[0]])
        assert load.result.type == f64
        assert load.buffer is buf.result

    def test_store_element_type_checked(self, index_args):
        buf = memref.AllocOp.build(MemRefType((4,), f64), [])
        value = ConstantOp.build(1.0, f32)
        with pytest.raises(IRError):
            memref.StoreOp.build(value.result, buf.result, [index_args[0]])

    def test_copy_accessors(self):
        a = memref.AllocOp.build(MemRefType((4,), f32), [])
        b = memref.AllocOp.build(MemRefType((4,), f32), [])
        cp = memref.CopyOp.build(a.result, b.result)
        assert cp.source is a.result
        assert cp.target is b.result

    def test_dim(self):
        a = memref.AllocOp.build(MemRefType((4, 8), f32), [])
        d = memref.DimOp.build(a.result, 1)
        assert d.dim == 1
        assert d.result.type == index

    def test_constant_buffer(self):
        data = np.array([0.25, 0.75])
        op = memref.ConstantBufferOp.build(data, f64)
        assert op.result.type == MemRefType((2,), f64)
        np.testing.assert_array_equal(op.data, data)


class TestVector:
    vec8 = VectorType((8,), f32)

    def test_broadcast_type_checked(self):
        s = ConstantOp.build(1.0, f64)
        with pytest.raises(IRError):
            vector.BroadcastOp.build(s.result, self.vec8)

    def test_load_store(self, index_args):
        buf = memref.AllocOp.build(MemRefType((2, None), f32), [index_args[0]])
        load = vector.LoadOp.build(buf.result, [index_args[0], index_args[1]], self.vec8)
        assert load.result.type == self.vec8
        vector.StoreOp.build(load.result, buf.result, [index_args[0], index_args[1]])

    def test_store_requires_vector(self, index_args):
        buf = memref.AllocOp.build(MemRefType((None,), f32), [index_args[0]])
        s = ConstantOp.build(1.0, f32)
        with pytest.raises(IRError):
            vector.StoreOp.build(s.result, buf.result, [index_args[0]])

    def test_gather_requires_rank2(self, index_args):
        buf = memref.AllocOp.build(MemRefType((None,), f32), [index_args[0]])
        with pytest.raises(IRError):
            vector.GatherOp.build(buf.result, index_args[0], 0, self.vec8)

    def test_load_tile_and_extract_column(self, index_args):
        buf = memref.AllocOp.build(MemRefType((None, 26), f32), [index_args[0]])
        tile = vector.LoadTileOp.build(buf.result, index_args[0], 8)
        assert tile.result.type == VectorType((8, 26), f32)
        col = vector.ExtractColumnOp.build(tile.result, 3)
        assert col.result.type == self.vec8
        assert col.column == 3

    def test_load_tile_requires_static_columns(self, index_args):
        buf = memref.AllocOp.build(
            MemRefType((None, None), f32), [index_args[0], index_args[1]]
        )
        with pytest.raises(IRError):
            vector.LoadTileOp.build(buf.result, index_args[0], 8)

    def test_extract_insert(self):
        from repro.ir import Block

        vec = Block([self.vec8]).arguments[0]
        e = vector.ExtractOp.build(vec, 2)
        assert e.result.type == f32
        s = ConstantOp.build(1.0, f32)
        ins = vector.InsertOp.build(s.result, vec, 2)
        assert ins.result.type == self.vec8

    def test_gather_table(self, index_args):
        table = memref.AllocOp.build(MemRefType((16,), f32), [])
        idx = vector.BroadcastOp.build(
            ConstantOp.build(3, i64).result, VectorType((8,), i64)
        )
        g = vector.GatherTableOp.build(table.result, idx.result)
        assert g.result.type == self.vec8

    def test_scalarized_call(self):
        from repro.ir import Block

        vec = Block([self.vec8]).arguments[0]
        call = vector.ScalarizedCallOp.build("log", vec)
        assert call.fn == "log"
        with pytest.raises(IRError):
            vector.ScalarizedCallOp.build("tanh", vec)

    def test_scalarized_call_requires_vector(self):
        s = ConstantOp.build(1.0, f32)
        with pytest.raises(IRError):
            vector.ScalarizedCallOp.build("log", s.result)


class TestGPU:
    def test_module_and_kernels(self):
        gm = gpu.GPUModuleOp.build("kernels")
        fb = Builder.at_end(gm.body_block)
        k = fb.create(gpu.GPUFuncOp, "task_0", [MemRefType((None, 2), f32)])
        Builder.at_end(k.body).create(gpu.ReturnOp)
        assert gm.kernels() == [k]
        assert k.sym_name == "task_0"

    def test_id_ops(self):
        tid = gpu.ThreadIdOp.build("x")
        assert tid.result.type == index
        assert tid.dimension == "x"
        with pytest.raises(IRError):
            gpu.BlockIdOp.build("w")

    def test_memcpy_direction_checked(self, index_args):
        host = memref.AllocOp.build(MemRefType((4,), f32), [])
        dev = gpu.AllocOp.build(MemRefType((4,), f32), [])
        gpu.MemcpyOp.build(dev.result, host.result, gpu.H2D)
        with pytest.raises(IRError):
            gpu.MemcpyOp.build(dev.result, host.result, "sideways")

    def test_launch_accessors(self, index_args):
        dev = gpu.AllocOp.build(MemRefType((4,), f32), [])
        c = ConstantOp.build(64, index)
        launch = gpu.LaunchFuncOp.build(
            "kernels", "task_0", index_args[0], c.result, index_args[1], [dev.result]
        )
        assert launch.module_name == "kernels"
        assert launch.kernel_name == "task_0"
        assert launch.grid_size is index_args[0]
        assert launch.block_size is c.result
        assert launch.valid_count is index_args[1]
        assert launch.kernel_args == [dev.result]
