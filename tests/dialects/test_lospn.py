"""Tests for the LoSPN dialect (paper Table II)."""

import pytest

from repro.dialects import lospn
from repro.ir import (
    Builder,
    IRError,
    MemRefType,
    ModuleOp,
    TensorType,
    f32,
    f64,
    index,
    parse_module,
    print_op,
    verify,
)


log_f32 = lospn.LogType(f32)


class TestLogType:
    def test_spelling(self):
        assert log_f32.spelling() == "!lo_spn.log<f32>"
        assert lospn.LogType(f64).spelling() == "!lo_spn.log<f64>"

    def test_requires_float_base(self):
        from repro.ir.types import i32

        with pytest.raises(ValueError):
            lospn.LogType(i32)

    def test_storage_type(self):
        assert lospn.storage_type(log_f32) == f32
        assert lospn.storage_type(f64) == f64

    def test_is_log_type(self):
        assert lospn.is_log_type(log_f32)
        assert not lospn.is_log_type(f32)

    def test_parse(self):
        from repro.ir import parse_type_text

        assert parse_type_text("!lo_spn.log<f32>") == log_f32


def build_kernel_with_task(ct=log_f32):
    module = ModuleOp.build()
    b = Builder.at_end(module.body)
    in_ty = TensorType((None, 2), f32)
    out_ty = TensorType((1, None), ct)
    kernel = b.create(lospn.KernelOp, "k", [in_ty], [out_ty])
    kb = Builder.at_end(kernel.body)
    task = kb.create(lospn.TaskOp, [kernel.body.arguments[0]], 8, [out_ty])
    tb = Builder.at_end(task.body)
    x0 = tb.create(lospn.BatchExtractOp, task.input_args[0], task.batch_index, 0)
    x1 = tb.create(lospn.BatchExtractOp, task.input_args[0], task.batch_index, 1)
    body = tb.create(lospn.BodyOp, [x0.result, x1.result], [ct])
    bb = Builder.at_end(body.body)
    g0 = bb.create(lospn.GaussianOp, body.body.arguments[0], 0.0, 1.0, ct)
    g1 = bb.create(lospn.GaussianOp, body.body.arguments[1], 1.0, 2.0, ct)
    mul = bb.create(lospn.MulOp, g0.result, g1.result)
    bb.create(lospn.YieldOp, [mul.result])
    tb.create(lospn.BatchCollectOp, task.batch_index, [body.results[0]])
    kb.create(lospn.KernelReturnOp, [task.results[0]])
    return module, kernel, task, body


class TestKernelTaskBody:
    def test_structure_verifies(self):
        module, kernel, task, body = build_kernel_with_task()
        verify(module)
        assert kernel.tasks() == [task]
        assert task.batch_size == 8

    def test_round_trip(self):
        module, *_ = build_kernel_with_task()
        text = print_op(module)
        reparsed = parse_module(text)
        verify(reparsed)
        assert print_op(reparsed) == text

    def test_task_requires_index_argument(self):
        task = lospn.TaskOp(
            operands=[], result_types=[], attributes={"batchSize": 4}, regions=1
        )
        from repro.ir import Block

        task.regions[0].append_block(Block([f32]))
        with pytest.raises(IRError):
            task.verify_op()

    def test_body_yield_types_checked(self):
        module, kernel, task, body = build_kernel_with_task()
        term = body.body.terminator
        bb = Builder.before_op(term)
        const = bb.create(lospn.ConstantOp, 0.5, f32)  # not the log type
        old = term.operands[0]
        term.set_operand(0, const.result)
        with pytest.raises(IRError):
            verify(module)
        term.set_operand(0, old)
        verify(module)

    def test_kernel_signature_mismatch_detected(self):
        module, kernel, *_ = build_kernel_with_task()
        kernel.attributes["arg_types"] = (TensorType((None, 3), f32),)
        with pytest.raises(IRError):
            verify(module)


class TestBatchAccess:
    def test_batch_extract_types(self):
        module, kernel, task, _ = build_kernel_with_task()
        extract = task.body.first_op
        assert extract.op_name == "lo_spn.batch_extract"
        assert extract.result.type == f32
        assert extract.static_index == 0
        assert not extract.transposed

    def test_batch_extract_requires_tensor(self):
        mem = MemRefType((None, 2), f32)
        module = ModuleOp.build()
        kernel = Builder.at_end(module.body).create(lospn.KernelOp, "k", [mem], [])
        kb = Builder.at_end(kernel.body)
        task = kb.create(lospn.TaskOp, [kernel.body.arguments[0]], 4, [])
        with pytest.raises(IRError):
            lospn.BatchExtractOp.build(task.input_args[0], task.batch_index, 0)

    def test_batch_read_requires_memref(self):
        module, kernel, task, _ = build_kernel_with_task()
        with pytest.raises(IRError):
            lospn.BatchReadOp.build(task.input_args[0], task.batch_index, 0)

    def test_batch_collect_shapes(self):
        module, kernel, task, body = build_kernel_with_task()
        collect = [
            op for op in task.body.ops if op.op_name == "lo_spn.batch_collect"
        ][0]
        assert collect.result.type == TensorType((1, None), log_f32)
        assert collect.transposed

    def test_batch_collect_requires_values(self):
        module, kernel, task, _ = build_kernel_with_task()
        with pytest.raises(IRError):
            lospn.BatchCollectOp.build(task.batch_index, [])

    def test_batch_write_requires_memref(self):
        module, kernel, task, body = build_kernel_with_task()
        with pytest.raises(IRError):
            lospn.BatchWriteOp.build(
                task.input_args[0], task.batch_index, [body.results[0]]
            )


class TestArithmeticOps:
    def test_mul_add_type_check(self):
        module, _, _, body = build_kernel_with_task()
        bb = Builder.at_end(body.body)
        lin = lospn.ConstantOp.build(0.5, f32)
        logv = lospn.ConstantOp.build(-0.5, log_f32)
        with pytest.raises(IRError):
            lospn.MulOp.build(lin.result, logv.result)

    def test_constant_payload(self):
        c = lospn.ConstantOp.build(-1.25, log_f32)
        assert c.value == -1.25
        assert c.result.type == log_f32

    def test_log_exp_conversions(self):
        lin = lospn.ConstantOp.build(0.5, f32)
        log_op = lospn.LogOp.build(lin.result)
        assert log_op.result.type == log_f32
        exp_op = lospn.ExpOp.build(log_op.result)
        assert exp_op.result.type == f32

    def test_log_rejects_log_input(self):
        logv = lospn.ConstantOp.build(-0.5, log_f32)
        with pytest.raises(IRError):
            lospn.LogOp.build(logv.result)

    def test_exp_requires_log_input(self):
        lin = lospn.ConstantOp.build(0.5, f32)
        with pytest.raises(IRError):
            lospn.ExpOp.build(lin.result)


class TestLeaves:
    def test_leaf_result_types(self):
        module, _, _, body = build_kernel_with_task()
        arg = body.body.arguments[0]
        g = lospn.GaussianOp.build(arg, 0.0, 1.0, log_f32, support_marginal=True)
        assert g.result.type == log_f32
        assert g.support_marginal
        c = lospn.CategoricalOp.build(arg, [0.5, 0.5], f64)
        assert c.result.type == f64
        h = lospn.HistogramOp.build(arg, [0, 1, 2], [0.4, 0.6], log_f32)
        assert h.probabilities == (0.4, 0.6)

    def test_table2_inventory(self):
        expected = {
            "lo_spn.kernel",
            "lo_spn.task",
            "lo_spn.body",
            "lo_spn.batch_extract",
            "lo_spn.batch_read",
            "lo_spn.batch_collect",
            "lo_spn.batch_write",
            "lo_spn.mul",
            "lo_spn.add",
            "lo_spn.histogram",
            "lo_spn.categorical",
            "lo_spn.gaussian",
        }
        from repro.ir import registered_dialects

        names = {cls.name for cls in registered_dialects()["lo_spn"].op_classes}
        assert expected <= names
