"""Tests for multi-head compilation (several class SPNs in one kernel)."""

import numpy as np
import pytest

from repro import CPUCompiler, GPUCompiler
from repro.compiler import CompilerOptions, compile_spn
from repro.compiler.frontend import build_hispn_module
from repro.spn import (
    Gaussian,
    JointProbability,
    Product,
    RatSpnConfig,
    Sum,
    build_rat_spn,
    log_likelihood,
)


@pytest.fixture(scope="module")
def rat_heads():
    return build_rat_spn(
        RatSpnConfig(
            num_features=8,
            num_classes=3,
            depth=2,
            num_repetitions=2,
            num_sums=2,
            num_input_distributions=2,
            seed=4,
        )
    )


@pytest.fixture
def inputs(rng):
    return rng.normal(size=(33, 8)).astype(np.float32)


def reference(heads, inputs):
    return np.stack(
        [log_likelihood(h, inputs.astype(np.float64)) for h in heads], axis=0
    )


class TestFrontend:
    def test_shared_subgraphs_translate_once(self, rat_heads):
        module = build_hispn_module(rat_heads, JointProbability(batch_size=8))
        root_op = [op for op in module.walk() if op.op_name == "hi_spn.root"][0]
        assert len(root_op.operands) == 3
        # All heads share children: per-head translation would triple the
        # sum count; shared translation keeps one op per distinct node.
        from repro.spn import num_nodes

        distinct = len(
            {id(n) for head in rat_heads for n in __import__(
                "repro.spn.nodes", fromlist=["topological_order"]
            ).topological_order(head)}
        )
        graph_ops = [
            op
            for op in module.walk()
            if op.op_name.startswith("hi_spn.")
            and op.op_name not in ("hi_spn.joint_query", "hi_spn.graph", "hi_spn.root")
        ]
        assert len(graph_ops) == distinct

    def test_empty_head_list_rejected(self):
        with pytest.raises(ValueError):
            build_hispn_module([], JointProbability())


class TestExecution:
    @pytest.mark.parametrize(
        "options",
        [
            CompilerOptions(),
            CompilerOptions(vectorize=True, superword_factor=2),
            CompilerOptions(max_partition_size=20, verify_each_stage=True),
            CompilerOptions(target="gpu"),
            CompilerOptions(target="gpu", max_partition_size=20),
            CompilerOptions(opt_level=3),
        ],
        ids=["scalar", "vector", "partitioned", "gpu", "gpu-partitioned", "O3"],
    )
    def test_matches_per_head_reference(self, rat_heads, inputs, options):
        ref = reference(rat_heads, inputs)
        result = compile_spn(rat_heads, JointProbability(batch_size=16), options)
        out = result.executable(inputs)
        assert out.shape == (3, 33)
        np.testing.assert_allclose(out, ref, rtol=5e-3, atol=5e-4)

    def test_signature_reports_heads(self, rat_heads):
        result = compile_spn(rat_heads, JointProbability(batch_size=16))
        assert result.executable.signature.num_results == 3

    def test_single_head_list_behaves_like_scalar_form(self, inputs, rng):
        spn = Sum(
            [
                Product([Gaussian(0, 0, 1)] + [Gaussian(i, 0, 1) for i in range(1, 8)]),
                Product([Gaussian(i, 1, 1) for i in range(8)]),
            ],
            [0.5, 0.5],
        )
        single = compile_spn(spn, JointProbability(batch_size=16)).executable(inputs)
        as_list = compile_spn([spn], JointProbability(batch_size=16)).executable(inputs)
        # A one-head kernel squeezes to the plain per-sample vector.
        assert as_list.shape == (33,)
        np.testing.assert_allclose(as_list, single)

    def test_marginal_multi_head(self, rat_heads, rng):
        x = rng.normal(size=(20, 8))
        x[::4, 2] = np.nan
        ref = np.stack([log_likelihood(h, x) for h in rat_heads], axis=0)
        result = compile_spn(
            rat_heads,
            JointProbability(batch_size=16, support_marginal=True),
        )
        out = result.executable(x.astype(np.float32))
        np.testing.assert_allclose(out, ref, rtol=5e-3, atol=5e-4)

    def test_partitioned_head_rows_in_order(self, rat_heads, inputs):
        """Partition pinning must keep the head-row order intact."""
        ref = reference(rat_heads, inputs)
        for psize in (10, 25, 60):
            result = compile_spn(
                rat_heads,
                JointProbability(batch_size=16),
                CompilerOptions(max_partition_size=psize),
            )
            out = result.executable(inputs)
            np.testing.assert_allclose(out, ref, rtol=5e-3, atol=5e-4)


class TestAPI:
    def test_cpu_compiler_accepts_lists(self, rat_heads, inputs):
        compiler = CPUCompiler(batch_size=16)
        out = compiler.log_likelihood(list(rat_heads), inputs)
        np.testing.assert_allclose(
            out, reference(rat_heads, inputs), rtol=5e-3, atol=5e-4
        )
        # Cached under the tuple key.
        assert compiler.compile(list(rat_heads)) is compiler.compile(list(rat_heads))

    def test_classify_helper(self, rat_heads, inputs):
        compiler = CPUCompiler(batch_size=16)
        predictions = compiler.classify(rat_heads, inputs)
        expected = np.argmax(reference(rat_heads, inputs), axis=0)
        np.testing.assert_array_equal(predictions, expected)

    def test_gpu_multi_head_single_transfer(self, rat_heads, inputs):
        """The multi-head kernel uploads the input once and downloads one
        result tensor — the advantage over per-class kernels."""
        compiler = GPUCompiler(batch_size=64)
        compiler.log_likelihood(list(rat_heads), inputs)
        result = compiler.compile(list(rat_heads))
        profile = result.executable.last_profile
        assert len(profile.transfers) == 2  # one h2d + one d2h
