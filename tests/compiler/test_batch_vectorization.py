"""Batch-vectorization mode: scalar equivalence, tails, and buffer reuse.

The batch mode (paper Section IV-A's vectorizer with W = the whole
chunk) must be a pure performance transformation: for every batch size
— including W-1/W/W+1 tails around the compiled chunk width and
degenerate single-sample batches — the wide kernel's log-likelihoods
must match the scalar kernel's within rtol 1e-9, and steady-state
execution must not allocate fresh temporaries per chunk.
"""

import numpy as np
import pytest

from repro.compiler import CompilerOptions, compile_spn
from repro.spn import JointProbability

from ..conftest import make_discrete_spn, make_gaussian_spn

#: The compiled chunk width used throughout; batch sizes probe the
#: W-1 / W / W+1 boundary around it.
W = 64

BATCH_SIZES = (1, 7, W - 1, W, W + 1, 1000)

RTOL = 1e-9


def _query(**kwargs):
    # relative_error=1e-9 forces float64 compute so scalar and batch
    # kernels are comparable at rtol 1e-9 (f32 would dominate the error).
    kwargs.setdefault("batch_size", W)
    kwargs.setdefault("relative_error", 1e-9)
    return JointProbability(**kwargs)


def _pair(spn, query):
    """Compile the same (spn, query) scalar and batch-vectorized."""
    scalar = compile_spn(spn, query, CompilerOptions(vectorize="off")).executable
    batch = compile_spn(spn, query, CompilerOptions(vectorize="batch")).executable
    return scalar, batch


def _gaussian_inputs(n, rng):
    return rng.normal(0.0, 1.5, size=(n, 2))


def _discrete_inputs(n, rng):
    return np.column_stack(
        [
            rng.integers(0, 3, size=n).astype(np.float64),
            rng.uniform(-0.5, 4.5, size=n),
        ]
    )


class TestScalarEquivalence:
    @pytest.mark.parametrize("n", BATCH_SIZES)
    def test_gaussian(self, n, rng):
        scalar, batch = _pair(make_gaussian_spn(), _query())
        inputs = _gaussian_inputs(n, rng)
        np.testing.assert_allclose(batch(inputs), scalar(inputs), rtol=RTOL)

    @pytest.mark.parametrize("n", BATCH_SIZES)
    def test_categorical_and_histogram(self, n, rng):
        # Discrete leaves exercise the batched-gather path (one fancy
        # index over the whole chunk instead of per-lane extracts).
        scalar, batch = _pair(make_discrete_spn(), _query())
        inputs = _discrete_inputs(n, rng)
        np.testing.assert_allclose(batch(inputs), scalar(inputs), rtol=RTOL)

    @pytest.mark.parametrize("n", BATCH_SIZES)
    def test_marginalized_query(self, n, rng):
        scalar, batch = _pair(
            make_gaussian_spn(), _query(support_marginal=True)
        )
        inputs = _gaussian_inputs(n, rng)
        # NaN marks a marginalized-out feature; the wide select must
        # behave exactly like the scalar branch.
        inputs[rng.random(n) < 0.4, 0] = np.nan
        inputs[rng.random(n) < 0.4, 1] = np.nan
        out_b, out_s = batch(inputs), scalar(inputs)
        assert not np.isnan(out_b).any()
        np.testing.assert_allclose(out_b, out_s, rtol=RTOL)

    def test_linear_space(self, rng):
        query = _query()
        options = CompilerOptions(vectorize="batch", use_log_space=False)
        scalar = compile_spn(
            make_gaussian_spn(), query, CompilerOptions(vectorize="off", use_log_space=False)
        ).executable
        batch = compile_spn(make_gaussian_spn(), query, options).executable
        inputs = _gaussian_inputs(W + 1, rng)
        np.testing.assert_allclose(batch(inputs), scalar(inputs), rtol=RTOL)


class TestKernelShape:
    def test_batch_kernel_is_straight_line(self):
        """W = chunk means no batch loop and no scalar epilogue at all."""
        _, batch = _pair(make_gaussian_spn(), _query())
        assert "for " not in batch.source
        assert "while " not in batch.source

    def test_scalar_kernel_keeps_its_loop(self):
        scalar, _ = _pair(make_gaussian_spn(), _query())
        assert "for " in scalar.source

    def test_batch_kernel_uses_runtime_width(self):
        _, batch = _pair(make_gaussian_spn(), _query())
        # Temporaries are sized from the incoming chunk, not a compile-
        # time constant, so any tail size runs without an epilogue.
        assert "_n = a0.shape[0]" in batch.source
        assert "_tmp_pool.buffer(" in batch.source


class TestBufferPoolReuse:
    def test_steady_state_allocates_nothing(self, rng):
        _, batch = _pair(make_gaussian_spn(), _query())
        pool = batch.buffer_pool
        assert pool is not None
        batch(_gaussian_inputs(1000, rng))  # warm-up sizes the pool
        warm = pool.allocations
        for _ in range(5):
            batch(_gaussian_inputs(1000, rng))
        assert pool.allocations == warm
        assert pool.requests > warm

    def test_smaller_batches_reuse_grown_buffers(self, rng):
        _, batch = _pair(make_gaussian_spn(), _query())
        pool = batch.buffer_pool
        batch(_gaussian_inputs(1000, rng))
        warm = pool.allocations
        # Every smaller batch fits in the already-grown backing arrays.
        for n in (1, 7, W, 999):
            batch(_gaussian_inputs(n, rng))
        assert pool.allocations == warm
