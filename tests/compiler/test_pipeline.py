"""Tests for the end-to-end pipeline driver and the public API."""

import numpy as np
import pytest

from repro import CPUCompiler, GPUCompiler
from repro.compiler import CompilerOptions, compile_spn
from repro.spn import JointProbability, log_likelihood


class TestOptionsValidation:
    def test_unknown_target(self):
        with pytest.raises(ValueError):
            CompilerOptions(target="fpga")

    def test_opt_level_range(self):
        with pytest.raises(ValueError):
            CompilerOptions(opt_level=4)
        with pytest.raises(ValueError):
            CompilerOptions(opt_level=-1)

    def test_unknown_isa(self):
        with pytest.raises(ValueError):
            CompilerOptions(vector_isa="avx1024")


class TestStageTiming:
    def test_cpu_stage_names(self, gaussian_spn, query):
        result = compile_spn(gaussian_spn, query, CompilerOptions(opt_level=1))
        stages = list(result.stage_seconds)
        for expected in (
            "frontend",
            "hispn-simplify",
            "lower-to-lospn",
            "bufferize",
            "buffer-optimization",
            "buffer-deallocation",
            "cpu-lowering",
            "canonicalize",
            "cse",
            "licm",
            "codegen",
        ):
            assert expected in stages
        assert result.compile_time > 0

    def test_opt0_skips_optimizations(self, gaussian_spn, query):
        result = compile_spn(gaussian_spn, query, CompilerOptions(opt_level=0))
        stages = set(result.stage_seconds)
        assert "cse" not in stages
        assert "canonicalize" not in stages
        assert "buffer-optimization" not in stages

    def test_opt3_adds_extra_rounds(self, gaussian_spn, query):
        result = compile_spn(gaussian_spn, query, CompilerOptions(opt_level=3))
        stages = set(result.stage_seconds)
        assert "lospn-cse" in stages
        assert "canonicalize-3" in stages

    def test_partitioning_stage_recorded(self, gaussian_spn, query):
        result = compile_spn(
            gaussian_spn, query, CompilerOptions(max_partition_size=3)
        )
        assert "graph-partitioning" in result.stage_seconds
        assert result.partitioning is not None
        assert result.partitioning.num_partitions == result.num_tasks

    def test_gpu_stage_names(self, gaussian_spn, query):
        result = compile_spn(gaussian_spn, query, CompilerOptions(target="gpu"))
        stages = set(result.stage_seconds)
        assert "gpu-lowering" in stages
        assert "gpu-copy-elimination" in stages
        assert "gpu-codegen" in stages

    def test_ir_dumps_collected(self, gaussian_spn, query):
        result = compile_spn(
            gaussian_spn, query, CompilerOptions(collect_ir=True)
        )
        assert "lower-to-lospn" in result.ir_dumps
        assert "lo_spn.kernel" in result.ir_dumps["lower-to-lospn"]

    def test_ir_dumps_off_by_default(self, gaussian_spn, query):
        result = compile_spn(gaussian_spn, query)
        assert result.ir_dumps == {}


class TestExecutableContract:
    def test_input_shape_validated(self, gaussian_spn, query):
        result = compile_spn(gaussian_spn, query)
        with pytest.raises(ValueError):
            result.executable(np.zeros((4, 3), dtype=np.float32))
        with pytest.raises(ValueError):
            result.executable(np.zeros(4, dtype=np.float32))

    def test_input_dtype_coerced(self, gaussian_spn, query, gaussian_inputs):
        result = compile_spn(gaussian_spn, query)
        out64 = result.executable(gaussian_inputs.astype(np.float64))
        out32 = result.executable(gaussian_inputs)
        np.testing.assert_allclose(out64, out32)

    def test_signature_metadata(self, gaussian_spn, query):
        result = compile_spn(gaussian_spn, query)
        sig = result.executable.signature
        assert sig.num_features == 2
        assert sig.input_dtype == np.float32
        assert sig.result_dtype == np.float32
        assert sig.log_space
        assert sig.batch_size == 16

    def test_source_listing_available(self, gaussian_spn, query):
        result = compile_spn(gaussian_spn, query)
        assert "def spn_kernel" in result.executable.source

    def test_batch_size_is_only_a_hint(self, gaussian_spn, rng):
        result = compile_spn(gaussian_spn, JointProbability(batch_size=8))
        for n in (1, 7, 8, 9, 100):
            x = rng.normal(size=(n, 2)).astype(np.float32)
            assert result.executable(x).shape == (n,)

    def test_multithreaded_matches_single(self, gaussian_spn, rng):
        x = rng.normal(size=(200, 2)).astype(np.float32)
        single = compile_spn(
            gaussian_spn, JointProbability(batch_size=32), CompilerOptions()
        )
        multi = compile_spn(
            gaussian_spn,
            JointProbability(batch_size=32),
            CompilerOptions(num_threads=4),
        )
        np.testing.assert_allclose(single.executable(x), multi.executable(x))


class TestPublicAPI:
    def test_cpu_single_call(self, gaussian_spn, gaussian_inputs):
        ref = log_likelihood(gaussian_spn, gaussian_inputs.astype(np.float64))
        out = CPUCompiler(batch_size=16).log_likelihood(gaussian_spn, gaussian_inputs)
        np.testing.assert_allclose(out, ref, rtol=2e-4, atol=1e-6)

    def test_gpu_single_call(self, gaussian_spn, gaussian_inputs):
        ref = log_likelihood(gaussian_spn, gaussian_inputs.astype(np.float64))
        compiler = GPUCompiler(batch_size=64)
        out = compiler.log_likelihood(gaussian_spn, gaussian_inputs)
        np.testing.assert_allclose(out, ref, rtol=2e-3, atol=1e-5)
        assert compiler.simulated_seconds(gaussian_spn) > 0

    def test_compilation_cached_per_spn(self, gaussian_spn, gaussian_inputs):
        compiler = CPUCompiler(batch_size=16)
        first = compiler.compile(gaussian_spn)
        second = compiler.compile(gaussian_spn)
        assert first is second

    def test_via_serialization_round_trip(self, gaussian_spn, gaussian_inputs):
        ref = log_likelihood(gaussian_spn, gaussian_inputs.astype(np.float64))
        out = CPUCompiler(batch_size=16, via_serialization=True).log_likelihood(
            gaussian_spn, gaussian_inputs
        )
        np.testing.assert_allclose(out, ref, rtol=2e-4, atol=1e-6)

    def test_target_options_forwarded(self, gaussian_spn, gaussian_inputs):
        compiler = CPUCompiler(
            batch_size=16, vectorize=True, vector_isa="avx512", superword_factor=2
        )
        result = compiler.compile(gaussian_spn)
        assert result.options.vectorize
        assert result.options.vector_isa == "avx512"

    def test_marginal_through_api(self, gaussian_spn, rng):
        x = rng.normal(size=(20, 2))
        x[::2, 0] = np.nan
        ref = log_likelihood(gaussian_spn, x)
        out = CPUCompiler(batch_size=8, support_marginal=True).log_likelihood(
            gaussian_spn, x.astype(np.float32)
        )
        np.testing.assert_allclose(out, ref, rtol=2e-3, atol=1e-5)

    def test_gpu_requires_execution_before_timing(self, gaussian_spn):
        compiler = GPUCompiler()
        with pytest.raises(RuntimeError):
            compiler.simulated_seconds(gaussian_spn)
