"""Direct unit tests for the scalar/vector emitters.

Each test builds a tiny func around emitter output, runs it through the
codegen backend and checks the numerics against closed-form values.
"""

import math

import numpy as np
import pytest
from scipy.stats import norm

from repro.backends.cpu.codegen import generate_cpu_module
from repro.compiler.emitters import HISTOGRAM_EPSILON, ScalarEmitter, VectorEmitter
from repro.dialects.func import FuncOp, ReturnOp
from repro.dialects.memref import LoadOp, StoreOp
from repro.dialects.vector import LoadOp as VLoadOp, StoreOp as VStoreOp
from repro.dialects.arith import ConstantOp
from repro.ir import Builder, IRError, MemRefType, ModuleOp, f32, f64, index, verify


def run_scalar(build_fn, x_values, log_space=True, compute_type=f64):
    """Build f(in_mem, out_mem) applying build_fn per element; run it."""
    module = ModuleOp.build()
    b = Builder.at_end(module.body)
    n = len(x_values)
    fn = b.create(FuncOp, "f", [MemRefType((n,), f64), MemRefType((n,), f64)], [])
    fb = Builder.at_end(fn.body)
    table_builder = Builder.at_start(fn.body)
    for i in range(n):
        ci = fb.create(ConstantOp, i, index)
        x = fb.create(LoadOp, fn.body.arguments[0], [ci.result])
        emitter = ScalarEmitter(fb, table_builder, compute_type, log_space)
        result = build_fn(emitter, x.result)
        fb.create(StoreOp, result, fn.body.arguments[1], [ci.result])
    fb.create(ReturnOp, [])
    verify(module)
    generated = generate_cpu_module(module)
    out = np.zeros(n)
    with np.errstate(all="ignore"):
        generated.get("f")(np.asarray(x_values, dtype=np.float64), out)
    return out


def run_vector(build_fn, x_values, log_space=True, compute_type=f64):
    module = ModuleOp.build()
    b = Builder.at_end(module.body)
    n = len(x_values)
    fn = b.create(FuncOp, "f", [MemRefType((n,), f64), MemRefType((n,), f64)], [])
    fb = Builder.at_end(fn.body)
    table_builder = Builder.at_start(fn.body)
    c0 = fb.create(ConstantOp, 0, index)
    from repro.ir import VectorType

    x = fb.create(VLoadOp, fn.body.arguments[0], [c0.result], VectorType((n,), f64))
    emitter = VectorEmitter(fb, table_builder, compute_type, log_space, lanes=n)
    result = build_fn(emitter, x.result)
    fb.create(VStoreOp, result, fn.body.arguments[1], [c0.result])
    fb.create(ReturnOp, [])
    verify(module)
    generated = generate_cpu_module(module)
    out = np.zeros(n)
    with np.errstate(all="ignore"):
        generated.get("f")(np.asarray(x_values, dtype=np.float64), out)
    return out


BOTH = pytest.mark.parametrize("runner", [run_scalar, run_vector], ids=["scalar", "vector"])


class TestGaussianEmission:
    @BOTH
    def test_log_space_pdf(self, runner):
        xs = [-1.0, 0.0, 0.5, 3.0]
        out = runner(lambda e, x: e.gaussian(x, 0.5, 1.5, False), xs)
        np.testing.assert_allclose(out, norm.logpdf(xs, 0.5, 1.5), rtol=1e-12)

    @BOTH
    def test_linear_space_pdf(self, runner):
        xs = [-1.0, 0.0, 2.0]
        out = runner(
            lambda e, x: e.gaussian(x, 0.0, 2.0, False), xs, log_space=False
        )
        np.testing.assert_allclose(out, norm.pdf(xs, 0.0, 2.0), rtol=1e-12)

    @BOTH
    def test_marginal_nan_gives_log_one(self, runner):
        out = runner(
            lambda e, x: e.gaussian(x, 0.0, 1.0, True), [float("nan"), 1.0]
        )
        assert out[0] == 0.0
        assert out[1] == pytest.approx(norm.logpdf(1.0))


class TestDiscreteEmission:
    PROBS = [0.2, 0.5, 0.3]

    @BOTH
    def test_categorical_lookup(self, runner):
        out = runner(
            lambda e, x: e.categorical(x, self.PROBS, False), [0.0, 1.0, 2.0]
        )
        np.testing.assert_allclose(out, np.log(self.PROBS), rtol=1e-12)

    @BOTH
    def test_categorical_out_of_domain_is_zero_probability(self, runner):
        # Values outside [0, K) — below, above, or NaN without marginal
        # support — carry zero probability (log -inf), matching the
        # reference Categorical.log_density domain rule.
        out = runner(
            lambda e, x: e.categorical(x, self.PROBS, False),
            [-3.0, 9.0, 3.0, float("nan")],
        )
        assert np.all(np.isneginf(out))

    @BOTH
    def test_categorical_fractional_value_truncates(self, runner):
        out = runner(
            lambda e, x: e.categorical(x, self.PROBS, False), [1.5, 2.9]
        )
        np.testing.assert_allclose(
            out, [math.log(self.PROBS[1]), math.log(self.PROBS[2])], rtol=1e-12
        )

    @BOTH
    def test_histogram_lookup_and_epsilon(self, runner):
        bounds = [0.0, 1.0, 2.0, 3.0]
        probs = [0.25, 0.5, 0.25]
        out = runner(
            lambda e, x: e.histogram(x, bounds, probs, False),
            [0.5, 1.5, 2.9, -1.0, 3.5],
        )
        np.testing.assert_allclose(out[:3], np.log(probs), rtol=1e-12)
        np.testing.assert_allclose(out[3:], math.log(HISTOGRAM_EPSILON))

    def test_cascade_mode_matches_lookup(self):
        def lookup(e, x):
            return e.categorical(x, self.PROBS, False)

        def cascade(e, x):
            e.discrete_mode = "cascade"
            return e.categorical(x, self.PROBS, False)

        xs = [0.0, 1.0, 2.0, -1.0, 5.0]
        np.testing.assert_allclose(
            run_scalar(lookup, xs), run_scalar(cascade, xs), rtol=1e-12
        )

    def test_non_uniform_histogram_rejected(self):
        with pytest.raises(IRError):
            run_scalar(
                lambda e, x: e.histogram(x, [0.0, 1.0, 5.0], [0.5, 0.5], False),
                [0.5],
            )

    def test_unknown_discrete_mode_rejected(self):
        module = ModuleOp.build()
        fn = Builder.at_end(module.body).create(FuncOp, "f", [], [])
        fb = Builder.at_end(fn.body)
        with pytest.raises(IRError):
            ScalarEmitter(fb, fb, f64, True, discrete_mode="wat")


class TestArithmeticEmission:
    @BOTH
    def test_log_space_mul_is_add(self, runner):
        out = runner(lambda e, x: e.mul(x, e.constant(-0.5)), [-1.0, -2.0])
        np.testing.assert_allclose(out, [-1.5, -2.5])

    @BOTH
    def test_log_space_add_is_logaddexp(self, runner):
        out = runner(lambda e, x: e.add(x, e.constant(-1.0)), [-1.0, -5.0, 0.0])
        np.testing.assert_allclose(
            out, np.logaddexp([-1.0, -5.0, 0.0], -1.0), rtol=1e-12
        )

    @BOTH
    def test_log_space_add_neg_inf_guard(self, runner):
        out = runner(
            lambda e, x: e.add(x, e.constant(-math.inf)),
            [-math.inf, -1.0],
        )
        assert out[0] == -math.inf  # (-inf) + (-inf) stays -inf, not NaN
        assert out[1] == pytest.approx(-1.0)

    @BOTH
    def test_linear_space_arithmetic(self, runner):
        out = runner(
            lambda e, x: e.add(e.mul(x, e.constant(2.0)), e.constant(1.0)),
            [0.5, 3.0],
            log_space=False,
        )
        np.testing.assert_allclose(out, [2.0, 7.0])

    @BOTH
    def test_convert_input_from_f32(self, runner):
        # compute in f64 from f64 loads is identity; check conversion path
        # by emitting through convert_input explicitly.
        out = runner(lambda e, x: e.convert_input(x), [1.25])
        assert out[0] == 1.25


class TestTableCaching:
    def test_identical_tables_shared(self):
        module = ModuleOp.build()
        b = Builder.at_end(module.body)
        fn = b.create(FuncOp, "f", [MemRefType((1,), f64), MemRefType((1,), f64)], [])
        fb = Builder.at_end(fn.body)
        tb = Builder.at_start(fn.body)
        emitter = ScalarEmitter(fb, tb, f64, True)
        c0 = fb.create(ConstantOp, 0, index)
        x = fb.create(LoadOp, fn.body.arguments[0], [c0.result])
        a = emitter.categorical(x.result, [0.5, 0.5], False)
        b_val = emitter.categorical(x.result, [0.5, 0.5], False)
        result = emitter.mul(a, b_val)
        fb.create(StoreOp, result, fn.body.arguments[1], [c0.result])
        fb.create(ReturnOp, [])
        buffers = [
            op for op in module.walk() if op.op_name == "memref.constant_buffer"
        ]
        assert len(buffers) == 1  # same payload -> one table
