"""Tests for the arithmetic error analysis and format selection."""

import math

import numpy as np
import pytest

from repro.compiler import CompilerOptions, compile_spn
from repro.compiler.error_analysis import (
    FormatEstimate,
    analyze_error,
    analyze_query,
    select_format,
)
from repro.compiler.frontend import build_hispn_module
from repro.spn import Gaussian, JointProbability, Product, Sum, log_likelihood

from ..conftest import make_deep_spn, make_discrete_spn, make_gaussian_spn


def query_op(spn, **query_kwargs):
    module = build_hispn_module(spn, JointProbability(**query_kwargs))
    return [op for op in module.walk() if op.op_name == "hi_spn.joint_query"][0]


def deep_product_chain(length):
    """A product over many features with small per-leaf probabilities."""
    leaves = [Gaussian(i, 0.0, 0.001) for i in range(length)]
    return Product(leaves)


class TestValueRanges:
    def test_gaussian_leaf_range(self):
        q = query_op(Product([Gaussian(0, 0.0, 1.0), Gaussian(1, 0.0, 1.0)]))
        ranges = analyze_query(q)
        peaks = [hi for (lo, hi) in ranges.values()]
        # Standard normal peak density is 1/sqrt(2 pi) ~ 0.3989.
        expected = math.log(1.0 / math.sqrt(2 * math.pi))
        assert any(abs(hi - expected) < 1e-9 for hi in peaks)

    def test_product_range_adds_logs(self):
        spn = Product([Gaussian(0, 0.0, 1.0), Gaussian(1, 0.0, 1.0)])
        q = query_op(spn)
        ranges = analyze_query(q)
        product_op = [
            op for op in q.walk() if op.op_name == "hi_spn.product"
        ][0]
        _, product_hi = ranges[id(product_op)]
        expected = 2 * math.log(1.0 / math.sqrt(2 * math.pi))
        assert product_hi == pytest.approx(expected)

    def test_discrete_leaf_range_skips_zero_probabilities(self):
        from repro.spn import Categorical

        spn = Product([Categorical(0, [0.5, 0.5, 0.0]), Categorical(1, [1.0])])
        q = query_op(spn)
        ranges = analyze_query(q)
        assert all(np.isfinite(lo) for (lo, hi) in ranges.values())


class TestErrorEstimates:
    def test_f64_tighter_than_f32(self):
        q = query_op(make_gaussian_spn())
        estimates = analyze_error(q)
        assert (
            estimates["f64-log"].max_relative_error
            < estimates["f32-log"].max_relative_error
        )
        assert (
            estimates["f64-linear"].max_relative_error
            < estimates["f32-linear"].max_relative_error
        )

    def test_deeper_graphs_accumulate_more_error(self):
        shallow = analyze_error(query_op(make_gaussian_spn()))["f32-log"]
        deep = analyze_error(query_op(make_deep_spn(depth=20)))["f32-log"]
        assert deep.max_relative_error > shallow.max_relative_error

    def test_linear_underflow_detected(self):
        # 200 leaves with peak density ~399 each but evaluated values down
        # to exp(-18)*399 — the product's lower bound drops below f32's
        # (and for long chains f64's) normal range.
        chain = deep_product_chain(60)
        estimates = analyze_error(query_op(chain))
        assert estimates["f32-linear"].underflows
        assert not estimates["f32-log"].underflows

    def test_long_chain_underflows_even_f64(self):
        chain = deep_product_chain(400)
        estimates = analyze_error(query_op(chain))
        assert estimates["f64-linear"].underflows
        assert not estimates["f64-log"].underflows


class TestFormatSelection:
    def test_loose_bound_picks_f32_log(self):
        analysis = select_format(query_op(make_gaussian_spn()), 1e-3)
        assert analysis.selected.name == "f32-log"

    def test_tight_bound_escalates_to_f64(self):
        analysis = select_format(query_op(make_gaussian_spn()), 1e-9)
        assert analysis.selected.float_width == 64

    def test_impossible_bound_falls_back_to_f64_log(self):
        analysis = select_format(query_op(make_deep_spn(depth=30)), 1e-18)
        assert analysis.selected.name == "f64-log"

    def test_linear_preference_respects_underflow(self):
        chain = deep_product_chain(60)
        analysis = select_format(query_op(chain), 1e-2, prefer_log_space=False)
        # f32-linear underflows; the selection must avoid it.
        assert not analysis.selected.underflows


class TestPipelineIntegration:
    def test_relative_error_drives_type_decision(self, gaussian_inputs):
        spn = make_gaussian_spn()
        ref = log_likelihood(spn, gaussian_inputs.astype(np.float64))

        tight = compile_spn(
            spn, JointProbability(batch_size=16, relative_error=1e-9)
        )
        assert tight.executable.signature.result_dtype == np.float64
        np.testing.assert_allclose(
            tight.executable(gaussian_inputs), ref, rtol=1e-7
        )

        loose = compile_spn(
            spn, JointProbability(batch_size=16, relative_error=1e-3)
        )
        assert loose.executable.signature.result_dtype == np.float32
        np.testing.assert_allclose(
            loose.executable(gaussian_inputs), ref, rtol=2e-3, atol=1e-5
        )

    def test_error_bound_holds_empirically(self, rng):
        """The f32 prediction must bound the observed f32-vs-f64 error."""
        spn = make_gaussian_spn()
        q = query_op(spn)
        predicted = analyze_error(q)["f32-log"].max_relative_error

        x = rng.normal(0, 1.5, size=(500, 2)).astype(np.float32)
        ref = log_likelihood(spn, x.astype(np.float64))
        out = compile_spn(spn, JointProbability(batch_size=128)).executable(x)
        # Compare probabilities (the bound is on relative prob. error).
        observed = np.max(np.abs(np.expm1(out - ref)))
        assert observed <= predicted * 10  # first-order bound, small slack

    def test_relative_error_survives_serialization(self):
        from repro.spn import deserialize, serialize

        spn = make_gaussian_spn()
        payload = serialize(spn, JointProbability(relative_error=1e-6))
        _, query = deserialize(payload)
        assert query.relative_error == 1e-6
