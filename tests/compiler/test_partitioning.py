"""Tests for the acyclic graph partitioning pass (paper Section IV-A4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import CompilerOptions, compile_spn
from repro.compiler.frontend import build_hispn_module
from repro.compiler.lower_to_lospn import lower_to_lospn
from repro.compiler.partitioning import (
    GraphPartitioner,
    PartitioningOptions,
    partition_kernel,
)
from repro.dialects import lospn
from repro.spn import Gaussian, JointProbability, Product, Sum, log_likelihood, learn_spn
from repro.ir import verify

from ..conftest import make_gaussian_spn


def lowered_module(spn, batch_size=8):
    module = build_hispn_module(spn, JointProbability(batch_size=batch_size))
    return lower_to_lospn(module)


def dag_ops(module):
    body = [op for op in module.walk() if op.op_name == "lo_spn.body"][0]
    return [op for op in body.body.ops if op.op_name != "lo_spn.yield"]


class TestPartitionerCore:
    def test_single_partition_for_small_graphs(self, gaussian_spn):
        module = lowered_module(gaussian_spn)
        ops = dag_ops(module)
        partitioner = GraphPartitioner(ops, PartitioningOptions(max_partition_size=100))
        assignment = partitioner.run()
        assert partitioner.num_partitions == 1
        assert set(assignment.values()) == {0}

    def test_partition_sizes_respect_capacity(self, gaussian_spn):
        module = lowered_module(gaussian_spn)
        ops = dag_ops(module)
        options = PartitioningOptions(max_partition_size=3, balance_slack=0.01)
        partitioner = GraphPartitioner(ops, options)
        partitioner.run()
        assert all(size <= partitioner.capacity for size in partitioner.sizes)
        assert sum(partitioner.sizes) == len(ops)

    def test_edges_only_go_forward(self, gaussian_spn):
        """The acyclicity invariant: no edge from a later to an earlier
        partition (producers' partitions <= consumers' partitions)."""
        module = lowered_module(gaussian_spn)
        ops = dag_ops(module)
        partitioner = GraphPartitioner(ops, PartitioningOptions(max_partition_size=3))
        assignment = partitioner.run()
        for op in ops:
            for operand in op.operands:
                producer = operand.defining_op
                if producer is not None and id(producer) in assignment:
                    assert assignment[id(producer)] <= assignment[id(op)]

    def test_child_first_ordering_groups_subtrees(self, gaussian_spn):
        module = lowered_module(gaussian_spn)
        ops = dag_ops(module)
        partitioner = GraphPartitioner(ops, PartitioningOptions(max_partition_size=4))
        order = partitioner._child_first_ordering()
        positions = {id(op): i for i, op in enumerate(order)}
        for op in ops:
            for operand in op.operands:
                producer = operand.defining_op
                if producer is not None and id(producer) in positions:
                    assert positions[id(producer)] < positions[id(op)]

    def test_refinement_never_increases_cost(self, rng):
        data = rng.normal(size=(300, 6))
        spn = learn_spn(data)
        module = lowered_module(spn)
        ops = dag_ops(module)
        options = PartitioningOptions(max_partition_size=10, refinement_rounds=3)
        partitioner = GraphPartitioner(ops, options)
        partitioner.run()
        assert partitioner.stats.final_cut_cost <= partitioner.stats.initial_cut_cost

    def test_constants_do_not_count_toward_cut(self, gaussian_spn):
        module = lowered_module(gaussian_spn)
        ops = dag_ops(module)
        partitioner = GraphPartitioner(ops, PartitioningOptions(max_partition_size=2))
        partitioner.run()
        for op in ops:
            if op.op_name == "lo_spn.constant":
                assert partitioner._value_cost(op) == 0

    def test_cost_model_store_once_load_once(self):
        """A value used by two later partitions costs 1 store + 2 loads."""
        spn = make_gaussian_spn()
        module = lowered_module(spn)
        ops = dag_ops(module)
        partitioner = GraphPartitioner(ops, PartitioningOptions(max_partition_size=3))
        partitioner.run()
        for op in ops:
            cost = partitioner._value_cost(op)
            if cost:
                part = partitioner.assignment[id(op)]
                consumers = {
                    partitioner.assignment[id(use.owner)]
                    for res in op.results
                    for use in res.uses
                    if id(use.owner) in partitioner.assignment
                } - {part}
                assert cost == 1 + len(consumers)


class TestKernelRewriting:
    def test_module_verifies_after_partitioning(self, gaussian_spn):
        module = lowered_module(gaussian_spn)
        new_module, stats = partition_kernel(
            module, PartitioningOptions(max_partition_size=3)
        )
        verify(new_module)
        assert stats.num_partitions > 1

    def test_task_count_matches_partitions(self, gaussian_spn):
        module = lowered_module(gaussian_spn)
        new_module, stats = partition_kernel(
            module, PartitioningOptions(max_partition_size=3)
        )
        kernel = [op for op in new_module.walk() if op.op_name == "lo_spn.kernel"][0]
        assert len(kernel.tasks()) == stats.num_partitions

    def test_small_graph_copied_unchanged(self, gaussian_spn):
        module = lowered_module(gaussian_spn)
        new_module, stats = partition_kernel(
            module, PartitioningOptions(max_partition_size=1000)
        )
        kernel = [op for op in new_module.walk() if op.op_name == "lo_spn.kernel"][0]
        assert len(kernel.tasks()) == 1

    def test_final_task_produces_single_row(self, gaussian_spn):
        module = lowered_module(gaussian_spn)
        new_module, _ = partition_kernel(
            module, PartitioningOptions(max_partition_size=3)
        )
        kernel = [op for op in new_module.walk() if op.op_name == "lo_spn.kernel"][0]
        ret = kernel.body.terminator
        assert ret.operands[0].type.shape[0] == 1

    def test_intermediate_tensors_connect_tasks(self, gaussian_spn):
        module = lowered_module(gaussian_spn)
        new_module, stats = partition_kernel(
            module, PartitioningOptions(max_partition_size=3)
        )
        kernel = [op for op in new_module.walk() if op.op_name == "lo_spn.kernel"][0]
        tasks = kernel.tasks()
        # At least one later task consumes an earlier task's result.
        consumed = any(
            operand.defining_op in tasks
            for task in tasks
            for operand in task.operands
        )
        assert consumed

    @pytest.mark.parametrize("max_size", [2, 3, 5, 7])
    def test_compiled_results_unchanged(self, gaussian_spn, gaussian_inputs, max_size):
        ref = log_likelihood(gaussian_spn, gaussian_inputs.astype(np.float64))
        result = compile_spn(
            gaussian_spn,
            JointProbability(batch_size=16),
            CompilerOptions(max_partition_size=max_size, verify_each_stage=True),
        )
        out = result.executable(gaussian_inputs)
        np.testing.assert_allclose(out, ref, rtol=2e-4, atol=1e-6)

    def test_partitioned_learned_spn(self, rng):
        data = rng.normal(size=(400, 5))
        spn = learn_spn(data)
        x = rng.normal(size=(65, 5)).astype(np.float32)
        ref = log_likelihood(spn, x.astype(np.float64))
        result = compile_spn(
            spn,
            JointProbability(batch_size=16),
            CompilerOptions(max_partition_size=20, verify_each_stage=True),
        )
        np.testing.assert_allclose(result.executable(x), ref, rtol=1e-3, atol=1e-5)
        assert result.num_tasks > 1

    def test_partitioning_with_marginal(self, gaussian_spn, rng):
        x = rng.normal(size=(40, 2))
        x[::4, 0] = np.nan
        ref = log_likelihood(gaussian_spn, x)
        result = compile_spn(
            gaussian_spn,
            JointProbability(batch_size=16, support_marginal=True),
            CompilerOptions(max_partition_size=3),
        )
        np.testing.assert_allclose(
            result.executable(x.astype(np.float32)), ref, rtol=1e-3, atol=1e-5
        )


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 12), st.integers(0, 1000))
def test_property_partitioning_preserves_semantics(max_size, seed):
    """Random partition sizes never change compiled results."""
    from ..conftest import make_gaussian_spn as factory

    spn = factory()
    rng = np.random.default_rng(seed)
    x = rng.normal(0, 1.5, size=(23, 2)).astype(np.float32)
    ref = log_likelihood(spn, x.astype(np.float64))
    result = compile_spn(
        spn,
        JointProbability(batch_size=8),
        CompilerOptions(max_partition_size=max_size),
    )
    np.testing.assert_allclose(result.executable(x), ref, rtol=2e-4, atol=1e-6)
