"""Tests for the SPN → HiSPN frontend translation."""

import pytest

from repro.compiler.frontend import build_hispn_module, parse_binary_query
from repro.compiler.hispn_passes import simplify_hispn
from repro.dialects import hispn
from repro.ir import Builder, verify
from repro.spn import Gaussian, JointProbability, Product, Sum, serialize

from ..conftest import make_discrete_spn, make_gaussian_spn, make_shared_spn


def ops_named(module, name):
    return [op for op in module.walk() if op.op_name == name]


class TestTranslation:
    def test_module_verifies(self, gaussian_spn, query):
        module = build_hispn_module(gaussian_spn, query)
        verify(module)

    def test_op_counts_match_spn(self, gaussian_spn, query):
        module = build_hispn_module(gaussian_spn, query)
        assert len(ops_named(module, "hi_spn.gaussian")) == 4
        assert len(ops_named(module, "hi_spn.product")) == 2
        assert len(ops_named(module, "hi_spn.sum")) == 1
        assert len(ops_named(module, "hi_spn.root")) == 1

    def test_query_attributes_forwarded(self, gaussian_spn):
        query = JointProbability(batch_size=99, input_dtype="f64", support_marginal=True)
        module = build_hispn_module(gaussian_spn, query)
        qop = ops_named(module, "hi_spn.joint_query")[0]
        assert qop.attributes["batchSize"] == 99
        assert qop.attributes["supportMarginal"] is True
        from repro.ir import f64

        assert qop.attributes["inputType"] == f64

    def test_weights_forwarded(self, gaussian_spn, query):
        module = build_hispn_module(gaussian_spn, query)
        sum_op = ops_named(module, "hi_spn.sum")[0]
        assert sum_op.weights == (0.3, 0.7)

    def test_shared_nodes_translate_once(self, shared_spn, query):
        module = build_hispn_module(shared_spn, query)
        # 3 distinct Gaussians in the SPN (one shared) -> 3 ops, not 4.
        assert len(ops_named(module, "hi_spn.gaussian")) == 3

    def test_discrete_leaves(self, discrete_spn, query):
        module = build_hispn_module(discrete_spn, query)
        assert len(ops_named(module, "hi_spn.categorical")) == 2
        assert len(ops_named(module, "hi_spn.histogram")) == 2
        hist = ops_named(module, "hi_spn.histogram")[0]
        assert hist.attributes["bucketCount"] == 4

    def test_leaves_use_feature_arguments(self, gaussian_spn, query):
        module = build_hispn_module(gaussian_spn, query)
        graph = ops_named(module, "hi_spn.graph")[0]
        for leaf in ops_named(module, "hi_spn.gaussian"):
            assert leaf.operands[0] in graph.body.arguments

    def test_binary_entry_point(self, gaussian_spn, query):
        payload = serialize(gaussian_spn, query)
        module = parse_binary_query(payload)
        verify(module)
        assert len(ops_named(module, "hi_spn.gaussian")) == 4


class TestHiSPNSimplify:
    def _module_with_graph(self):
        from repro.ir import ModuleOp, f32

        module = ModuleOp.build()
        b = Builder.at_end(module.body)
        q = b.create(
            hispn.JointQueryOp, num_features=2, input_type=f32, batch_size=4
        )
        graph = Builder.at_end(q.body_block).create(hispn.GraphOp, 2, f32)
        return module, graph, Builder.at_end(graph.body)

    def test_single_operand_product_removed(self):
        module, graph, gb = self._module_with_graph()
        leaf = gb.create(hispn.GaussianOp, graph.body.arguments[0], 0.0, 1.0)
        wrap = gb.create(hispn.ProductOp, [leaf.result])
        leaf2 = gb.create(hispn.GaussianOp, graph.body.arguments[1], 0.0, 1.0)
        top = gb.create(hispn.ProductOp, [wrap.result, leaf2.result])
        gb.create(hispn.RootOp, top.result)
        simplify_hispn(module)
        verify(module)
        products = [op for op in module.walk() if op.op_name == "hi_spn.product"]
        assert len(products) == 1
        assert len(products[0].operands) == 2

    def test_single_operand_sum_removed(self):
        module, graph, gb = self._module_with_graph()
        leaf = gb.create(hispn.GaussianOp, graph.body.arguments[0], 0.0, 1.0)
        wrap = gb.create(hispn.SumOp, [leaf.result], [1.0])
        leaf2 = gb.create(hispn.GaussianOp, graph.body.arguments[1], 0.0, 1.0)
        top = gb.create(hispn.ProductOp, [wrap.result, leaf2.result])
        gb.create(hispn.RootOp, top.result)
        simplify_hispn(module)
        assert not [op for op in module.walk() if op.op_name == "hi_spn.sum"]

    def test_nested_products_flattened(self):
        module, graph, gb = self._module_with_graph()
        a = gb.create(hispn.GaussianOp, graph.body.arguments[0], 0.0, 1.0)
        b_leaf = gb.create(hispn.GaussianOp, graph.body.arguments[1], 0.0, 1.0)
        c = gb.create(hispn.GaussianOp, graph.body.arguments[1], 2.0, 1.0)
        inner = gb.create(hispn.ProductOp, [a.result, b_leaf.result])
        # Note: this inner/outer nesting is scope-invalid as an SPN, but
        # the pattern only rewrites dataflow; use distinct scopes.
        outer = gb.create(hispn.ProductOp, [inner.result, c.result])
        gb.create(hispn.RootOp, outer.result)
        simplify_hispn(module)
        products = [op for op in module.walk() if op.op_name == "hi_spn.product"]
        assert len(products) == 1
        assert len(products[0].operands) == 3

    def test_shared_inner_product_not_flattened(self):
        module, graph, gb = self._module_with_graph()
        a = gb.create(hispn.GaussianOp, graph.body.arguments[0], 0.0, 1.0)
        inner = gb.create(hispn.ProductOp, [a.result])
        # inner has two users: flattening must not duplicate it.
        s = gb.create(hispn.SumOp, [inner.result, inner.result], [0.5, 0.5])
        gb.create(hispn.RootOp, s.result)
        simplify_hispn(module)
        verify(module)

    def test_real_translation_unchanged_by_simplify(self, gaussian_spn, query):
        import numpy as np

        from repro.compiler import CompilerOptions, compile_spn
        from repro.spn import log_likelihood

        x = np.random.default_rng(1).normal(size=(33, 2)).astype(np.float32)
        ref = log_likelihood(gaussian_spn, x.astype(np.float64))
        for opt in (0, 1):  # simplify runs only at opt >= 1
            res = compile_spn(gaussian_spn, query, CompilerOptions(opt_level=opt))
            np.testing.assert_allclose(
                res.executable(x), ref, rtol=2e-4, atol=1e-6
            )
