"""Tests for the structure-level optimization suite (architecture §17)."""

import math

import numpy as np
import pytest

from repro.compiler.frontend import build_hispn_module
from repro.compiler.pipeline import CompilerOptions, OptionsError, compile_spn
from repro.compiler.structure import (
    CanonicalIndex,
    compress_graph,
    cse_module,
    each_graph,
    factor_layer,
    find_dense_layers,
    graph_ops,
    module_to_spn,
    path_multiplicities,
    per_sum_budget,
    prune_graph,
    prune_module,
    structure_stats,
    sum_perturbation_bound,
    value_log_ranges,
)
from repro.ir import verify
from repro.spn import (
    Categorical,
    Gaussian,
    JointProbability,
    Product,
    Sum,
    deserialize,
    serialize,
)
from repro.spn.inference import log_likelihood
from repro.spn.nodes import num_nodes, structurally_equal

from ..conftest import make_gaussian_spn


def _module(spn, batch_size=8):
    return build_hispn_module(spn, JointProbability(batch_size=batch_size))


def _graph(module):
    return next(each_graph(module))


def _duplicated_spn():
    """Two structurally identical mixture components, built separately."""

    def component():
        return Product([Gaussian(0, 0.0, 1.0), Gaussian(1, 1.0, 2.0)])

    return Sum([component(), component()], [0.5, 0.5])


class TestCanonicalIndex:
    def test_duplicate_subtrees_share_class(self):
        module = _module(_duplicated_spn())
        graph = _graph(module)
        index = CanonicalIndex(graph)
        products = [
            op for op in graph_ops(graph) if op.op_name == "hi_spn.product"
        ]
        assert len(products) == 2
        assert index.class_id(products[0].results[0]) == index.class_id(
            products[1].results[0]
        )

    def test_product_is_commutative(self):
        a, b = Gaussian(0, 0.0, 1.0), Gaussian(1, 0.0, 1.0)
        spn = Sum([Product([a, b]), Product([b, a])], [0.5, 0.5])
        graph = _graph(_module(spn))
        index = CanonicalIndex(graph)
        products = [
            op for op in graph_ops(graph) if op.op_name == "hi_spn.product"
        ]
        classes = {index.class_id(op.results[0]) for op in products}
        assert len(classes) == 1

    def test_sum_pairs_sorted_jointly(self):
        a, b = Gaussian(0, 0.0, 1.0), Gaussian(0, 2.0, 1.0)
        left = Sum([a, b], [0.3, 0.7])
        right = Sum([b, a], [0.7, 0.3])  # same mixture, children reordered
        spn = Product([left, right])
        graph = _graph(_module(spn))
        index = CanonicalIndex(graph)
        sums = [op for op in graph_ops(graph) if op.op_name == "hi_spn.sum"]
        classes = {index.class_id(op.results[0]) for op in sums}
        assert len(classes) == 1

    def test_different_weights_differ(self):
        a, b = Gaussian(0, 0.0, 1.0), Gaussian(0, 2.0, 1.0)
        spn = Product([Sum([a, b], [0.3, 0.7]), Sum([a, b], [0.4, 0.6])])
        graph = _graph(_module(spn))
        index = CanonicalIndex(graph)
        sums = [op for op in graph_ops(graph) if op.op_name == "hi_spn.sum"]
        classes = {index.class_id(op.results[0]) for op in sums}
        assert len(classes) == 2


class TestCSE:
    def test_merges_duplicates_and_preserves_semantics(self, rng):
        spn = _duplicated_spn()
        module = _module(spn)
        before = len(graph_ops(_graph(module)))
        assert cse_module(module)
        verify(module)
        after = len(graph_ops(_graph(module)))
        assert after < before
        # One product and two leaves survive (plus the root sum).
        assert after == 4
        x = rng.normal(0.0, 1.0, size=(16, 2))
        merged = log_likelihood(module_to_spn(module)[0], x)
        np.testing.assert_allclose(merged, log_likelihood(spn, x))

    def test_compiled_cse_is_bit_exact(self, rng):
        spn = _duplicated_spn()
        x = rng.normal(0.0, 1.0, size=(16, 2)).astype(np.float32)
        query = JointProbability(batch_size=16)
        plain = compile_spn(spn, query, CompilerOptions(opt_level=1))
        opt = compile_spn(
            spn, query, CompilerOptions(opt_level=1, structure_opt="cse")
        )
        with plain.executable as p, opt.executable as o:
            np.testing.assert_array_equal(p(x), o(x))


class TestRanges:
    def test_leaf_and_sum_ranges(self):
        spn = Sum(
            [Gaussian(0, 0.0, 1.0), Categorical(0, [0.5, 0.5, 0.0])],
            [0.5, 0.5],
        )
        graph = _graph(_module(spn))
        ranges = value_log_ranges(graph)
        ops = {op.op_name: op for op in graph_ops(graph)}
        g_lo, g_hi = ranges[id(ops["hi_spn.gaussian"].results[0])]
        assert g_hi == pytest.approx(-0.5 * math.log(2.0 * math.pi))
        assert g_lo == pytest.approx(g_hi - 18.0)
        # The categorical has a zero bucket: true-support lower bound.
        c_lo, c_hi = ranges[id(ops["hi_spn.categorical"].results[0])]
        assert c_lo == -math.inf
        assert c_hi == pytest.approx(math.log(0.5))
        s_lo, s_hi = ranges[id(ops["hi_spn.sum"].results[0])]
        # Sum lower bound: weighted children can still reach the
        # Gaussian floor even when the categorical side is zero.
        assert s_lo == pytest.approx(math.log(0.5) + g_lo)
        assert s_hi == pytest.approx(
            math.log(0.5 * math.exp(g_hi) + 0.25)
        )

    def test_path_multiplicities_count_shared_uses(self):
        shared = Sum(
            [Gaussian(0, 0.0, 1.0), Gaussian(0, 2.0, 1.0)], [0.5, 0.5]
        )
        spn = Product([shared, shared])
        graph = _graph(_module(spn))
        mults = path_multiplicities(graph)
        sums = [op for op in graph_ops(graph) if op.op_name == "hi_spn.sum"]
        assert len(sums) == 1  # frontend keeps the DAG shared
        assert mults[id(sums[0])] == 2
        # The shared sum counts twice, so its budget share halves.
        assert per_sum_budget(graph, 0.1) == pytest.approx(0.05)

    def test_perturbation_bound_edges(self):
        assert sum_perturbation_bound(0.0, -math.inf, 0.0) == 0.0
        assert sum_perturbation_bound(0.5, 0.0, -math.inf) == math.inf
        assert sum_perturbation_bound(1.0, 0.0, 0.0) == math.inf
        small = sum_perturbation_bound(1e-6, math.log(1e-6), 0.0)
        assert 0.0 < small < 1e-5


class TestPrune:
    def test_zero_weights_always_dropped(self):
        spn = Sum(
            [Gaussian(0, 0.0, 1.0), Gaussian(0, 2.0, 1.0)], [1.0, 0.0]
        )
        graph = _graph(_module(spn))
        assert prune_graph(graph, accuracy_budget=0.0)
        # The zero-weight edge is gone; the single-operand shell folds,
        # leaving just the surviving Gaussian.
        assert [op.op_name for op in graph_ops(graph)] == ["hi_spn.gaussian"]

    def test_tiny_weight_dropped_within_budget(self):
        spn = Sum(
            [Gaussian(0, 0.0, 1.0), Gaussian(0, 2.0, 1.0)],
            [1.0 - 1e-12, 1e-12],
        )
        graph = _graph(_module(spn))
        assert prune_graph(graph, accuracy_budget=0.05)
        assert [op.op_name for op in graph_ops(graph)] == ["hi_spn.gaussian"]

    def test_support_loss_is_blocked(self):
        # The tiny component is the *only* cover of category 1: the
        # kept child's guaranteed value is zero, so no budget justifies
        # dropping it (pointwise log error would be -inf).
        spn = Sum(
            [Categorical(0, [1.0, 0.0]), Categorical(0, [0.0, 1.0])],
            [1.0 - 1e-12, 1e-12],
        )
        graph = _graph(_module(spn))
        assert not prune_graph(graph, accuracy_budget=10.0)

    def test_mass_above_budget_kept(self):
        spn = Sum(
            [Gaussian(0, 0.0, 1.0), Gaussian(0, 2.0, 1.0)], [0.6, 0.4]
        )
        graph = _graph(_module(spn))
        assert not prune_graph(graph, accuracy_budget=0.01)
        sums = [op for op in graph_ops(graph) if op.op_name == "hi_spn.sum"]
        assert len(sums) == 1 and len(sums[0].operands) == 2

    def test_renormalized_and_within_budget(self, rng):
        budget = 0.05
        spn = Sum(
            [Gaussian(0, 0.0, 1.0), Gaussian(0, 1.0, 1.0), Gaussian(0, 2.0, 1.0)],
            [0.7, 0.3 - 1e-13, 1e-13],
        )
        module = _module(spn)
        assert prune_module(module, budget)
        pruned = module_to_spn(module)[0]
        assert isinstance(pruned, Sum)
        assert sum(pruned.weights) == pytest.approx(1.0)
        x = rng.normal(0.5, 1.5, size=(64, 1))
        gap = np.abs(
            log_likelihood(pruned, x) - log_likelihood(spn, x)
        ).max()
        assert gap <= budget


class TestLowRank:
    def _layered_spn(self, weights):
        children = [Gaussian(0, float(i), 1.0) for i in range(weights.shape[1])]
        rows = [Sum(children, list(map(float, row))) for row in weights]
        return Sum(rows, [1.0 / len(rows)] * len(rows))

    def test_factor_layer_recovers_rank_one(self):
        outer = np.array([[0.6], [0.3], [0.1], [0.9]])
        inner = np.array([[0.2, 0.3, 0.1, 0.25, 0.15]])
        weights = outer @ inner
        weights /= weights.sum(axis=1, keepdims=True)
        a, b = factor_layer(weights, tolerance=1e-6)
        assert a.shape == (4, 1) and b.shape == (1, 5)
        np.testing.assert_allclose(a @ b, weights, atol=1e-6)
        np.testing.assert_allclose((a @ b).sum(axis=1), 1.0)

    def test_factor_layer_refuses_without_savings(self):
        # 2x2 layer: any rank r >= 1 has r*(2+2) >= 4 = N*K edges.
        weights = np.array([[0.5, 0.5], [0.4, 0.6]])
        assert factor_layer(weights, tolerance=1.0) is None

    def test_compress_graph_rewrites_dense_layer(self, rng):
        outer = np.array([[0.6], [0.3], [0.1], [0.9]])
        inner = np.array([[0.2, 0.3, 0.1, 0.25, 0.15]])
        weights = outer @ inner
        weights /= weights.sum(axis=1, keepdims=True)
        spn = self._layered_spn(weights)
        module = _module(spn)
        graph = _graph(module)
        assert len(find_dense_layers(graph)) == 1
        budget = 0.05
        assert compress_graph(graph, budget) == 1
        verify(module)
        # 4 sums x 5 children -> 1 inner + 4 outer single-child rows.
        compressed = module_to_spn(module)[0]
        x = rng.normal(1.0, 2.0, size=(64, 1))
        gap = np.abs(
            log_likelihood(compressed, x) - log_likelihood(spn, x)
        ).max()
        assert gap <= budget

    def test_full_rank_layer_untouched(self):
        weights = np.eye(4) * 0.97 + 0.01
        spn = self._layered_spn(weights)
        graph = _graph(_module(spn))
        assert compress_graph(graph, 0.01) == 0


class TestOptions:
    def test_default_ladder(self):
        assert CompilerOptions(opt_level=2).structure_passes() == ()
        assert CompilerOptions(opt_level=3).structure_passes() == (
            "cse",
            "prune",
        )

    def test_explicit_spellings(self):
        options = CompilerOptions(
            structure_opt="prune,cse", accuracy_budget=0.01
        )
        assert options.structure_passes() == ("prune", "cse")
        assert CompilerOptions(
            opt_level=3, structure_opt="none"
        ).structure_passes() == ()

    def test_unknown_pass_rejected(self):
        with pytest.raises(OptionsError):
            CompilerOptions(structure_opt="cse,typo")

    def test_compress_requires_budget(self):
        with pytest.raises(OptionsError):
            CompilerOptions(structure_opt="compress")
        options = CompilerOptions(
            structure_opt="compress", accuracy_budget=0.01
        )
        assert options.structure_passes() == ("compress",)

    def test_budget_split_across_lossy_passes(self):
        options = CompilerOptions(
            structure_opt="cse,prune,compress", accuracy_budget=0.04
        )
        assert options.structure_budget_share() == pytest.approx(0.02)

    def test_negative_budget_rejected(self):
        with pytest.raises(OptionsError):
            CompilerOptions(accuracy_budget=-0.5)

    def test_fingerprint_tracks_structure_options(self):
        base = CompilerOptions(opt_level=2)
        with_cse = CompilerOptions(opt_level=2, structure_opt="cse")
        budgeted = CompilerOptions(
            opt_level=2, structure_opt="prune", accuracy_budget=0.01
        )
        prints = {
            base.cache_fingerprint(),
            with_cse.cache_fingerprint(),
            budgeted.cache_fingerprint(),
        }
        assert len(prints) == 3


class TestStats:
    def test_duplicates_reported(self):
        stats = structure_stats(_module(_duplicated_spn()))
        assert stats["total_ops"] == 7
        assert stats["duplicate_ops"] == 3  # one product + two leaves
        graph = stats["graphs"][0]
        assert graph["ops_by_kind"]["hi_spn.sum"] == 1
        assert graph["sum_depth"] == 1

    def test_weight_histogram_buckets(self):
        spn = Sum(
            [Gaussian(0, 0.0, 1.0), Gaussian(0, 1.0, 1.0), Gaussian(0, 2.0, 1.0)],
            [0.0, 1e-7, 1.0 - 1e-7],
        )
        graph = structure_stats(_module(spn))["graphs"][0]
        histogram = graph["weight_histogram"]
        assert histogram["zero"] == 1
        assert histogram["[1e-08, 1e-06)"] == 1
        assert histogram["[0.1, 1)"] == 1


class TestSerializationRoundTrip:
    def _roundtrip(self, root):
        query = JointProbability(batch_size=8)
        payload = serialize(root, query)
        restored, _ = deserialize(payload)
        return restored

    def test_cse_shared_subtrees_survive(self, rng):
        module = _module(_duplicated_spn())
        cse_module(module)
        optimized = module_to_spn(module)[0]
        restored = self._roundtrip(optimized)
        assert structurally_equal(restored, optimized)
        # Sharing is preserved: the merged product is one node, not two.
        assert num_nodes(restored) == num_nodes(optimized) == 4
        x = rng.normal(0.0, 1.0, size=(16, 2))
        np.testing.assert_array_equal(
            log_likelihood(restored, x), log_likelihood(optimized, x)
        )

    def test_factored_layer_survives(self, rng):
        outer = np.array([[0.6], [0.3], [0.1], [0.9]])
        inner = np.array([[0.2, 0.3, 0.1, 0.25, 0.15]])
        weights = outer @ inner
        weights /= weights.sum(axis=1, keepdims=True)
        children = [Gaussian(0, float(i), 1.0) for i in range(5)]
        rows = [Sum(children, list(map(float, row))) for row in weights]
        spn = Sum(rows, [0.25] * 4)
        module = _module(spn)
        assert compress_graph(_graph(module), 0.05) == 1
        optimized = module_to_spn(module)[0]
        restored = self._roundtrip(optimized)
        assert structurally_equal(restored, optimized)
        assert num_nodes(restored) == num_nodes(optimized)
        x = rng.normal(1.0, 2.0, size=(16, 1))
        np.testing.assert_array_equal(
            log_likelihood(restored, x), log_likelihood(optimized, x)
        )

    def test_pruned_model_roundtrip(self, rng):
        spn = Sum(
            [Gaussian(0, 0.0, 1.0), Gaussian(0, 2.0, 1.0)],
            [1.0 - 1e-12, 1e-12],
        )
        module = _module(spn)
        prune_module(module, 0.05)
        optimized = module_to_spn(module)[0]
        restored = self._roundtrip(optimized)
        assert structurally_equal(restored, optimized)


class TestEndToEnd:
    def test_full_suite_within_budget(self, rng):
        budget = 0.05
        spn = make_gaussian_spn()
        x = rng.normal(0.5, 1.0, size=(32, 2)).astype(np.float32)
        query = JointProbability(batch_size=32)
        reference = compile_spn(spn, query, CompilerOptions(opt_level=1))
        optimized = compile_spn(
            spn,
            query,
            CompilerOptions(
                opt_level=1,
                structure_opt="cse,prune,compress",
                accuracy_budget=budget,
            ),
        )
        with reference.executable as r, optimized.executable as o:
            gap = np.abs(np.asarray(r(x)) - np.asarray(o(x))).max()
        assert gap <= budget

    def test_opt3_runs_structure_passes(self):
        result = compile_spn(
            _duplicated_spn(),
            JointProbability(batch_size=8),
            CompilerOptions(opt_level=3),
        )
        names = [record.name for record in result.timings.records]
        assert "structure-cse" in names and "structure-prune" in names

    def test_per_pass_op_deltas_recorded(self):
        result = compile_spn(
            _duplicated_spn(),
            JointProbability(batch_size=8),
            CompilerOptions(opt_level=1, structure_opt="cse"),
        )
        record = next(
            r for r in result.timings.records if r.name == "structure-cse"
        )
        assert record.ops_after < record.ops_before
