"""Tests for chain balancing, pipeline specs and DOT export."""

import numpy as np
import pytest

from repro.compiler import CompilerOptions, compile_spn
from repro.compiler.balance import balance_chains, max_chain_depth
from repro.compiler.frontend import build_hispn_module
from repro.compiler.lower_to_lospn import lower_to_lospn
from repro.ir import verify
from repro.ir.pipeline_spec import parse_pipeline, register_pass, registered_passes
from repro.spn import Gaussian, JointProbability, Product, Sum, log_likelihood
from repro.spn.visualize import to_dot, write_dot

from ..conftest import make_gaussian_spn


def wide_product(width=16):
    return Product([Gaussian(i, float(i), 1.0) for i in range(width)])


def wide_sum(width=16):
    return Sum(
        [Gaussian(0, float(i), 1.0) for i in range(width)],
        [1.0 / width] * width,
    )


class TestBalanceChains:
    def _lowered(self, spn):
        return lower_to_lospn(
            build_hispn_module(spn, JointProbability(batch_size=8))
        )

    def test_product_chain_depth_reduced(self):
        module = self._lowered(wide_product(16))
        before = max_chain_depth(module)
        assert before == 15  # left-leaning binarized chain
        assert balance_chains(module) == 1
        verify(module)
        after = max_chain_depth(module)
        assert after == 4  # ceil(log2(16))

    def test_sum_chain_depth_reduced(self):
        module = self._lowered(wide_sum(16))
        before = max_chain_depth(module)
        balance_chains(module)
        verify(module)
        assert max_chain_depth(module) < before

    def test_short_chains_untouched(self):
        module = self._lowered(make_gaussian_spn())
        assert balance_chains(module, min_chain=4) == 0

    def test_semantics_preserved_within_tolerance(self, rng):
        spn = wide_product(12)
        x = rng.normal(size=(40, 12)).astype(np.float32)
        ref = log_likelihood(spn, x.astype(np.float64))

        module = self._lowered(spn)
        balance_chains(module)
        verify(module)
        from repro.compiler.bufferization import (
            bufferize,
            insert_deallocations,
            remove_result_copies,
        )
        from repro.compiler.cpu.lowering import lower_kernel_to_cpu
        from repro.backends.cpu.codegen import generate_cpu_module

        module = bufferize(module)
        remove_result_copies(module)
        insert_deallocations(module)
        generated = generate_cpu_module(lower_kernel_to_cpu(module))
        out = np.empty((1, 40), dtype=np.float32)
        with np.errstate(all="ignore"):
            generated.get("spn_kernel")(x, out)
        np.testing.assert_allclose(out[0], ref, rtol=2e-3, atol=1e-5)

    def test_o3_pipeline_runs_balancing(self, rng):
        spn = wide_sum(10)
        x = rng.normal(size=(20, 1)).astype(np.float32)
        ref = log_likelihood(spn, x.astype(np.float64))
        result = compile_spn(
            spn, JointProbability(batch_size=8), CompilerOptions(opt_level=3)
        )
        assert "balance-chains" in result.stage_seconds
        np.testing.assert_allclose(result.executable(x), ref, rtol=2e-3, atol=1e-5)

    def test_multi_use_values_are_chain_boundaries(self, rng):
        """An interior value with a second user splits the chain, and the
        rewrite stays semantics-preserving."""
        from repro.dialects import lospn
        from repro.ir import Builder

        spn = wide_product(8)
        module = self._lowered(spn)
        body = [op for op in module.walk() if op.op_name == "lo_spn.body"][0]
        muls = [op for op in body.body_block.ops if op.op_name == "lo_spn.mul"]
        interior = muls[3]
        # Second user: square the interior value and yield that instead
        # (prob^2 in log space = doubled log value).
        term = body.body_block.terminator
        builder = Builder.before_op(term)
        extra = builder.create(
            lospn.MulOp, interior.results[0], interior.results[0]
        )
        term.set_operand(0, extra.result)
        chains = balance_chains(module)
        verify(module)
        assert chains >= 1

        # Execute and compare against the expected squared sub-product.
        from repro.backends.cpu.codegen import generate_cpu_module
        from repro.compiler.bufferization import bufferize, remove_result_copies
        from repro.compiler.cpu.lowering import lower_kernel_to_cpu

        buffered = bufferize(module)
        remove_result_copies(buffered)
        generated = generate_cpu_module(lower_kernel_to_cpu(buffered))
        x = rng.normal(size=(6, 8)).astype(np.float32)
        out = np.empty((1, 6), dtype=np.float32)
        with np.errstate(all="ignore"):
            generated.get("spn_kernel")(x, out)
        # interior == product of the first 5 leaves (left-leaning chain).
        partial = Product([Gaussian(i, float(i), 1.0) for i in range(5)])
        expected = 2.0 * log_likelihood(partial, x.astype(np.float64)[:, :5])
        np.testing.assert_allclose(out[0], expected, rtol=2e-3, atol=1e-4)


class TestPipelineSpec:
    def test_parse_and_run(self, gaussian_spn, query):
        module = lower_to_lospn(build_hispn_module(gaussian_spn, query))
        manager = parse_pipeline("cse,dce")
        timing = manager.run(module)
        assert set(timing.seconds) == {"cse", "dce"}

    def test_builtin_passes_registered(self):
        names = registered_passes()
        for expected in ("canonicalize", "cse", "dce", "licm", "hispn-simplify"):
            assert expected in names

    def test_unknown_pass_rejected(self):
        with pytest.raises(ValueError):
            parse_pipeline("canonicalize,frobnicate")

    def test_duplicate_registration_rejected(self):
        from repro.ir.transforms.cse import CSEPass

        with pytest.raises(ValueError):
            register_pass("cse", CSEPass)

    def test_whitespace_and_empty_segments_tolerated(self):
        manager = parse_pipeline(" cse , , dce ")
        assert len(manager.passes) == 2


class TestVisualize:
    def test_dot_structure(self, gaussian_spn):
        dot = to_dot(gaussian_spn)
        assert dot.startswith("digraph spn {")
        assert dot.count('label="+"') == 1
        assert dot.count("&times;") == 2
        assert dot.count("N(x") == 4
        assert 'label="0.3"' in dot and 'label="0.7"' in dot

    def test_discrete_labels(self):
        from ..conftest import make_discrete_spn

        dot = to_dot(make_discrete_spn())
        assert "Cat(x0" in dot
        assert "Hist(x1" in dot

    def test_truncation(self):
        spn = wide_product(30)
        dot = to_dot(spn, max_nodes=10)
        assert "trunc" in dot
        assert dot.count("[shape=box") <= 10

    def test_write_dot(self, tmp_path, gaussian_spn):
        path = str(tmp_path / "spn.dot")
        write_dot(gaussian_spn, path)
        with open(path) as handle:
            assert "digraph" in handle.read()
