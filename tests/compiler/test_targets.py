"""Target registry, declarative pipelines, goldens and the stage-name freeze."""

import os

import numpy as np
import pytest

from repro.compiler import (
    STAGE_NAMES,
    CompilerOptions,
    build_compile_pipeline,
    compile_spn,
    get_target,
    registered_targets,
)
from repro.compiler.stages import CPULoweringPass, FrontendPass
from repro.compiler.targets import CLEANUP_LADDER, cleanup_passes, common_pipeline
from repro.diagnostics import OptionsError
from repro.ir.pipeline_spec import build_pipeline, pipeline_string
from repro.runtime import CPUExecutable, Executable
from repro.runtime.gpu_executable import GPUExecutable
from repro.spn.query import JointProbability
from repro.tools.cli import main

from ..conftest import make_gaussian_spn

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_pipelines.txt")

VECTORIZE_MODES = ("off", "lanes", "batch")

QUERY_MODALITIES = ("mpe", "sample", "conditional", "expectation")


def golden_lines():
    """The pipeline snapshot for every (target, opt, vectorize) combo,
    followed by every non-joint query modality at the default config."""
    lines = []
    for target_name in registered_targets():
        target = get_target(target_name)
        for opt_level in range(4):
            for vectorize in VECTORIZE_MODES:
                options = CompilerOptions(
                    target=target_name, opt_level=opt_level, vectorize=vectorize
                )
                lines.append(
                    f"{target_name} -O{opt_level} vectorize={vectorize}: "
                    f"{target.pipeline(options)}"
                )
    for target_name in registered_targets():
        target = get_target(target_name)
        for kind in QUERY_MODALITIES:
            options = CompilerOptions(
                target=target_name,
                query=kind,
                query_variables=(0,) if kind == "conditional" else (),
            )
            lines.append(
                f"{target_name} -O1 query={kind}: "
                f"{target.pipeline(options, options.make_query())}"
            )
    return lines


def read_golden():
    with open(GOLDEN_PATH) as handle:
        return handle.read().splitlines()


class TestGoldenPipelines:
    def test_snapshots_match_golden_file(self):
        # Regenerate with: PYTHONPATH=src python -m repro pipelines \
        #   > tests/compiler/golden_pipelines.txt
        assert golden_lines() == read_golden()

    def test_covers_full_matrix(self):
        targets = len(registered_targets())
        assert len(read_golden()) == targets * 4 * len(VECTORIZE_MODES) + (
            targets * len(QUERY_MODALITIES)
        )

    def test_every_spec_round_trips(self):
        for line in read_golden():
            spec = line.split(": ", 1)[1]
            passes = build_pipeline(spec)
            assert pipeline_string(passes) == spec

    def test_pipelines_cli_matches_golden(self, capsys):
        assert main(["pipelines"]) == 0
        assert capsys.readouterr().out.splitlines() == read_golden()

    def test_pipelines_cli_single_target(self, capsys):
        assert main(["pipelines", "--target", "gpu"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out == [line for line in read_golden() if line.startswith("gpu ")]

    def test_pipelines_cli_unknown_target(self, capsys):
        assert main(["pipelines", "--target", "tpu"]) == 2
        assert "unknown target" in capsys.readouterr().err


class TestStageNameFreeze:
    # The public timing vocabulary: benchmarks/ (Figs. 10-13) and the
    # EXPERIMENTS figures read CompilationResult.stage_seconds by these
    # names. Renaming a stage requires updating the benchmark readers
    # AND this tuple — that is the point of the test.
    FROZEN = (
        "frontend",
        "hispn-simplify",
        "structure-cse",
        "structure-prune",
        "structure-compress",
        "lower-to-lospn",
        "lospn-cse",
        "graph-partitioning",
        "balance-chains",
        "bufferize",
        "buffer-optimization",
        "buffer-deallocation",
        "cpu-lowering",
        "gpu-lowering",
        "gpu-copy-elimination",
        "canonicalize",
        "cse",
        "licm",
        "dce",
        "canonicalize-2",
        "cse-2",
        "canonicalize-3",
        "codegen",
        "gpu-codegen",
    )

    def test_stage_names_are_frozen(self):
        assert STAGE_NAMES == self.FROZEN

    def test_golden_pipelines_stay_inside_vocabulary(self):
        for line in read_golden():
            spec = line.split(": ", 1)[1]
            for pass_ in build_pipeline(spec):
                assert pass_.name in STAGE_NAMES, pass_.name

    def test_partitioned_pipeline_stays_inside_vocabulary(self):
        options = CompilerOptions(max_partition_size=4)
        _, spec = build_compile_pipeline(options)
        for pass_ in build_pipeline(spec):
            assert pass_.name in STAGE_NAMES, pass_.name

    def test_codegen_stages_in_vocabulary(self):
        for target_name in registered_targets():
            assert get_target(target_name).spec.codegen_stage in STAGE_NAMES

    def test_compile_emits_only_frozen_names(self):
        spn = make_gaussian_spn()
        for target in ("cpu", "gpu"):
            result = compile_spn(
                spn,
                JointProbability(batch_size=8),
                CompilerOptions(target=target, opt_level=3, max_partition_size=3),
            )
            assert set(result.stage_seconds) <= set(STAGE_NAMES)


class TestSharedOptLadder:
    def test_one_table_drives_both_legs(self):
        # The -O ladder lives in exactly one place; both legs derive
        # from it (the GPU leg just drops LICM).
        assert cleanup_passes(1) == ["canonicalize", "cse", "licm", "dce"]
        assert cleanup_passes(1, licm=False) == ["canonicalize", "cse", "dce"]
        assert cleanup_passes(3)[-3:] == ["canonicalize", "cse", "canonicalize"]
        assert cleanup_passes(0) == []
        assert set(CLEANUP_LADDER) == {1, 2, 3}

    def test_legs_share_suffix_structure(self):
        for opt_level in range(4):
            cpu = CompilerOptions(opt_level=opt_level)
            gpu = CompilerOptions(target="gpu", opt_level=opt_level)
            cpu_leg = get_target("cpu").target_leg(cpu, JointProbability())
            gpu_leg = get_target("gpu").target_leg(gpu, JointProbability())
            strip = lambda leg: [
                item
                for item in leg[1:]
                if item not in ("gpu-copy-elimination", "licm")
            ]
            assert strip(cpu_leg) == strip(gpu_leg)

    def test_common_leg_is_target_independent(self):
        cpu = CompilerOptions(opt_level=2)
        gpu = CompilerOptions(target="gpu", opt_level=2)
        assert common_pipeline(cpu) == common_pipeline(gpu)


class TestTargetRegistry:
    def test_registered_targets(self):
        assert registered_targets() == ["cpu", "gpu"]

    def test_unknown_target_rejected_by_options(self):
        with pytest.raises(OptionsError):
            CompilerOptions(target="tpu")

    def test_get_unknown_target(self):
        with pytest.raises(ValueError, match="unknown target"):
            get_target("tpu")

    def test_result_records_pipeline(self):
        options = CompilerOptions(opt_level=1)
        result = compile_spn(
            make_gaussian_spn(), JointProbability(batch_size=8), options
        )
        _, spec = build_compile_pipeline(options, JointProbability(batch_size=8))
        assert result.pipeline == spec


class TestPipelineOverride:
    def test_override_matches_declarative_bitwise(self, rng):
        spn = make_gaussian_spn()
        query = JointProbability(batch_size=16)
        inputs = rng.normal(size=(32, 2))
        for target in ("cpu", "gpu"):
            base_options = CompilerOptions(target=target, opt_level=2)
            _, spec = build_compile_pipeline(base_options, query)
            override_options = CompilerOptions(
                target=target, opt_level=2, pipeline=spec
            )
            base = compile_spn(spn, query, base_options).executable(inputs)
            override = compile_spn(spn, query, override_options).executable(inputs)
            assert np.array_equal(base, override)

    def test_custom_pipeline_under_every_pass(self, rng):
        from repro.spn.inference import log_likelihood

        spn = make_gaussian_spn()
        query = JointProbability(batch_size=16)
        options = CompilerOptions(
            pipeline=(
                "frontend,lower-to-lospn,bufferize,buffer-deallocation,"
                "cpu-lowering{vectorize=off},canonicalize,cse,dce"
            ),
            verify_each="every-pass",
        )
        result = compile_spn(spn, query, options)
        inputs = rng.normal(size=(8, 2))
        np.testing.assert_allclose(
            result.executable(inputs),
            log_likelihood(spn, inputs.astype(np.float64)),
            rtol=1e-5,
            atol=1e-6,
        )

    def test_invalid_pipeline_is_an_options_error(self):
        options = CompilerOptions(pipeline="frontend,no-such-pass")
        with pytest.raises(OptionsError, match="invalid pipeline"):
            compile_spn(make_gaussian_spn(), JointProbability(batch_size=8), options)

    def test_pipeline_in_cache_fingerprint(self):
        plain = CompilerOptions()
        overridden = CompilerOptions(pipeline="frontend,lower-to-lospn,bufferize")
        assert plain.cache_fingerprint() != overridden.cache_fingerprint()

    def test_cli_pipeline_override(self, tmp_path, capsys, rng):
        from repro.spn import serialize_to_file

        path = str(tmp_path / "model.spnb")
        serialize_to_file(
            make_gaussian_spn(), JointProbability(batch_size=16), path
        )
        assert main(["compile", path, "--print-pipeline"]) == 0
        spec = capsys.readouterr().out.strip()
        assert spec.startswith("frontend,")
        assert (
            main(["compile", path, "--pipeline", spec, "--verify-each",
                  "every-pass"])
            == 0
        )
        assert "codegen" in capsys.readouterr().out


class TestInstrumentation:
    def test_timings_carry_op_deltas(self):
        result = compile_spn(
            make_gaussian_spn(),
            JointProbability(batch_size=8),
            CompilerOptions(opt_level=2),
        )
        assert result.timings is not None
        by_name = {record.name: record for record in result.timings.records}
        assert by_name["frontend"].op_delta > 0  # builds the module
        assert all(
            record.ops_before is not None
            for record in result.timings.records
            if record.name != "codegen"
        )
        # stage_seconds is the accumulated view of the same records
        # (codegen included: the driver times it into the same record).
        assert set(result.stage_seconds) == set(result.timings.seconds)
        assert "codegen" in result.stage_seconds

    def test_unified_report_names_stages(self):
        result = compile_spn(
            make_gaussian_spn(),
            JointProbability(batch_size=8),
            CompilerOptions(),
        )
        report = result.timings.report()
        assert "cpu-lowering" in report
        assert "ops" in report


class TestExecutableContract:
    def test_shared_base(self):
        assert issubclass(CPUExecutable, Executable)
        assert issubclass(GPUExecutable, Executable)
        assert CPUExecutable.target == "cpu"
        assert GPUExecutable.target == "gpu"

    def test_uniform_lifecycle(self, rng):
        spn = make_gaussian_spn()
        inputs = rng.normal(size=(8, 2))
        for target in ("cpu", "gpu"):
            result = compile_spn(
                spn,
                JointProbability(batch_size=8),
                CompilerOptions(target=target),
            )
            executable = result.executable
            assert isinstance(executable, Executable)
            assert executable.target == target
            with executable as handle:
                handle(inputs)
            with pytest.raises(RuntimeError, match="closed"):
                executable(inputs)

    def test_source_available_on_both(self):
        spn = make_gaussian_spn()
        for target in ("cpu", "gpu"):
            result = compile_spn(
                spn, JointProbability(batch_size=8), CompilerOptions(target=target)
            )
            assert "def " in result.executable.source


class TestFrontendBinding:
    def test_unbound_frontend_raises(self):
        from repro.ir import ModuleOp
        from repro.ir.pipeline_spec import parse_pipeline

        manager = parse_pipeline("frontend")
        with pytest.raises(Exception, match="unbound"):
            manager.run(ModuleOp.build())

    def test_bound_frontend_builds_module(self):
        from repro.ir import ModuleOp
        from repro.ir.pipeline_spec import build_pipeline

        (frontend,) = build_pipeline("frontend")
        assert isinstance(frontend, FrontendPass)
        frontend.bind(make_gaussian_spn(), JointProbability(batch_size=8))
        module = ModuleOp.build()
        from repro.ir.passes import PassManager

        PassManager().add(frontend).run(module)
        assert any(
            op.op_name == "hi_spn.query" or "hi_spn" in op.op_name
            for op in module.body_block.ops
        )


class TestOracleEquivalence:
    def test_small_corpus_matches_reference(self):
        # Differential proof that the declarative driver is
        # behaviour-preserving: every backend config against the
        # reference evaluator on generated cases.
        from repro.testing.oracle import DEFAULT_CONFIGS, DifferentialOracle

        oracle = DifferentialOracle(
            DEFAULT_CONFIGS, shrink=False, dump_reproducers=False
        )
        report = oracle.fuzz(3, seed=7, ir_share=0.0)
        assert report.ok, report.summary()


def test_lanes_option_survives_round_trip():
    options = CompilerOptions(vectorize="lanes", vector_isa="avx512")
    _, spec = build_compile_pipeline(options)
    assert "cpu-lowering{vectorize=lanes vector-isa=avx512}" in spec
    passes = build_pipeline(spec)
    lowering = next(p for p in passes if isinstance(p, CPULoweringPass))
    assert lowering.vectorize == "lanes"
    assert lowering.vector_isa == "avx512"
