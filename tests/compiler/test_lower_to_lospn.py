"""Tests for the HiSPN → LoSPN lowering."""

import math

import pytest

from repro.compiler.frontend import build_hispn_module
from repro.compiler.lower_to_lospn import (
    DEPTH_F64_THRESHOLD,
    LoweringError,
    decide_computation_type,
    graph_depth,
    lower_to_lospn,
)
from repro.dialects import lospn
from repro.ir import f32, f64, verify
from repro.spn import Gaussian, JointProbability, Product, Sum

from ..conftest import make_deep_spn, make_gaussian_spn


def ops_named(module, name):
    return [op for op in module.walk() if op.op_name == name]


@pytest.fixture
def lowered(gaussian_spn, query):
    module = build_hispn_module(gaussian_spn, query)
    return lower_to_lospn(module)


class TestStructure:
    def test_verifies(self, lowered):
        verify(lowered)

    def test_single_kernel_single_task(self, lowered):
        kernels = ops_named(lowered, "lo_spn.kernel")
        assert len(kernels) == 1
        assert len(kernels[0].tasks()) == 1
        assert kernels[0].sym_name == "spn_kernel"

    def test_task_batch_size_from_query(self, gaussian_spn):
        module = build_hispn_module(gaussian_spn, JointProbability(batch_size=123))
        lowered = lower_to_lospn(module)
        task = ops_named(lowered, "lo_spn.task")[0]
        assert task.batch_size == 123

    def test_binarization(self, lowered):
        """No variadic arithmetic: every mul/add has exactly 2 operands."""
        for name in ("lo_spn.mul", "lo_spn.add"):
            for op in ops_named(lowered, name):
                assert len(op.operands) == 2

    def test_weighted_sum_decomposition(self, lowered):
        """sum(a, b; w) becomes w1*a + w2*b: 2 constants, 2+2 muls, 1 add."""
        assert len(ops_named(lowered, "lo_spn.add")) == 1
        assert len(ops_named(lowered, "lo_spn.constant")) == 2
        # 2 product nodes (1 mul each) + 2 weight multiplications.
        assert len(ops_named(lowered, "lo_spn.mul")) == 4

    def test_log_space_weight_constants(self, lowered):
        values = sorted(
            op.attributes["value"] for op in ops_named(lowered, "lo_spn.constant")
        )
        assert values == pytest.approx([math.log(0.3), math.log(0.7)])

    def test_batch_extract_per_used_feature(self, lowered):
        extracts = ops_named(lowered, "lo_spn.batch_extract")
        assert sorted(op.static_index for op in extracts) == [0, 1]

    def test_unused_features_not_extracted(self, query):
        # SPN over features {0, 2} of a 3-feature space.
        spn = Product([Gaussian(0, 0.0, 1.0), Gaussian(2, 1.0, 1.0)])
        # Artificially widen the scope by adding feature 1's sibling graph:
        # simpler: the graph has 2 features here; check extraction count.
        module = build_hispn_module(spn, query)
        lowered = lower_to_lospn(module)
        extracts = ops_named(lowered, "lo_spn.batch_extract")
        assert len(extracts) == 2

    def test_marginal_flag_propagates(self, gaussian_spn):
        module = build_hispn_module(
            gaussian_spn, JointProbability(support_marginal=True)
        )
        lowered = lower_to_lospn(module)
        for leaf in ops_named(lowered, "lo_spn.gaussian"):
            assert leaf.support_marginal

    def test_kernel_return_uses_task_result(self, lowered):
        kernel = ops_named(lowered, "lo_spn.kernel")[0]
        ret = kernel.body.terminator
        assert ret.op_name == "lo_spn.kernel_return"
        assert ret.operands[0].defining_op.op_name == "lo_spn.task"

    def test_zero_weight_becomes_neg_inf(self, query):
        spn = Sum(
            [Gaussian(0, 0.0, 1.0), Gaussian(0, 1.0, 1.0)], [1.0, 1e-300]
        )
        spn.weights = [1.0, 0.0]  # force an exactly-zero weight
        module = build_hispn_module(spn, query)
        lowered = lower_to_lospn(module)
        values = [op.attributes["value"] for op in ops_named(lowered, "lo_spn.constant")]
        assert -math.inf in values


class TestTypeDecision:
    def test_shallow_graph_uses_log_f32(self, gaussian_spn, query):
        module = build_hispn_module(gaussian_spn, query)
        qop = ops_named(module, "hi_spn.joint_query")[0]
        decision = decide_computation_type(qop)
        assert decision.use_log_space
        assert decision.float_type == f32
        assert decision.computation_type == lospn.LogType(f32)

    def test_deep_graph_uses_log_f64(self, query):
        deep = make_deep_spn(depth=DEPTH_F64_THRESHOLD)
        module = build_hispn_module(deep, query)
        qop = ops_named(module, "hi_spn.joint_query")[0]
        decision = decide_computation_type(qop)
        assert decision.float_type == f64

    def test_linear_space_forces_f64(self, gaussian_spn, query):
        module = build_hispn_module(gaussian_spn, query)
        qop = ops_named(module, "hi_spn.joint_query")[0]
        decision = decide_computation_type(qop, use_log_space=False)
        assert not decision.use_log_space
        assert decision.computation_type == f64

    def test_forced_type_respected(self, gaussian_spn, query):
        module = build_hispn_module(gaussian_spn, query)
        qop = ops_named(module, "hi_spn.joint_query")[0]
        decision = decide_computation_type(qop, force_float_type=f64)
        assert decision.float_type == f64

    def test_graph_depth(self, gaussian_spn, query):
        module = build_hispn_module(gaussian_spn, query)
        qop = ops_named(module, "hi_spn.joint_query")[0]
        assert graph_depth(qop.graph) == 3  # leaf -> product -> sum

    def test_leaf_types_follow_decision(self, gaussian_spn, query):
        module = build_hispn_module(gaussian_spn, query)
        lowered = lower_to_lospn(module, use_log_space=False)
        for leaf in ops_named(lowered, "lo_spn.gaussian"):
            assert leaf.results[0].type == f64

    def test_empty_module_rejected(self):
        from repro.ir import ModuleOp

        with pytest.raises(LoweringError):
            lower_to_lospn(ModuleOp.build())
