"""Tests for bufferization, copy removal and buffer deallocation."""

import pytest

from repro.compiler.bufferization import (
    bufferize,
    insert_deallocations,
    remove_result_copies,
)
from repro.compiler.frontend import build_hispn_module
from repro.compiler.lower_to_lospn import lower_to_lospn
from repro.compiler.partitioning import PartitioningOptions, partition_kernel
from repro.ir import MemRefType, TensorType, verify
from repro.spn import JointProbability


def ops_named(module, name):
    return [op for op in module.walk() if op.op_name == name]


@pytest.fixture
def tensor_module(gaussian_spn, query):
    return lower_to_lospn(build_hispn_module(gaussian_spn, query))


@pytest.fixture
def partitioned_module(gaussian_spn, query):
    module = lower_to_lospn(build_hispn_module(gaussian_spn, query))
    module, _ = partition_kernel(module, PartitioningOptions(max_partition_size=3))
    return module


class TestBufferize:
    def test_verifies(self, tensor_module):
        buffered = bufferize(tensor_module)
        verify(buffered)

    def test_kernel_signature_gains_output_memref(self, tensor_module):
        buffered = bufferize(tensor_module)
        kernel = ops_named(buffered, "lo_spn.kernel")[0]
        assert len(kernel.arg_types) == 2
        assert all(isinstance(t, MemRefType) for t in kernel.arg_types)
        assert kernel.result_types == ()

    def test_no_tensors_remain(self, partitioned_module):
        buffered = bufferize(partitioned_module)
        for op in buffered.walk():
            for value in list(op.operands) + list(op.results):
                assert not isinstance(value.type, TensorType)

    def test_extract_becomes_read(self, tensor_module):
        buffered = bufferize(tensor_module)
        assert not ops_named(buffered, "lo_spn.batch_extract")
        assert ops_named(buffered, "lo_spn.batch_read")

    def test_collect_becomes_write(self, tensor_module):
        buffered = bufferize(tensor_module)
        assert not ops_named(buffered, "lo_spn.batch_collect")
        assert ops_named(buffered, "lo_spn.batch_write")

    def test_naive_form_has_copy_to_output(self, tensor_module):
        buffered = bufferize(tensor_module)
        copies = ops_named(buffered, "memref.copy")
        assert len(copies) == 1
        kernel = ops_named(buffered, "lo_spn.kernel")[0]
        assert copies[0].target is kernel.body.arguments[-1]

    def test_intermediate_allocations_sized_dynamically(self, partitioned_module):
        buffered = bufferize(partitioned_module)
        allocs = ops_named(buffered, "memref.alloc")
        assert allocs
        for alloc in allocs:
            assert None in alloc.results[0].type.shape
            assert len(alloc.operands) == 1  # the batch extent
        assert ops_named(buffered, "memref.dim")

    def test_transposed_flags_preserved(self, partitioned_module):
        buffered = bufferize(partitioned_module)
        reads = ops_named(buffered, "lo_spn.batch_read")
        assert any(r.transposed for r in reads)  # intermediate reads
        assert any(not r.transposed for r in reads)  # feature reads


class TestCopyRemoval:
    def test_copy_removed_and_task_redirected(self, tensor_module):
        buffered = bufferize(tensor_module)
        removed = remove_result_copies(buffered)
        assert removed == 1
        verify(buffered)
        assert not ops_named(buffered, "memref.copy")
        kernel = ops_named(buffered, "lo_spn.kernel")[0]
        task = kernel.tasks()[0]
        assert kernel.body.arguments[-1] in task.operands

    def test_dead_alloc_erased(self, tensor_module):
        buffered = bufferize(tensor_module)
        before = len(ops_named(buffered, "memref.alloc"))
        remove_result_copies(buffered)
        after = len(ops_named(buffered, "memref.alloc"))
        assert after == before - 1

    def test_idempotent(self, tensor_module):
        buffered = bufferize(tensor_module)
        remove_result_copies(buffered)
        assert remove_result_copies(buffered) == 0

    def test_partitioned_intermediates_keep_buffers(self, partitioned_module):
        buffered = bufferize(partitioned_module)
        removed = remove_result_copies(buffered)
        assert removed == 1  # only the final output copy
        # Intermediate buffers still exist (consumed by later tasks).
        assert ops_named(buffered, "memref.alloc")


class TestDeallocation:
    def test_every_alloc_gets_a_dealloc(self, partitioned_module):
        buffered = bufferize(partitioned_module)
        remove_result_copies(buffered)
        inserted = insert_deallocations(buffered)
        allocs = ops_named(buffered, "memref.alloc")
        deallocs = ops_named(buffered, "memref.dealloc")
        assert inserted == len(allocs) == len(deallocs)
        verify(buffered)

    def test_deallocs_precede_terminator(self, partitioned_module):
        buffered = bufferize(partitioned_module)
        insert_deallocations(buffered)
        kernel = ops_named(buffered, "lo_spn.kernel")[0]
        ops = kernel.body.op_list()
        dealloc_positions = [
            i for i, op in enumerate(ops) if op.op_name == "memref.dealloc"
        ]
        terminator_pos = len(ops) - 1
        assert all(p < terminator_pos for p in dealloc_positions)
        assert ops[terminator_pos].op_name == "lo_spn.kernel_return"
