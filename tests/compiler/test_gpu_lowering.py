"""Tests for the GPU target lowering, copy elimination and simulation."""

import numpy as np
import pytest

from repro.compiler import CompilerOptions, compile_spn
from repro.compiler.bufferization import bufferize, insert_deallocations, remove_result_copies
from repro.compiler.frontend import build_hispn_module
from repro.compiler.gpu.copy_elim import eliminate_host_round_trips
from repro.compiler.gpu.lowering import GPULoweringOptions, lower_kernel_to_gpu
from repro.compiler.lower_to_lospn import lower_to_lospn
from repro.compiler.partitioning import PartitioningOptions, partition_kernel
from repro.dialects import gpu as gpu_dialect
from repro.ir import verify
from repro.spn import JointProbability, log_likelihood


def ops_named(module, name):
    return [op for op in module.walk() if op.op_name == name]


def buffered_module(spn, batch_size=16, max_partition_size=None, optimize=True):
    module = lower_to_lospn(build_hispn_module(spn, JointProbability(batch_size=batch_size)))
    if max_partition_size is not None:
        module, _ = partition_kernel(
            module, PartitioningOptions(max_partition_size=max_partition_size)
        )
    module = bufferize(module)
    if optimize:
        remove_result_copies(module)
    insert_deallocations(module)
    return module


class TestKernelGeneration:
    def test_verifies(self, gaussian_spn):
        lowered = lower_kernel_to_gpu(buffered_module(gaussian_spn))
        verify(lowered)

    def test_one_gpu_func_per_task(self, gaussian_spn):
        module = buffered_module(gaussian_spn, max_partition_size=3)
        lowered = lower_kernel_to_gpu(module)
        gpu_module = ops_named(lowered, "gpu.module")[0]
        kernel = [op for op in module.walk() if op.op_name == "lo_spn.kernel"][0]
        assert len(gpu_module.kernels()) == len(kernel.tasks())

    def test_kernel_computes_global_thread_id(self, gaussian_spn):
        lowered = lower_kernel_to_gpu(buffered_module(gaussian_spn))
        gpu_fn = ops_named(lowered, "gpu.func")[0]
        names = [op.op_name for op in gpu_fn.walk()]
        assert "gpu.thread_id" in names
        assert "gpu.block_id" in names
        assert "gpu.block_dim" in names
        assert names[-1] == "gpu.func"
        assert gpu_fn.body.terminator.op_name == "gpu.return"

    def test_discrete_leaves_become_select_cascades(self, discrete_spn):
        lowered = lower_kernel_to_gpu(buffered_module(discrete_spn))
        gpu_fn = ops_named(lowered, "gpu.func")[0]
        names = [op.op_name for op in gpu_fn.walk()]
        assert "arith.select" in names
        # No table lookups inside GPU kernels (paper Section IV-C).
        assert "memref.constant_buffer" not in names
        assert "vector.gather_table" not in names

    def test_block_size_attribute(self, gaussian_spn):
        lowered = lower_kernel_to_gpu(
            buffered_module(gaussian_spn), GPULoweringOptions(block_size=128)
        )
        launches = ops_named(lowered, "gpu.launch_func")
        from repro.dialects.arith import constant_value

        assert all(constant_value(l.block_size) == 128 for l in launches)


class TestHostLowering:
    def test_host_function_structure(self, gaussian_spn):
        lowered = lower_kernel_to_gpu(buffered_module(gaussian_spn))
        host = ops_named(lowered, "func.func")[0]
        names = [op.op_name for op in host.body.ops]
        assert "gpu.alloc" in names
        assert "gpu.memcpy" in names
        assert "gpu.launch_func" in names
        assert "gpu.dealloc" in names

    def test_input_uploaded_once(self, gaussian_spn):
        lowered = lower_kernel_to_gpu(buffered_module(gaussian_spn, max_partition_size=3))
        host = ops_named(lowered, "func.func")[0]
        h2d = [
            op
            for op in host.body.ops
            if op.op_name == "gpu.memcpy"
            and op.direction == "h2d"
            and op.src in host.body.arguments
        ]
        assert len(h2d) == 1

    def test_naive_form_round_trips_intermediates(self, gaussian_spn):
        module = buffered_module(gaussian_spn, max_partition_size=3)
        lowered = lower_kernel_to_gpu(module)
        memcpys = ops_named(lowered, "gpu.memcpy")
        d2h = [m for m in memcpys if m.direction == "d2h"]
        h2d = [m for m in memcpys if m.direction == "h2d"]
        # One d2h per task output + uploads per intermediate consumer.
        assert len(d2h) >= 3
        assert len(h2d) >= 2

    def test_copy_elimination_removes_round_trips(self, gaussian_spn):
        module = buffered_module(gaussian_spn, max_partition_size=3)
        lowered = lower_kernel_to_gpu(module)
        before = len(ops_named(lowered, "gpu.memcpy"))
        removed = eliminate_host_round_trips(lowered)
        after = len(ops_named(lowered, "gpu.memcpy"))
        assert removed > 0
        assert after == before - removed
        verify(lowered)
        # Exactly the input upload + final download remain.
        assert after == 2

    def test_copy_elimination_keeps_kernel_output(self, gaussian_spn):
        module = buffered_module(gaussian_spn, max_partition_size=3)
        lowered = lower_kernel_to_gpu(module)
        eliminate_host_round_trips(lowered)
        host = ops_named(lowered, "func.func")[0]
        d2h = [
            op
            for op in ops_named(lowered, "gpu.memcpy")
            if op.direction == "d2h"
        ]
        assert len(d2h) == 1
        assert d2h[0].dst in host.body.arguments

    def test_grid_covers_batch(self, gaussian_spn):
        lowered = lower_kernel_to_gpu(buffered_module(gaussian_spn))
        launch = ops_named(lowered, "gpu.launch_func")[0]
        # grid = (n + B - 1) // B computed from the dynamic batch size.
        grid_producer = launch.grid_size.defining_op
        assert grid_producer.op_name == "arith.divsi"


class TestExecutionEquivalence:
    @pytest.mark.parametrize("opt_level", [0, 1, 2])
    def test_results_match_reference(self, gaussian_spn, gaussian_inputs, opt_level):
        ref = log_likelihood(gaussian_spn, gaussian_inputs.astype(np.float64))
        result = compile_spn(
            gaussian_spn,
            JointProbability(batch_size=16),
            CompilerOptions(target="gpu", opt_level=opt_level),
        )
        np.testing.assert_allclose(
            result.executable(gaussian_inputs), ref, rtol=2e-3, atol=1e-5
        )

    def test_gpu_matches_cpu_bitwise_structure(self, gaussian_spn, gaussian_inputs):
        """GPU kernels run the same arithmetic: results agree tightly."""
        cpu = compile_spn(
            gaussian_spn, JointProbability(batch_size=16), CompilerOptions()
        )
        gpu = compile_spn(
            gaussian_spn,
            JointProbability(batch_size=16),
            CompilerOptions(target="gpu"),
        )
        np.testing.assert_allclose(
            cpu.executable(gaussian_inputs),
            gpu.executable(gaussian_inputs),
            rtol=1e-4,
        )

    def test_partitioned_gpu(self, gaussian_spn, gaussian_inputs):
        ref = log_likelihood(gaussian_spn, gaussian_inputs.astype(np.float64))
        result = compile_spn(
            gaussian_spn,
            JointProbability(batch_size=16),
            CompilerOptions(target="gpu", max_partition_size=3, verify_each_stage=True),
        )
        np.testing.assert_allclose(
            result.executable(gaussian_inputs), ref, rtol=2e-3, atol=1e-5
        )

    def test_marginal_on_gpu(self, gaussian_spn, rng):
        x = rng.normal(size=(50, 2))
        x[::3, 1] = np.nan
        ref = log_likelihood(gaussian_spn, x)
        result = compile_spn(
            gaussian_spn,
            JointProbability(batch_size=16, support_marginal=True),
            CompilerOptions(target="gpu"),
        )
        np.testing.assert_allclose(
            result.executable(x.astype(np.float32)), ref, rtol=2e-3, atol=1e-5
        )

    def test_discrete_cascade_matches_reference(self, discrete_spn, discrete_inputs):
        ref = log_likelihood(discrete_spn, discrete_inputs.astype(np.float64))
        result = compile_spn(
            discrete_spn,
            JointProbability(batch_size=16),
            CompilerOptions(target="gpu"),
        )
        np.testing.assert_allclose(
            result.executable(discrete_inputs), ref, rtol=2e-3, atol=1e-5
        )


class TestProfile:
    def test_profile_records_transfers_and_launches(self, gaussian_spn, gaussian_inputs):
        result = compile_spn(
            gaussian_spn,
            JointProbability(batch_size=16),
            CompilerOptions(target="gpu"),
        )
        result.executable(gaussian_inputs)
        profile = result.executable.last_profile
        assert len(profile.transfers) == 2
        assert len(profile.launches) == 1
        assert profile.total_seconds > 0
        assert 0 < profile.transfer_fraction < 1
        assert profile.bytes_moved == gaussian_inputs.nbytes + len(gaussian_inputs) * 4

    def test_copy_elim_reduces_bytes_moved(self, gaussian_spn, gaussian_inputs):
        naive = compile_spn(
            gaussian_spn,
            JointProbability(batch_size=16),
            CompilerOptions(target="gpu", max_partition_size=3, opt_level=0),
        )
        optimized = compile_spn(
            gaussian_spn,
            JointProbability(batch_size=16),
            CompilerOptions(target="gpu", max_partition_size=3, opt_level=1),
        )
        naive.executable(gaussian_inputs)
        optimized.executable(gaussian_inputs)
        assert (
            optimized.executable.last_profile.bytes_moved
            < naive.executable.last_profile.bytes_moved
        )

    def test_simulated_seconds_accessor(self, gaussian_spn, gaussian_inputs):
        result = compile_spn(
            gaussian_spn,
            JointProbability(batch_size=16),
            CompilerOptions(target="gpu"),
        )
        with pytest.raises(RuntimeError):
            result.executable.simulated_seconds()
        result.executable(gaussian_inputs)
        assert result.executable.simulated_seconds() > 0
