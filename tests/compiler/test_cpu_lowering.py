"""Tests for the CPU target lowering (scalar + vectorized)."""

import numpy as np
import pytest

from repro.compiler import CompilerOptions, compile_spn
from repro.compiler.bufferization import bufferize, remove_result_copies
from repro.compiler.cpu.lowering import (
    AVX2,
    AVX512,
    NEON,
    CPULoweringOptions,
    lower_kernel_to_cpu,
    scalarize_vector_math,
)
from repro.compiler.frontend import build_hispn_module
from repro.compiler.lower_to_lospn import lower_to_lospn
from repro.dialects.func import lookup_function, module_functions
from repro.ir import MemRefType, VectorType, f32, f64, verify
from repro.spn import JointProbability, log_likelihood


def ops_named(module, name):
    return [op for op in module.walk() if op.op_name == name]


@pytest.fixture
def buffered(gaussian_spn, query):
    module = lower_to_lospn(build_hispn_module(gaussian_spn, query))
    module = bufferize(module)
    remove_result_copies(module)
    return module


class TestScalarLowering:
    def test_verifies(self, buffered):
        lowered = lower_kernel_to_cpu(buffered)
        verify(lowered)

    def test_kernel_and_task_functions(self, buffered):
        lowered = lower_kernel_to_cpu(buffered)
        names = {fn.sym_name for fn in module_functions(lowered)}
        assert names == {"spn_kernel", "spn_kernel_task_0"}

    def test_kernel_calls_tasks_in_order(self, buffered):
        lowered = lower_kernel_to_cpu(buffered)
        kernel = lookup_function(lowered, "spn_kernel")
        calls = [op for op in kernel.body.ops if op.op_name == "func.call"]
        assert [c.callee for c in calls] == ["spn_kernel_task_0"]

    def test_no_spn_dialect_ops_remain(self, buffered):
        lowered = lower_kernel_to_cpu(buffered)
        for op in lowered.walk():
            assert not op.op_name.startswith("lo_spn")
            assert not op.op_name.startswith("hi_spn")

    def test_log_types_erased(self, buffered):
        lowered = lower_kernel_to_cpu(buffered)
        from repro.dialects.lospn import LogType

        for op in lowered.walk():
            for value in list(op.operands) + list(op.results):
                ty = value.type
                if isinstance(ty, MemRefType):
                    assert not isinstance(ty.element_type, LogType)
                assert not isinstance(ty, LogType)

    def test_single_batch_loop(self, buffered):
        lowered = lower_kernel_to_cpu(buffered)
        task = lookup_function(lowered, "spn_kernel_task_0")
        loops = [op for op in task.body.ops if op.op_name == "scf.for"]
        assert len(loops) == 1

    def test_gaussian_lowered_to_fused_log_pdf(self, buffered):
        """Log-space Gaussians need no exp/log: c1 - (x-m)^2 * c2."""
        lowered = lower_kernel_to_cpu(buffered)
        task = lookup_function(lowered, "spn_kernel_task_0")
        names = [op.op_name for op in task.walk()]
        assert "arith.subf" in names and "arith.mulf" in names
        # log-add-exp for the mixture: exp + log1p present.
        assert "math.exp" in names and "math.log1p" in names


class TestVectorizedLowering:
    def options(self, **kw):
        kw.setdefault("vectorize", True)
        kw.setdefault("superword_factor", 4)
        return CPULoweringOptions(**kw)

    def test_vector_loop_plus_epilogue(self, buffered):
        lowered = lower_kernel_to_cpu(buffered, self.options())
        task = lookup_function(lowered, "spn_kernel_task_0")
        loops = [op for op in task.body.ops if op.op_name == "scf.for"]
        assert len(loops) == 2
        vector_loop, epilogue = loops
        assert any(
            isinstance(r.type, VectorType)
            for op in vector_loop.walk()
            for r in op.results
        )
        assert not any(
            isinstance(r.type, VectorType)
            for op in epilogue.walk()
            for r in op.results
        )

    def test_isa_lane_counts(self):
        assert AVX2.lanes(f32) == 8
        assert AVX2.lanes(f64) == 4
        assert AVX512.lanes(f32) == 16
        assert NEON.lanes(f32) == 4

    def test_vector_width_is_lanes_times_superword(self, buffered):
        lowered = lower_kernel_to_cpu(
            buffered, self.options(isa=AVX512, superword_factor=4)
        )
        widths = {
            r.type.shape[0]
            for op in lowered.walk()
            for r in op.results
            if isinstance(r.type, VectorType) and r.type.rank == 1
        }
        assert widths == {16 * 4}

    def test_shuffle_mode_uses_tiles(self, buffered):
        lowered = lower_kernel_to_cpu(buffered, self.options(use_shuffle=True))
        assert ops_named(lowered, "vector.load_tile")
        assert ops_named(lowered, "vector.extract_column")
        assert not ops_named(lowered, "vector.gather")

    def test_gather_mode(self, buffered):
        lowered = lower_kernel_to_cpu(buffered, self.options(use_shuffle=False))
        assert ops_named(lowered, "vector.gather")
        assert not ops_named(lowered, "vector.load_tile")

    def test_one_tile_load_per_input_buffer(self, buffered):
        lowered = lower_kernel_to_cpu(buffered, self.options())
        assert len(ops_named(lowered, "vector.load_tile")) == 1
        # But one column extract per used feature.
        assert len(ops_named(lowered, "vector.extract_column")) == 2

    def test_veclib_keeps_vector_math(self, buffered):
        lowered = lower_kernel_to_cpu(buffered, self.options(use_vector_library=True))
        vector_math = [
            op
            for op in lowered.walk()
            if op.op_name in ("math.exp", "math.log1p")
            and isinstance(op.results[0].type, VectorType)
        ]
        assert vector_math
        assert not ops_named(lowered, "vector.scalarized_call")

    def test_no_veclib_scalarizes(self, buffered):
        lowered = lower_kernel_to_cpu(
            buffered, self.options(use_vector_library=False)
        )
        calls = ops_named(lowered, "vector.scalarized_call")
        assert calls
        # No vector-typed transcendentals remain.
        for op in lowered.walk():
            if op.op_name in ("math.exp", "math.log", "math.log1p"):
                assert not isinstance(op.results[0].type, VectorType)

    def test_scalarize_pass_counts(self, buffered):
        lowered = lower_kernel_to_cpu(buffered, self.options())
        rewritten = scalarize_vector_math(lowered)
        assert rewritten > 0
        verify(lowered)


class TestNumericalEquivalence:
    @pytest.mark.parametrize(
        "options",
        [
            {},
            {"vectorize": True, "superword_factor": 4},
            {"vectorize": True, "vector_isa": "avx512", "superword_factor": 2},
            {"vectorize": True, "vector_isa": "neon", "superword_factor": 2},
            {"vectorize": True, "use_shuffle": False, "superword_factor": 4},
            {"vectorize": True, "use_vector_library": False, "superword_factor": 2},
            {"vectorize": True, "opt_level": 2, "superword_factor": 4},
            {"opt_level": 0},
            {"opt_level": 3},
        ],
    )
    def test_all_configurations_match_reference(
        self, gaussian_spn, gaussian_inputs, options
    ):
        ref = log_likelihood(gaussian_spn, gaussian_inputs.astype(np.float64))
        result = compile_spn(
            gaussian_spn, JointProbability(batch_size=16), CompilerOptions(**options)
        )
        np.testing.assert_allclose(
            result.executable(gaussian_inputs), ref, rtol=2e-3, atol=1e-5
        )

    def test_vectorized_discrete_spn(self, discrete_spn, discrete_inputs):
        ref = log_likelihood(discrete_spn, discrete_inputs.astype(np.float64))
        result = compile_spn(
            discrete_spn,
            JointProbability(batch_size=16),
            CompilerOptions(vectorize=True, superword_factor=4),
        )
        np.testing.assert_allclose(
            result.executable(discrete_inputs), ref, rtol=2e-3, atol=1e-5
        )

    def test_odd_batch_exercises_epilogue(self, gaussian_spn, rng):
        # batch of 13 with W = 8: 8 vector + 5 scalar epilogue samples.
        x = rng.normal(size=(13, 2)).astype(np.float32)
        ref = log_likelihood(gaussian_spn, x.astype(np.float64))
        result = compile_spn(
            gaussian_spn,
            JointProbability(batch_size=8),
            CompilerOptions(vectorize=True, superword_factor=1),
        )
        np.testing.assert_allclose(result.executable(x), ref, rtol=2e-3, atol=1e-5)

    def test_tiny_batch_smaller_than_vector(self, gaussian_spn, rng):
        x = rng.normal(size=(3, 2)).astype(np.float32)
        ref = log_likelihood(gaussian_spn, x.astype(np.float64))
        result = compile_spn(
            gaussian_spn,
            JointProbability(batch_size=8),
            CompilerOptions(vectorize=True, superword_factor=4),
        )
        np.testing.assert_allclose(result.executable(x), ref, rtol=2e-3, atol=1e-5)
