"""Structured diagnostics: records, error hierarchy, reproducer dumps."""

import json
import os

import pytest

from repro import (
    CompilerError,
    CompilerOptions,
    Diagnostic,
    DiagnosticLog,
    ErrorCode,
    PassError,
    Severity,
    StageError,
    compile_spn,
)
from repro.diagnostics import artifact_directory, diagnostic_from_exception
from repro.ir import Builder, ModuleOp, PassManager, VerificationError, verify
from repro.ir.transforms import CSEPass
from repro.spn import JointProbability
from repro.testing import faults

from ..conftest import make_gaussian_spn


class TestDiagnosticRecord:
    def test_render_includes_location(self):
        d = Diagnostic(
            severity=Severity.ERROR,
            code=ErrorCode.PASS_FAILED,
            message="boom",
            stage="cpu-lowering",
            pass_name="cse",
            op_path="builtin.module/lo_spn.kernel#0",
        )
        text = d.render()
        assert "error" in text and "pass-failed" in text
        assert "stage=cpu-lowering" in text
        assert "pass=cse" in text
        assert "at=builtin.module/lo_spn.kernel#0" in text

    def test_to_dict_is_json_serializable(self):
        d = Diagnostic(Severity.WARNING, ErrorCode.FALLBACK_CPU, "msg")
        assert json.loads(json.dumps(d.to_dict()))["severity"] == "warning"

    def test_log_collects_and_filters(self):
        log = DiagnosticLog()
        log.emit(Diagnostic(Severity.NOTE, "note", "n"))
        log.emit(Diagnostic(Severity.ERROR, ErrorCode.STAGE_FAILED, "e"))
        assert len(log) == 2
        assert len(log.errors()) == 1
        assert log.last.code == ErrorCode.STAGE_FAILED
        assert log.by_code("note")[0].message == "n"
        assert "stage-failed" in log.report()

    def test_diagnostic_from_plain_exception(self):
        d = diagnostic_from_exception(ValueError("nope"), stage="codegen")
        assert d.stage == "codegen"
        assert "ValueError" in d.message

    def test_diagnostic_from_compiler_error_preserves_structure(self):
        inner = PassError(
            "bad",
            diagnostic=Diagnostic(
                Severity.ERROR, ErrorCode.PASS_FAILED, "bad", pass_name="cse"
            ),
        )
        d = diagnostic_from_exception(inner, target="cpu")
        assert d.pass_name == "cse"
        assert d.target == "cpu"


class TestArtifactDirectory:
    def test_explicit_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("SPNC_ARTIFACT_DIR", "/elsewhere")
        assert artifact_directory(str(tmp_path)) == str(tmp_path)

    def test_env_var_used(self, monkeypatch):
        monkeypatch.setenv("SPNC_ARTIFACT_DIR", "/from-env")
        assert artifact_directory(None) == "/from-env"

    def test_default_is_tempdir_based(self, monkeypatch):
        monkeypatch.delenv("SPNC_ARTIFACT_DIR", raising=False)
        assert "spnc-artifacts" in artifact_directory(None)


class TestStageFailures:
    def test_stage_error_names_stage_and_dumps_reproducer(self, tmp_path):
        spn = make_gaussian_spn()
        options = CompilerOptions(artifact_dir=str(tmp_path))
        with faults.inject_pass_failure("cpu-lowering"):
            with pytest.raises(StageError) as excinfo:
                compile_spn(spn, JointProbability(batch_size=8), options)
        error = excinfo.value
        assert error.stage == "cpu-lowering"
        assert error.diagnostic.code == ErrorCode.FAULT_INJECTED
        assert error.reproducer_path is not None
        files = os.listdir(error.reproducer_path)
        assert "module.mlir" in files
        assert "options.json" in files
        assert "diagnostic.json" in files
        with open(os.path.join(error.reproducer_path, "options.json")) as fh:
            dumped = json.load(fh)
        assert dumped["target"] == "cpu"
        with open(os.path.join(error.reproducer_path, "module.mlir")) as fh:
            assert "lo_spn" in fh.read() or "builtin.module" in fh.read()

    def test_frontend_failure_still_structured(self, tmp_path):
        options = CompilerOptions(artifact_dir=str(tmp_path))
        with faults.inject_pass_failure("frontend"):
            with pytest.raises(StageError) as excinfo:
                compile_spn(make_gaussian_spn(), JointProbability(batch_size=8), options)
        assert excinfo.value.stage == "frontend"

    def test_codegen_failure_classified(self, tmp_path):
        options = CompilerOptions(artifact_dir=str(tmp_path))
        with faults.inject_pass_failure("codegen"):
            with pytest.raises(StageError) as excinfo:
                compile_spn(make_gaussian_spn(), JointProbability(batch_size=8), options)
        assert excinfo.value.stage == "codegen"

    def test_gpu_stage_failure_names_gpu_stage(self, tmp_path):
        options = CompilerOptions(target="gpu", artifact_dir=str(tmp_path))
        with faults.inject_pass_failure("gpu-lowering"):
            with pytest.raises(StageError) as excinfo:
                compile_spn(make_gaussian_spn(), JointProbability(batch_size=8), options)
        assert excinfo.value.stage == "gpu-lowering"
        assert excinfo.value.diagnostic.target == "gpu"

    def test_compiler_error_is_exception(self):
        assert issubclass(StageError, CompilerError)
        assert issubclass(PassError, CompilerError)


class TestPassManagerFailures:
    def test_pass_error_names_pass(self):
        module = ModuleOp.build()
        manager = PassManager().add(CSEPass())
        with faults.inject_pass_failure("cse"):
            with pytest.raises(PassError) as excinfo:
                manager.run(module)
        assert excinfo.value.pass_name == "cse"
        assert excinfo.value.diagnostic.code == ErrorCode.FAULT_INJECTED

    def test_pass_error_dumps_reproducer_when_configured(self, tmp_path):
        module = ModuleOp.build()
        manager = PassManager(artifact_dir=str(tmp_path)).add(CSEPass())
        with faults.inject_pass_failure("cse"):
            with pytest.raises(PassError) as excinfo:
                manager.run(module)
        assert excinfo.value.reproducer_path is not None
        assert "module.mlir" in os.listdir(excinfo.value.reproducer_path)

    def test_unrelated_pass_unaffected(self):
        module = ModuleOp.build()
        manager = PassManager().add(CSEPass())
        with faults.inject_pass_failure("licm"):
            manager.run(module)  # should not raise


class TestVerifierOpPaths:
    def test_verification_error_carries_op_path(self):
        from repro.dialects.arith import AddFOp, ConstantOp
        from repro.dialects.func import FuncOp, ReturnOp
        from repro.ir import f32

        module = ModuleOp.build()
        b = Builder.at_end(module.body)
        fn = b.create(FuncOp, "f", [], [f32])
        fb = Builder.at_end(fn.body)
        c = fb.create(ConstantOp, 1.0, f32)
        add = fb.create(AddFOp, c.result, c.result)
        fb.create(ReturnOp, [add.result])
        add.move_before(c)
        with pytest.raises(VerificationError) as excinfo:
            verify(module)
        assert excinfo.value.op_path is not None
        assert "arith.addf" in excinfo.value.op_path
        assert excinfo.value.op_path.startswith("builtin.module")
