"""Compiled-kernel cache: weakref identity, fingerprints, eviction."""

import gc
import time

import numpy as np
import pytest

from repro import CPUCompiler, GPUCompiler
from repro.spn import JointProbability, log_likelihood

from ..conftest import make_gaussian_spn


class TestCacheHits:
    def test_repeated_calls_compile_once(self, rng):
        compiler = CPUCompiler(batch_size=32)
        spn = make_gaussian_spn()
        first = compiler.compile(spn)
        second = compiler.compile(spn)
        assert first is second

    def test_different_query_recompiles(self):
        compiler = CPUCompiler(batch_size=32)
        spn = make_gaussian_spn()
        first = compiler.compile(spn, JointProbability(batch_size=32))
        second = compiler.compile(spn, JointProbability(batch_size=64))
        assert first is not second
        # Both remain cached under their own fingerprint.
        assert compiler.compile(spn, JointProbability(batch_size=32)) is first

    def test_marginal_flag_is_part_of_the_key(self):
        compiler = CPUCompiler(batch_size=32)
        spn = make_gaussian_spn()
        joint = compiler.compile(spn, JointProbability(batch_size=32))
        marginal = compiler.compile(
            spn, JointProbability(batch_size=32, support_marginal=True)
        )
        assert joint is not marginal

    def test_list_of_spns_cached(self):
        compiler = CPUCompiler(batch_size=32)
        spns = [make_gaussian_spn(), make_gaussian_spn()]
        first = compiler.compile(spns)
        second = compiler.compile(spns)
        assert first is second


class TestVectorizationFingerprint:
    """The full vectorization configuration is part of the cache key."""

    def test_mode_change_recompiles(self):
        spn = make_gaussian_spn()
        query = JointProbability(batch_size=32)
        compilers = {
            mode: CPUCompiler(batch_size=32, vectorize=mode)
            for mode in ("off", "lanes", "batch")
        }
        prints = {m: c._fingerprint(query, "cpu") for m, c in compilers.items()}
        assert len(set(prints.values())) == 3
        # The kernels are genuinely different, not just distinct keys.
        by_mode = {m: c.compile(spn) for m, c in compilers.items()}
        assert "for " not in by_mode["batch"].executable.source
        assert "for " in by_mode["off"].executable.source

    def test_equivalent_spellings_share_an_entry(self):
        spn = make_gaussian_spn()
        legacy = CPUCompiler(batch_size=32, vectorize=True)
        modern = CPUCompiler(batch_size=32, vectorize="lanes")
        assert legacy._fingerprint(
            JointProbability(batch_size=32), "cpu"
        ) == modern._fingerprint(JointProbability(batch_size=32), "cpu")
        off = CPUCompiler(batch_size=32, vectorize=False)
        disabled = CPUCompiler(batch_size=32, vectorize="off")
        assert off._fingerprint(
            JointProbability(batch_size=32), "cpu"
        ) == disabled._fingerprint(JointProbability(batch_size=32), "cpu")

    def test_width_and_veclib_changes_recompile(self):
        query = JointProbability(batch_size=32)
        prints = {
            CPUCompiler(
                batch_size=32, vectorize="lanes", **kwargs
            )._fingerprint(query, "cpu")
            for kwargs in (
                {"vector_isa": "avx2"},
                {"vector_isa": "avx512"},
                {"use_vector_library": False},
            )
        }
        assert len(prints) == 3


class TestWeakrefEviction:
    def test_entry_evicted_when_model_collected(self):
        compiler = CPUCompiler(batch_size=32)
        spn = make_gaussian_spn()
        compiler.compile(spn)
        assert len(compiler._cache) == 1
        del spn
        gc.collect()
        assert len(compiler._cache) == 0

    def test_recycled_id_cannot_hit_stale_entry(self, rng):
        # The classic id()-reuse hazard: compile model A, drop it, build
        # model B (which may land on the same id), and verify B's results
        # come from B's own kernel.
        compiler = CPUCompiler(batch_size=32)
        inputs = rng.normal(size=(16, 2))
        for _ in range(10):
            spn = make_gaussian_spn()
            out = compiler.log_likelihood(spn, inputs)
            reference = log_likelihood(spn, inputs)
            np.testing.assert_allclose(out, reference, atol=1e-5, rtol=1e-5)
            del spn
            gc.collect()
        assert len(compiler._cache) == 0

    def test_list_entry_evicted_when_any_member_dies(self):
        compiler = CPUCompiler(batch_size=32)
        keep = make_gaussian_spn()
        doomed = make_gaussian_spn()
        compiler.compile([keep, doomed])
        assert len(compiler._cache) == 1
        del doomed
        gc.collect()
        assert len(compiler._cache) == 0


class TestSimulatedSeconds:
    def test_single_spn_lookup(self, rng):
        compiler = GPUCompiler(batch_size=32)
        spn = make_gaussian_spn()
        compiler.log_likelihood(spn, rng.normal(size=(32, 2)))
        assert compiler.simulated_seconds(spn) > 0

    def test_list_of_spns_lookup(self, rng):
        # Previously a silent miss: the cache key for a list is the tuple
        # of ids, but simulated_seconds looked up id(list).
        compiler = GPUCompiler(batch_size=32)
        spns = [make_gaussian_spn(), make_gaussian_spn()]
        compiler.log_likelihood(spns, rng.normal(size=(32, 2)))
        assert compiler.simulated_seconds(spns) > 0

    def test_uncompiled_spn_raises(self):
        compiler = GPUCompiler(batch_size=32)
        with pytest.raises(RuntimeError):
            compiler.simulated_seconds(make_gaussian_spn())


class TestThreadSafety:
    """Concurrent compilation: lock-protected cache plus single-flight."""

    def test_concurrent_identical_compiles_run_once(self, monkeypatch):
        import threading

        import repro.api as api

        calls = []
        real_compile = api.compile_spn

        def counting_compile(spn, query, options):
            calls.append(threading.get_ident())
            time.sleep(0.02)  # widen the race window
            return real_compile(spn, query, options)

        monkeypatch.setattr(api, "compile_spn", counting_compile)
        compiler = CPUCompiler(batch_size=32)
        spn = make_gaussian_spn()
        results = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            results.append(compiler.compile(spn))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Single-flight: one leader compiled, everyone shares the result.
        assert len(calls) == 1
        assert len(results) == 8
        assert all(result is results[0] for result in results)

    def test_failed_leader_propagates_to_followers_and_retries(self, monkeypatch):
        import threading

        import repro.api as api

        real_compile = api.compile_spn
        fail_first = [True]

        def flaky_compile(spn, query, options):
            if fail_first[0]:
                fail_first[0] = False
                time.sleep(0.02)
                raise ValueError("injected compile failure")
            return real_compile(spn, query, options)

        monkeypatch.setattr(api, "compile_spn", flaky_compile)
        compiler = CPUCompiler(batch_size=32)
        spn = make_gaussian_spn()
        errors, results = [], []
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait()
            try:
                results.append(compiler.compile(spn))
            except ValueError as error:
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # The leader's failure reached every waiter of that flight...
        assert errors, "the injected failure must surface"
        # ...and was not cached: a later compile succeeds.
        assert compiler.compile(spn) is not None

    def test_concurrent_distinct_spns_all_cached(self):
        import threading

        compiler = CPUCompiler(batch_size=32)
        spns = [make_gaussian_spn() for _ in range(6)]
        barrier = threading.Barrier(6)

        def worker(spn):
            barrier.wait()
            compiler.compile(spn)

        threads = [threading.Thread(target=worker, args=(s,)) for s in spns]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(compiler._cache) == 6
        # Eviction still works: dropping the SPNs empties the cache.
        del spns, threads
        gc.collect()
        assert len(compiler._cache) == 0
