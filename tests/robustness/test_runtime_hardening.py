"""Runtime hardening: chunk retry/cancellation and executable lifecycle."""

import threading

import numpy as np
import pytest

from repro import CompilerOptions, compile_spn
from repro.runtime import ChunkedExecutor
from repro.spn import JointProbability, log_likelihood

from ..conftest import make_gaussian_spn


class FlakyChunk:
    """Fails the configured chunk the first ``failures`` times it runs."""

    def __init__(self, fail_start, failures=1, exc=RuntimeError):
        self.fail_start = fail_start
        self.failures = failures
        self.exc = exc
        self.calls = []
        self.lock = threading.Lock()

    def __call__(self, start, end):
        with self.lock:
            self.calls.append((start, end))
            if start == self.fail_start and self.failures > 0:
                self.failures -= 1
                raise self.exc(f"chunk {start} failed")


class TestChunkRetry:
    def test_serial_retry_recovers_transient_failure(self):
        fn = FlakyChunk(fail_start=4, failures=1)
        with ChunkedExecutor(1) as ex:
            ex.run(12, 4, fn, max_retries=1)
        assert ex.last_run_retries == 1
        # Chunk 4 ran twice (fail + retry), others once.
        assert fn.calls.count((4, 8)) == 2

    def test_serial_no_retry_raises_immediately(self):
        fn = FlakyChunk(fail_start=0, failures=1)
        with ChunkedExecutor(1) as ex:
            with pytest.raises(RuntimeError):
                ex.run(8, 4, fn)

    def test_retry_budget_exhausted_reraises_last_error(self):
        fn = FlakyChunk(fail_start=0, failures=10)
        with ChunkedExecutor(1) as ex:
            with pytest.raises(RuntimeError):
                ex.run(4, 4, fn, max_retries=2)
        assert ex.last_run_retries == 2

    def test_parallel_retry_recovers(self):
        fn = FlakyChunk(fail_start=8, failures=1)
        with ChunkedExecutor(3) as ex:
            ex.run(20, 4, fn, max_retries=2)
        assert ex.last_run_retries == 1
        covered = sorted(set(fn.calls))
        assert covered == [(0, 4), (4, 8), (8, 12), (12, 16), (16, 20)]

    def test_parallel_failure_without_retry_raises(self):
        fn = FlakyChunk(fail_start=0, failures=1)
        with ChunkedExecutor(2) as ex:
            with pytest.raises(RuntimeError):
                ex.run(16, 4, fn)

    def test_fail_fast_cancels_queued_chunks(self):
        # Two workers, ten chunks: chunk 0 fails instantly while every
        # other chunk is slow, so the failure is observed while most of
        # the queue has not started — those chunks must be cancelled
        # (fail fast) rather than left running.
        import time

        lock = threading.Lock()
        calls = []

        def fn(start, end):
            with lock:
                calls.append((start, end))
            if start == 0:
                raise RuntimeError("poisoned chunk")
            time.sleep(0.1)

        with ChunkedExecutor(2) as ex:
            with pytest.raises(RuntimeError):
                ex.run(40, 4, fn)
            assert ex.last_run_cancelled > 0

    def test_cancelled_chunks_rerun_when_retry_allowed(self):
        blocker = threading.Event()
        lock = threading.Lock()
        failures = {"remaining": 1}
        calls = []

        def fn(start, end):
            with lock:
                calls.append((start, end))
            if start == 0:
                if failures["remaining"]:
                    failures["remaining"] -= 1
                    blocker.wait(timeout=5)
                    raise RuntimeError("transient")
            if start == 4:
                blocker.set()

        with ChunkedExecutor(2) as ex:
            ex.run(40, 4, fn, max_retries=1)
        covered = set()
        for start, end in calls:
            covered.update(range(start, end))
        assert covered == set(range(40))  # every sample processed

    def test_negative_retry_rejected(self):
        with ChunkedExecutor(1) as ex:
            with pytest.raises(ValueError):
                ex.run(4, 4, lambda s, e: None, max_retries=-1)


class TestExecutorLifecycle:
    def test_close_is_idempotent(self):
        ex = ChunkedExecutor(2)
        ex.close()
        ex.close()

    def test_context_manager_closes_pool(self):
        with ChunkedExecutor(2) as ex:
            ex.run(8, 4, lambda s, e: None)
        assert ex._pool is None


class TestCPUExecutableLifecycle:
    def _executable(self, num_threads=4):
        result = compile_spn(
            make_gaussian_spn(),
            JointProbability(batch_size=16),
            CompilerOptions(num_threads=num_threads),
        )
        return result.executable

    def test_close_releases_pool(self, rng):
        exe = self._executable()
        inputs = rng.normal(size=(64, 2))
        exe(inputs)
        exe.close()
        assert exe._executor is None

    def test_context_manager(self, rng):
        inputs = rng.normal(size=(64, 2))
        spn = make_gaussian_spn()
        reference = log_likelihood(spn, inputs)
        result = compile_spn(
            spn, JointProbability(batch_size=16), CompilerOptions(num_threads=2)
        )
        with result.executable as exe:
            out = exe(inputs)
        np.testing.assert_allclose(out, reference, atol=1e-5, rtol=1e-5)

    def test_closed_executable_rejects_execution(self, rng):
        exe = self._executable()
        exe.close()
        with pytest.raises(RuntimeError):
            exe(rng.normal(size=(8, 2)))

    def test_single_threaded_close_is_noop_safe(self, rng):
        exe = self._executable(num_threads=1)
        exe.close()
        with pytest.raises(RuntimeError):
            exe(rng.normal(size=(8, 2)))

    def test_no_thread_leak_across_compiles(self, rng):
        # Closing executables keeps the thread count flat across many
        # compile sessions (the leak the lifecycle fix addresses).
        before = threading.active_count()
        for _ in range(5):
            exe = self._executable(num_threads=3)
            exe(rng.normal(size=(64, 2)))
            exe.close()
        assert threading.active_count() <= before + 1
