"""The fault-injection switchboard itself, and the GPU OOM retry loop."""

import numpy as np
import pytest

from repro import DeviceError, GPUCompiler
from repro.gpusim.device import OutOfDeviceMemory
from repro.gpusim.simulator import GPUSimulator
from repro.spn import log_likelihood
from repro.testing import faults
from repro.testing.faults import FaultInjectionError

from ..conftest import make_gaussian_spn


class TestFaultScoping:
    def test_faults_disarm_on_exit(self):
        with faults.inject_pass_failure("cse"):
            with pytest.raises(FaultInjectionError):
                faults.maybe_fail_pass("cse")
        faults.maybe_fail_pass("cse")  # disarmed: no raise

    def test_matching_is_case_insensitive_containment(self):
        with faults.inject_pass_failure("CSE"):
            with pytest.raises(FaultInjectionError):
                faults.maybe_fail_pass("lospn-cse")
            faults.maybe_fail_pass("canonicalize")  # no match

    def test_times_bounds_firing(self):
        with faults.inject_pass_failure("cse", times=1) as fault:
            with pytest.raises(FaultInjectionError):
                faults.maybe_fail_pass("cse")
            faults.maybe_fail_pass("cse")  # budget exhausted: no raise
        assert fault.fired == 1

    def test_custom_exception_factory(self):
        with faults.inject_pass_failure("cse", exception=lambda: KeyError("boom")):
            with pytest.raises(KeyError):
                faults.maybe_fail_pass("cse")

    def test_kernel_nan_flag_nests(self):
        assert not faults.kernel_nan_active()
        with faults.inject_kernel_nan():
            with faults.inject_kernel_nan():
                assert faults.kernel_nan_active()
            assert faults.kernel_nan_active()
        assert not faults.kernel_nan_active()

    def test_no_faults_context_isolates(self):
        with faults.inject_pass_failure("cse"):
            with faults.no_faults():
                faults.maybe_fail_pass("cse")  # clean inside
            with pytest.raises(FaultInjectionError):
                faults.maybe_fail_pass("cse")  # restored outside

    def test_active_faults_introspection(self):
        with faults.inject_pass_failure("dce"), faults.inject_kernel_nan():
            state = faults.active_faults()
        assert state["pass_faults"] == ["dce"]
        assert state["kernel_nan"] is True


class TestKernelFaults:
    """The serving-era injectors: kernel failures and slow chunks."""

    def test_kernel_failure_fires_at_kernel_entry(self):
        with faults.inject_kernel_failure():
            with pytest.raises(FaultInjectionError):
                faults.maybe_fail_kernel("spn_kernel")
        faults.maybe_fail_kernel("spn_kernel")  # disarmed

    def test_kernel_failure_times_budget(self):
        with faults.inject_kernel_failure(times=2) as fault:
            for _ in range(2):
                with pytest.raises(FaultInjectionError):
                    faults.maybe_fail_kernel("k")
            faults.maybe_fail_kernel("k")  # budget spent
        assert fault.fired == 2

    def test_kernel_failure_custom_exception(self):
        with faults.inject_kernel_failure(exception=lambda: OSError("io")):
            with pytest.raises(OSError):
                faults.maybe_fail_kernel("k")

    def test_kernel_failure_reaches_compiled_execution(self, rng):
        from repro import CPUCompiler
        from repro.diagnostics import ExecutionError

        compiler = CPUCompiler(batch_size=16)
        executable = compiler.compile(make_gaussian_spn()).executable
        inputs = rng.normal(size=(8, 2))
        with faults.inject_kernel_failure():
            with pytest.raises(FaultInjectionError):
                executable.execute(inputs)
        # Disarmed: the same executable works again.
        assert np.isfinite(executable.execute(inputs)).all()

    def test_slow_chunks_delay_accumulates_and_scopes(self):
        import time

        with faults.inject_slow_chunks(0.03):
            start = time.monotonic()
            faults.maybe_delay_chunk()
            assert time.monotonic() - start >= 0.025
            assert faults.active_faults()["chunk_delay_s"] >= 0.03
        start = time.monotonic()
        faults.maybe_delay_chunk()  # disarmed: no sleep
        assert time.monotonic() - start < 0.02


class TestGpuOomRetry:
    def _compile(self, **kw):
        compiler = GPUCompiler(batch_size=64, **kw)
        spn = make_gaussian_spn()
        return compiler, spn

    def test_single_oom_is_absorbed_by_halved_block_retry(self, rng):
        compiler, spn = self._compile()
        inputs = rng.normal(size=(64, 2))
        reference = log_likelihood(spn, inputs)
        with faults.inject_gpu_oom(after_n_launches=0, count=1):
            out = compiler.log_likelihood(spn, inputs)
        np.testing.assert_allclose(out, reference, atol=1e-5, rtol=1e-5)
        profile = compiler.compile(spn).executable.last_profile
        assert profile.num_oom_retries == 1
        # The retried launch ran at half the original block size.
        retried = [l for l in profile.launches if l.retries]
        assert retried and retried[0].block_size == 32

    def test_after_n_launches_delays_the_fault(self, rng):
        compiler, spn = self._compile()
        inputs = rng.normal(size=(64, 2))
        compiler.log_likelihood(spn, inputs)  # launch 0 completes clean
        with faults.inject_gpu_oom(after_n_launches=1, count=1):
            compiler.log_likelihood(spn, inputs)
        profile = compiler.compile(spn).executable.last_profile
        assert profile.num_oom_retries == 1

    def test_persistent_oom_exhausts_retries_and_raises(self, rng):
        compiler, spn = self._compile()
        inputs = rng.normal(size=(64, 2))
        with faults.inject_gpu_oom(after_n_launches=0, count=1000):
            with pytest.raises(DeviceError) as excinfo:
                compiler.log_likelihood(spn, inputs)
        assert excinfo.value.diagnostic.stage == "gpu-execute"

    def test_retry_budget_is_bounded(self):
        simulator = GPUSimulator()
        simulator.register_kernel("k", lambda n, b: None)
        with faults.inject_gpu_oom(after_n_launches=0, count=1000):
            with pytest.raises(OutOfDeviceMemory):
                simulator.launch("k", 1, 64, 64, [])
        # 1 initial attempt + max_launch_retries retries, all failed.
        assert simulator.completed_launches == 0

    def test_retry_grid_still_covers_batch(self):
        simulator = GPUSimulator()
        seen = []

        def kernel(nthreads, bdim):
            seen.append((nthreads, bdim))

        simulator.register_kernel("k", kernel)
        with faults.inject_gpu_oom(after_n_launches=0, count=2):
            simulator.launch("k", 1, 64, 64, [])
        # Two OOMs -> block size halved twice; the batch is still covered.
        assert seen == [(64, 16)]
        record = simulator.profile.launches[0]
        assert record.retries == 2
        assert record.block_size == 16
        assert record.grid_size * record.block_size >= 64
