"""Error-path coverage: options validation, verifier branches, staged verify."""

import pytest

from repro import CompilerOptions, OptionsError, compile_spn
from repro.dialects.arith import AddFOp, ConstantOp
from repro.dialects.func import FuncOp, ReturnOp
from repro.ir import (
    Block,
    Builder,
    ModuleOp,
    VerificationError,
    f32,
    verify,
)
from repro.spn import JointProbability

from ..conftest import make_gaussian_spn


class TestCompilerOptionsValidation:
    def test_valid_defaults(self):
        CompilerOptions()  # must not raise

    def test_unknown_target(self):
        with pytest.raises(ValueError, match="unknown target"):
            CompilerOptions(target="tpu")

    def test_opt_level_out_of_range(self):
        with pytest.raises(ValueError, match="opt_level"):
            CompilerOptions(opt_level=4)
        with pytest.raises(ValueError, match="opt_level"):
            CompilerOptions(opt_level=-1)

    def test_unknown_vector_isa(self):
        with pytest.raises(ValueError, match="vector ISA"):
            CompilerOptions(vector_isa="sse9")

    def test_unknown_fallback_policy(self):
        with pytest.raises(ValueError, match="fallback"):
            CompilerOptions(fallback="panic")

    def test_errors_are_structured(self):
        with pytest.raises(OptionsError) as excinfo:
            CompilerOptions(target="tpu")
        assert excinfo.value.diagnostic.code == "invalid-options"


class TestVerifierBranches:
    def test_dominance_violation(self):
        module = ModuleOp.build()
        b = Builder.at_end(module.body)
        fn = b.create(FuncOp, "f", [], [f32])
        fb = Builder.at_end(fn.body)
        c = fb.create(ConstantOp, 1.0, f32)
        add = fb.create(AddFOp, c.result, c.result)
        fb.create(ReturnOp, [add.result])
        add.move_before(c)
        with pytest.raises(VerificationError, match="does not dominate"):
            verify(module)

    def test_single_block_violation(self):
        module = ModuleOp.build()
        module.region.append_block(Block())
        with pytest.raises(VerificationError, match="exactly one block"):
            verify(module)

    def test_misplaced_terminator(self):
        module = ModuleOp.build()
        b = Builder.at_end(module.body)
        b.create(ReturnOp, [])
        b.create(ModuleOp)
        with pytest.raises(VerificationError, match="not the last op"):
            verify(module)

    def test_isolated_from_above_violation(self):
        # A value defined at module scope used inside a func (which is
        # ISOLATED_FROM_ABOVE) must be reported as an isolation breach,
        # not a generic dominance failure.
        module = ModuleOp.build()
        b = Builder.at_end(module.body)
        c = b.create(ConstantOp, 1.0, f32)
        fn = b.create(FuncOp, "f", [], [f32])
        fb = Builder.at_end(fn.body)
        fb.create(ReturnOp, [c.result])
        with pytest.raises(VerificationError, match="ISOLATED_FROM_ABOVE"):
            verify(module)

    def test_op_paths_attached_on_each_branch(self):
        module = ModuleOp.build()
        b = Builder.at_end(module.body)
        b.create(ReturnOp, [])
        b.create(ModuleOp)
        with pytest.raises(VerificationError) as excinfo:
            verify(module)
        assert excinfo.value.op_path is not None


class TestVerifyEachStage:
    @pytest.mark.parametrize("target", ["cpu", "gpu"])
    def test_full_pipeline_verifies_after_every_stage(self, target):
        result = compile_spn(
            make_gaussian_spn(),
            JointProbability(batch_size=16),
            CompilerOptions(target=target, opt_level=3, verify_each_stage=True),
        )
        assert result.executable is not None

    def test_partitioned_pipeline_verifies(self):
        result = compile_spn(
            make_gaussian_spn(),
            JointProbability(batch_size=16),
            CompilerOptions(max_partition_size=3, verify_each_stage=True),
        )
        assert result.num_tasks >= 1
