"""Graceful degradation: the fallback cascade behind the single-call API."""

import warnings

import numpy as np
import pytest

from repro import (
    CompilerError,
    CPUCompiler,
    ErrorCode,
    FallbackWarning,
    GPUCompiler,
    OptionsError,
)
from repro.spn import log_likelihood
from repro.testing import faults

from ..conftest import make_gaussian_spn


@pytest.fixture
def spn():
    return make_gaussian_spn()


@pytest.fixture
def inputs(rng):
    return rng.normal(0.0, 1.5, size=(200, 2))


def degraded(compiler, spn, inputs):
    """Run log_likelihood capturing FallbackWarnings."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        out = compiler.log_likelihood(spn, inputs)
    return out, [w for w in caught if issubclass(w.category, FallbackWarning)]


class TestPolicyValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(OptionsError):
            CPUCompiler(fallback="retry")

    def test_policy_is_valueerror_compatible(self):
        with pytest.raises(ValueError):
            CPUCompiler(fallback="nope")


class TestDefaultRaise:
    def test_pass_failure_raises_structured_error(self, spn, inputs, tmp_path):
        compiler = CPUCompiler(batch_size=64, artifact_dir=str(tmp_path))
        with faults.inject_pass_failure("cse"):
            with pytest.raises(CompilerError) as excinfo:
                compiler.log_likelihood(spn, inputs)
        assert excinfo.value.stage == "cse"
        assert excinfo.value.reproducer_path is not None

    def test_no_warning_on_success(self, spn, inputs):
        compiler = CPUCompiler(batch_size=64)
        out, warned = degraded(compiler, spn, inputs)
        assert not warned
        assert len(compiler.diagnostics) == 0


class TestInterpreterFallbackCPU:
    def test_pass_failure_falls_back_exactly(self, spn, inputs):
        reference = log_likelihood(spn, inputs)
        compiler = CPUCompiler(batch_size=64, fallback="interpret")
        with faults.inject_pass_failure("cse"):
            out, warned = degraded(compiler, spn, inputs)
        np.testing.assert_allclose(out, reference, atol=1e-9, rtol=0)
        assert len(warned) == 1
        # One error diagnostic naming the failed stage + one fallback record.
        errors = compiler.diagnostics.errors()
        assert len(errors) == 1
        assert errors[0].stage == "cse"
        assert compiler.diagnostics.last.code == ErrorCode.FALLBACK_INTERPRETER

    def test_codegen_failure_falls_back(self, spn, inputs):
        reference = log_likelihood(spn, inputs)
        compiler = CPUCompiler(batch_size=64, fallback="interpret")
        with faults.inject_pass_failure("codegen"):
            out, warned = degraded(compiler, spn, inputs)
        np.testing.assert_allclose(out, reference, atol=1e-9, rtol=0)
        assert len(warned) == 1
        assert compiler.diagnostics.errors()[0].stage == "codegen"

    def test_kernel_nan_detected_and_degraded(self, spn, inputs):
        reference = log_likelihood(spn, inputs)
        compiler = CPUCompiler(batch_size=64, fallback="interpret")
        with faults.inject_kernel_nan():
            out, warned = degraded(compiler, spn, inputs)
        np.testing.assert_allclose(out, reference, atol=1e-9, rtol=0)
        assert len(warned) == 1
        assert compiler.diagnostics.errors()[0].code == ErrorCode.KERNEL_NAN

    def test_interpret_warns_once_per_model(self, spn, inputs):
        compiler = CPUCompiler(batch_size=64, fallback="interpret")
        with faults.inject_kernel_nan():
            _, first = degraded(compiler, spn, inputs)
            _, second = degraded(compiler, spn, inputs)
        assert len(first) == 1
        assert len(second) == 0  # deduplicated per model

    def test_warn_policy_warns_every_call(self, spn, inputs):
        compiler = CPUCompiler(batch_size=64, fallback="warn")
        with faults.inject_kernel_nan():
            _, first = degraded(compiler, spn, inputs)
            _, second = degraded(compiler, spn, inputs)
        assert len(first) == 1
        assert len(second) == 1

    def test_linear_space_fallback_exponentiates(self, spn, inputs):
        reference = np.exp(log_likelihood(spn, inputs))
        compiler = CPUCompiler(batch_size=64, fallback="interpret", use_log_space=False)
        with faults.inject_pass_failure("codegen"):
            out, _ = degraded(compiler, spn, inputs)
        np.testing.assert_allclose(out, reference, atol=1e-12, rtol=1e-9)

    def test_multi_head_fallback_shape(self, inputs):
        spns = [make_gaussian_spn(), make_gaussian_spn()]
        reference = np.stack([log_likelihood(s, inputs) for s in spns])
        compiler = CPUCompiler(batch_size=64, fallback="interpret")
        with faults.inject_pass_failure("codegen"):
            out, warned = degraded(compiler, spns, inputs)
        assert out.shape == (2, inputs.shape[0])
        np.testing.assert_allclose(out, reference, atol=1e-9, rtol=0)
        assert len(warned) == 1

    def test_classify_works_under_fallback(self, inputs):
        spns = [make_gaussian_spn(), make_gaussian_spn()]
        compiler = CPUCompiler(batch_size=64, fallback="interpret")
        with faults.inject_pass_failure("codegen"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                labels = compiler.classify(spns, inputs)
        assert labels.shape == (inputs.shape[0],)


class TestGPUCascade:
    def test_gpu_failure_lands_on_cpu_kernel(self, spn, inputs):
        reference = log_likelihood(spn, inputs)
        compiler = GPUCompiler(batch_size=64, fallback="interpret")
        with faults.inject_pass_failure("gpu-lowering"):
            out, warned = degraded(compiler, spn, inputs)
        # The CPU kernel computes in f32 for this graph depth.
        np.testing.assert_allclose(out, reference, atol=1e-5, rtol=1e-5)
        assert len(warned) == 1
        assert compiler.diagnostics.last.code == ErrorCode.FALLBACK_CPU
        assert compiler.diagnostics.errors()[0].stage == "gpu-lowering"

    def test_shared_pass_failure_cascades_to_interpreter(self, spn, inputs):
        reference = log_likelihood(spn, inputs)
        compiler = GPUCompiler(batch_size=64, fallback="interpret")
        # "cse" exists in both the GPU and CPU pipelines: both kernel
        # rungs fail, the cascade must land on the reference interpreter.
        with faults.inject_pass_failure("cse"):
            out, warned = degraded(compiler, spn, inputs)
        np.testing.assert_allclose(out, reference, atol=1e-9, rtol=0)
        assert len(warned) == 1
        assert compiler.diagnostics.last.code == ErrorCode.FALLBACK_INTERPRETER
        # Both failed rungs were recorded.
        assert len(compiler.diagnostics.errors()) == 2

    def test_gpu_oom_exhaustion_cascades(self, spn, inputs):
        reference = log_likelihood(spn, inputs)
        compiler = GPUCompiler(batch_size=64, fallback="interpret")
        # More OOM events than the simulator's retry budget: the launch
        # fails for good and the cascade takes over.
        with faults.inject_gpu_oom(after_n_launches=0, count=100):
            out, warned = degraded(compiler, spn, inputs)
        np.testing.assert_allclose(out, reference, atol=1e-5, rtol=1e-5)
        assert len(warned) == 1
        errors = compiler.diagnostics.errors()
        assert errors[0].code in (ErrorCode.DEVICE_OOM, ErrorCode.EXECUTION_FAILED)

    def test_gpu_nan_cascade_to_interpreter(self, spn, inputs):
        # NaN poisoning hits both kernels; only the interpreter is clean.
        reference = log_likelihood(spn, inputs)
        compiler = GPUCompiler(batch_size=64, fallback="interpret")
        with faults.inject_kernel_nan():
            out, warned = degraded(compiler, spn, inputs)
        np.testing.assert_allclose(out, reference, atol=1e-9, rtol=0)
        assert len(warned) == 1
        assert len(compiler.diagnostics.errors()) == 2
