"""Tests for the runtime component: chunking and threading."""

import numpy as np
import pytest

from repro.runtime import ChunkedExecutor, chunk_ranges


class TestChunkRanges:
    def test_exact_division(self):
        assert chunk_ranges(8, 4) == [(0, 4), (4, 8)]

    def test_remainder_chunk(self):
        assert chunk_ranges(10, 4) == [(0, 4), (4, 8), (8, 10)]

    def test_single_chunk(self):
        assert chunk_ranges(3, 100) == [(0, 3)]

    def test_empty(self):
        assert chunk_ranges(0, 4) == []

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            chunk_ranges(10, 0)


class TestChunkedExecutor:
    def test_sequential_covers_all(self):
        seen = []
        with ChunkedExecutor(1) as ex:
            ex.run(10, 3, lambda s, e: seen.append((s, e)))
        assert seen == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_parallel_covers_all(self):
        out = np.zeros(100)
        with ChunkedExecutor(4) as ex:
            ex.run(100, 7, lambda s, e: out.__setitem__(slice(s, e), 1.0))
        assert out.sum() == 100

    def test_exceptions_propagate(self):
        def boom(s, e):
            raise RuntimeError("chunk failed")

        with ChunkedExecutor(2) as ex:
            with pytest.raises(RuntimeError):
                ex.run(10, 2, boom)

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            ChunkedExecutor(0)

    def test_close_idempotent(self):
        ex = ChunkedExecutor(2)
        ex.close()
        ex.close()
