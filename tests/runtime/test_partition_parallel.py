"""Analysis-gated partition-level task parallelism (CPU runtime).

The ``parallelize-partitions`` pass attaches a wave schedule only when
the memory-access analysis proves the partitions disjoint; the
executable runs approved waves on the worker pool and silently falls
back to the serial task order whenever the plan does not validate
against the generated module. Correctness bar: bit-identical outputs
to the serial path at every batch shape.
"""

import numpy as np
import pytest

from repro.compiler import CompilerOptions, compile_spn
from repro.diagnostics import OptionsError
from repro.spn import Gaussian, JointProbability, Product, Sum

from ..conftest import make_gaussian_spn


def _wide_spn(width=4):
    products = [
        Product([Gaussian(2 * i, 0.0, 1.0), Gaussian(2 * i + 1, 0.0, 1.0)])
        for i in range(width)
    ]
    return Sum(products, [1.0 / width] * width)


def _compile(spn, **options):
    return compile_spn(
        spn,
        JointProbability(batch_size=64),
        CompilerOptions(vectorize="batch", max_partition_size=6, **options),
    )


class TestPlanGating:
    def test_plan_attached_only_when_disjointness_is_proven(self):
        result = _compile(_wide_spn(), partition_parallel=True, num_threads=4)
        ex = result.executable
        try:
            plan = ex.parallel_plan
            assert plan is not None
            assert len(plan["waves"]) == 2
            assert len(plan["waves"][0]) >= 3  # independent leaf partitions
            assert len(plan["waves"][1]) == 1  # the combiner
        finally:
            ex.close()

    def test_single_partition_kernel_gets_no_plan(self):
        # The running example fits one partition — nothing to schedule.
        ex = compile_spn(
            make_gaussian_spn(),
            JointProbability(batch_size=64),
            CompilerOptions(vectorize="batch", partition_parallel=True,
                            num_threads=4),
        ).executable
        try:
            assert ex.parallel_plan is None
        finally:
            ex.close()

    def test_flag_off_means_no_plan_even_when_provable(self):
        ex = _compile(_wide_spn(), num_threads=4).executable
        try:
            assert ex.parallel_plan is None
            assert "parallelize-partitions" not in _compile(
                _wide_spn()
            ).pipeline
        finally:
            ex.close()

    def test_pipeline_spec_names_the_pass(self):
        result = _compile(_wide_spn(), partition_parallel=True)
        result.executable.close()
        assert "parallelize-partitions" in result.pipeline

    def test_gpu_target_rejects_the_flag(self):
        with pytest.raises(OptionsError):
            CompilerOptions(target="gpu", partition_parallel=True)

    def test_fingerprint_distinguishes_the_flag(self):
        base = CompilerOptions(vectorize="batch")
        flagged = CompilerOptions(vectorize="batch", partition_parallel=True)
        assert base.cache_fingerprint() != flagged.cache_fingerprint()


class TestBitIdentity:
    @pytest.fixture(scope="class")
    def executables(self):
        serial = _compile(_wide_spn()).executable
        parallel = _compile(
            _wide_spn(), partition_parallel=True, num_threads=4
        ).executable
        yield serial, parallel
        serial.close()
        parallel.close()

    @pytest.mark.parametrize("batch", [1, 63, 64, 65, 1000])
    def test_parallel_matches_serial_bitwise(self, executables, batch, rng):
        serial, parallel = executables
        inputs = rng.normal(size=(batch, 8)).astype(np.float32)
        np.testing.assert_array_equal(
            parallel.execute(inputs), serial.execute(inputs)
        )
        assert parallel.last_waves, "parallel path did not run"
        assert serial.last_waves == []

    def test_single_thread_runs_waves_serially(self, executables, rng):
        serial, _ = executables
        one = _compile(
            _wide_spn(), partition_parallel=True, num_threads=1
        ).executable
        try:
            inputs = rng.normal(size=(256, 8)).astype(np.float32)
            np.testing.assert_array_equal(
                one.execute(inputs), serial.execute(inputs)
            )
            assert one.last_waves  # wave plan honored, executor-less
        finally:
            one.close()


class TestSerialFallback:
    """``_prepare_parallel`` degrades invalid plans to serial, silently."""

    @pytest.fixture(scope="class")
    def executable(self):
        ex = _compile(
            _wide_spn(), partition_parallel=True, num_threads=2
        ).executable
        yield ex
        ex.close()

    def test_valid_plan_validates(self, executable):
        assert executable._parallel is not None

    @pytest.mark.parametrize(
        "tamper",
        [
            lambda plan: plan.pop("waves"),
            lambda plan: plan.update(num_args=3),
            lambda plan: plan["waves"][0].append(99),
            lambda plan: plan["tasks"][0]["args"].append(["buf", 42]),
            lambda plan: plan["buffers"].__setitem__(
                0, {"rows": 1, "dtype": "no-such-dtype"}
            ),
            lambda plan: plan["waves"].pop(),  # omits the combiner task
        ],
    )
    def test_tampered_plans_degrade_to_serial(self, executable, tamper):
        import copy

        plan = copy.deepcopy(executable.parallel_plan)
        tamper(plan)
        assert executable._prepare_parallel(plan) is None

    def test_fallback_still_computes_correctly(self, rng):
        serial = _compile(_wide_spn()).executable
        broken = _compile(
            _wide_spn(), partition_parallel=True, num_threads=2
        ).executable
        try:
            bad = dict(broken.parallel_plan, num_args=3)
            broken._parallel = broken._prepare_parallel(bad)
            assert broken._parallel is None
            inputs = rng.normal(size=(200, 8)).astype(np.float32)
            np.testing.assert_array_equal(
                broken.execute(inputs), serial.execute(inputs)
            )
            assert broken.last_waves == []  # serial path taken
        finally:
            serial.close()
            broken.close()
