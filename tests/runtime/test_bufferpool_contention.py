"""BufferPool under multi-threaded execution: arena isolation, zero
steady-state allocations per worker, and leak-free shutdown.

The sharded runtime runs the *same* generated kernel concurrently on
pool workers, so the pool's thread-confined arenas are load-bearing for
correctness: two workers handed the same backing array would corrupt
each other's intermediates. These tests drive the pool from real
threads and assert the isolation, accounting and lifecycle contracts
the runtime relies on.
"""

import threading

import numpy as np
import pytest

from repro.compiler import CompilerOptions, compile_spn
from repro.runtime import Arena, BufferPool
from repro.spn import JointProbability

from ..conftest import make_gaussian_spn


def _on_threads(count, fn, timeout=10.0):
    """Run ``fn(index)`` on ``count`` threads; re-raise any failure."""
    errors = []

    def wrap(index):
        try:
            fn(index)
        except Exception as error:
            errors.append(error)

    threads = [
        threading.Thread(target=wrap, args=(i,), name=f"pooltest-{i}")
        for i in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout)
    if errors:
        raise errors[0]


class TestArenaIsolation:
    def test_same_slot_distinct_backing_per_thread(self):
        pool = BufferPool()
        barrier = threading.Barrier(4, timeout=5.0)
        backing = {}

        def worker(index):
            barrier.wait()  # all threads request the slot concurrently
            array = pool.buffer("v0", (64,), np.float64)
            array.fill(float(index))  # scribble: corruption would cross
            backing[index] = array
            assert np.all(array == float(index))

        _on_threads(4, worker)
        bases = {id(arr.base if arr.base is not None else arr) for arr in backing.values()}
        assert len(bases) == 4  # no two threads share a backing array
        assert pool.arena_count == 4

    def test_arena_named_after_owning_worker(self):
        pool = BufferPool()

        def worker(index):
            pool.buffer("v0", (8,), np.float64)

        _on_threads(2, worker)
        assert sorted(a.name for a in pool.arenas()) == [
            "pooltest-0",
            "pooltest-1",
        ]

    def test_counters_are_per_arena(self):
        pool = BufferPool()

        def worker(index):
            for _ in range(10):
                pool.buffer("v0", (32,), np.float64)

        _on_threads(3, worker)
        for arena in pool.arenas():
            assert arena.requests == 10
            assert arena.allocations == 1
        assert pool.requests == 30
        assert pool.allocations == 3


class TestZeroSteadyStateAllocations:
    def test_repeated_same_shape_requests_allocate_once_per_worker(self):
        pool = BufferPool()

        def worker(index):
            for _ in range(200):
                for slot in ("v0", "v1", "m0"):
                    pool.buffer(slot, (64,), np.float64)

        _on_threads(4, worker)
        for arena in pool.arenas():
            assert arena.allocations == 3  # one per slot, ever
            assert arena.requests == 600

    def test_tail_then_full_chunk_grows_once(self):
        pool = BufferPool()

        def worker(index):
            pool.buffer("v0", (17,), np.float64)  # tail chunk first
            for _ in range(100):
                pool.buffer("v0", (64,), np.float64)
            for _ in range(100):
                pool.buffer("v0", (17,), np.float64)  # tail fits the 64

        _on_threads(2, worker)
        for arena in pool.arenas():
            assert arena.allocations == 2  # initial 17 + one regrow to 64

    def test_sharded_kernel_execution_is_allocation_free_per_worker(self):
        spn = make_gaussian_spn()
        query = JointProbability(batch_size=64)
        result = compile_spn(
            spn, query, CompilerOptions(vectorize="batch", num_threads=4)
        )
        with result.executable as kernel:
            pool = kernel.buffer_pool
            rng = np.random.default_rng(7)
            inputs = rng.normal(size=(4096, 2))
            for _ in range(3):
                kernel.execute(inputs)  # warm the worker arenas
            warm = {id(a): a.allocations for a in pool.arenas()}
            for _ in range(5):
                kernel.execute(inputs)
            for arena in pool.arenas():
                if id(arena) in warm:
                    assert arena.allocations == warm[id(arena)], (
                        f"steady-state execution allocated on {arena!r}"
                    )
                else:
                    # Pool threads spawn lazily; a worker whose first
                    # chunk landed after the snapshot only pays its
                    # one-time per-slot warmup (chunks are uniform).
                    assert arena.allocations <= len(arena.slots)


class TestLeakFreeShutdown:
    def test_close_releases_every_arena(self):
        pool = BufferPool()

        def worker(index):
            pool.buffer("v0", (1024,), np.float64)

        _on_threads(3, worker)
        assert pool.retained_bytes == 3 * 1024 * 8
        pool.close()
        assert pool.closed
        assert pool.retained_bytes == 0
        assert pool.arena_count == 0

    def test_close_is_idempotent(self):
        pool = BufferPool()
        pool.buffer("v0", (8,), np.float64)
        pool.close()
        pool.close()
        assert pool.closed

    def test_buffer_after_close_raises_on_fresh_thread(self):
        pool = BufferPool()
        pool.close()

        def worker(index):
            with pytest.raises(RuntimeError, match="closed"):
                pool.buffer("v0", (8,), np.float64)

        _on_threads(1, worker)

    def test_buffer_after_close_raises_on_warm_thread(self):
        # A thread holding a cached arena must not slip past close().
        pool = BufferPool()
        pool.buffer("v0", (8,), np.float64)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.buffer("v0", (8,), np.float64)

    def test_executable_close_closes_its_pool(self):
        spn = make_gaussian_spn()
        query = JointProbability(batch_size=64)
        result = compile_spn(
            spn, query, CompilerOptions(vectorize="batch", num_threads=2)
        )
        kernel = result.executable
        rng = np.random.default_rng(7)
        kernel.execute(rng.normal(size=(2048, 2)))
        pool = kernel.buffer_pool
        assert pool.retained_bytes > 0
        kernel.close()
        assert pool.closed
        assert pool.retained_bytes == 0


class TestArenaUnit:
    def test_dtype_change_reallocates(self):
        arena = Arena("t")
        a = arena.buffer("v0", (8,), np.float64)
        b = arena.buffer("v0", (8,), np.float32)
        assert a.dtype != b.dtype
        assert arena.allocations == 2

    def test_view_of_retained_capacity(self):
        arena = Arena("t")
        arena.buffer("v0", (64,), np.float64)
        view = arena.buffer("v0", (10,), np.float64)
        assert view.shape == (10,)
        assert view.base is arena.slots["v0"]
        assert arena.allocations == 1

    def test_per_dimension_max_growth(self):
        arena = Arena("t")
        arena.buffer("m0", (4, 64), np.float64)
        arena.buffer("m0", (8, 16), np.float64)
        assert arena.slots["m0"].shape == (8, 64)
        assert arena.allocations == 2
