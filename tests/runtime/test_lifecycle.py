"""Executable lifecycle and executor deadline/retry semantics.

Regression coverage for the serving-runtime hardening: a closed
executable fails cleanly (structured :class:`ExecutableClosedError`,
which is both a :class:`CompilerError` and a :class:`RuntimeError`),
``close()`` waits for in-flight executions instead of yanking the pool
from under them, and :class:`ChunkedExecutor` honours absolute
deadlines and bounded-backoff retry policies with diagnostics.
"""

import threading
import time

import numpy as np
import pytest

from repro.compiler import CompilerOptions, compile_spn
from repro.diagnostics import (
    CompilerError,
    DeadlineError,
    DiagnosticLog,
    ErrorCode,
    ExecutableClosedError,
)
from repro.runtime.threadpool import ChunkedExecutor, RetryPolicy
from repro.spn import JointProbability, log_likelihood
from repro.testing import faults

from ..conftest import make_gaussian_spn


def _executable(num_threads=2, batch_size=16):
    result = compile_spn(
        make_gaussian_spn(),
        JointProbability(batch_size=batch_size),
        CompilerOptions(num_threads=num_threads),
    )
    return result.executable


class TestExecutableClose:
    def test_closed_executable_raises_structured_error(self, rng):
        exe = _executable()
        exe.close()
        with pytest.raises(ExecutableClosedError) as excinfo:
            exe(rng.normal(size=(8, 2)))
        # Clean, structured failure: a CompilerError with a stable code
        # (and a RuntimeError for pre-existing callers).
        assert isinstance(excinfo.value, CompilerError)
        assert isinstance(excinfo.value, RuntimeError)
        assert excinfo.value.diagnostic.code == ErrorCode.EXECUTABLE_CLOSED

    def test_double_close_is_idempotent(self):
        exe = _executable()
        exe.close()
        exe.close()

    def test_execute_racing_close_never_crashes(self, rng):
        """Hammer execute() from worker threads while close() lands.

        Every call must either complete normally or raise the clean
        closed error — never an AttributeError from a half-released
        pool, and never a wrong result.
        """
        spn = make_gaussian_spn()
        inputs = rng.normal(size=(64, 2))
        reference = log_likelihood(spn, inputs)
        anomalies = []
        for _ in range(10):
            exe = _executable(num_threads=2)
            start = threading.Barrier(3)

            def hammer():
                start.wait()
                for _ in range(20):
                    try:
                        out = exe.execute(inputs)
                    except ExecutableClosedError:
                        return
                    except Exception as error:  # pragma: no cover
                        anomalies.append(error)
                        return
                    if not np.allclose(out, reference, atol=1e-5, rtol=1e-5):
                        anomalies.append("wrong result")  # pragma: no cover
                        return

            workers = [threading.Thread(target=hammer) for _ in range(2)]
            for worker in workers:
                worker.start()
            start.wait()
            exe.close()
            for worker in workers:
                worker.join()
        assert anomalies == []

    def test_close_waits_for_inflight_execution(self):
        """close() drains: the in-flight run finishes before release."""
        exe = _executable(num_threads=2, batch_size=8)
        inputs = np.zeros((32, 2))
        finished = []

        def run():
            with faults.inject_slow_chunks(0.02):
                exe.execute(inputs)
            finished.append(True)

        worker = threading.Thread(target=run)
        worker.start()
        time.sleep(0.01)  # let the execution enter the kernel
        exe.close()
        worker.join()
        assert finished == [True]
        assert exe._executor is None


class TestChunkedExecutorDeadline:
    def test_deadline_already_passed_raises(self):
        with ChunkedExecutor(1) as ex:
            with pytest.raises(DeadlineError):
                ex.run(8, 4, lambda s, e: None, deadline=time.monotonic() - 0.1)

    def test_deadline_cuts_off_later_chunks(self):
        ran = []

        def chunk(start, end):
            ran.append((start, end))
            time.sleep(0.05)

        with ChunkedExecutor(1) as ex:
            with pytest.raises(DeadlineError):
                ex.run(40, 4, chunk, deadline=time.monotonic() + 0.02)
        # The first chunk ran; the deadline stopped the rest.
        assert 1 <= len(ran) < 10

    def test_generous_deadline_is_harmless(self):
        with ChunkedExecutor(2) as ex:
            ex.run(16, 4, lambda s, e: None, deadline=time.monotonic() + 30.0)

    def test_deadline_enforced_on_parallel_path_without_faults(self):
        # Regression: the pool path used to submit every chunk upfront
        # and only detect expiry post-hoc, so a slow but fault-free
        # batch ran arbitrarily past its deadline. Chunks that start
        # past the deadline must fail bounded instead.
        ran = []
        lock = threading.Lock()

        def slow(start, end):
            with lock:
                ran.append((start, end))
            time.sleep(0.05)

        with ChunkedExecutor(2) as ex:
            before = time.monotonic()
            with pytest.raises(DeadlineError):
                ex.run(40, 4, slow, deadline=time.monotonic() + 0.06)
            elapsed = time.monotonic() - before
        # Ten 0.05s chunks on two workers take ~0.25s unchecked; the
        # deadline cut that short and most chunks never started.
        assert elapsed < 0.25
        assert len(ran) < 10

    def test_deadline_expiry_is_not_retried(self):
        # A DeadlineError must consume no retry budget: re-running the
        # chunk cannot un-expire the deadline.
        ran = []

        def slow(start, end):
            ran.append((start, end))
            time.sleep(0.05)

        policy = RetryPolicy(max_retries=3, backoff_base=0.0, jitter=0.0)
        with ChunkedExecutor(2) as ex:
            with pytest.raises(DeadlineError):
                ex.run(
                    40, 4, slow, retry_policy=policy,
                    deadline=time.monotonic() + 0.06,
                )
            assert ex.last_run_retries == 0


class TestRetryPolicy:
    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(
            max_retries=5, backoff_base=0.01, backoff_max=0.04, jitter=0.0
        )
        delays = [policy.delay(attempt) for attempt in range(5)]
        assert delays[0] == pytest.approx(0.01)
        assert delays[1] == pytest.approx(0.02)
        assert max(delays) <= 0.04 + 1e-9
        assert delays == sorted(delays)

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(
            max_retries=1, backoff_base=0.01, backoff_max=1.0, jitter=0.5
        )
        for _ in range(50):
            assert 0.005 <= policy.delay(0) <= 0.015

    def test_retries_emit_diagnostics(self):
        attempts = {}

        def flaky(start, end):
            attempts[start] = attempts.get(start, 0) + 1
            if attempts[start] == 1:
                raise ValueError("transient")

        log = DiagnosticLog()
        policy = RetryPolicy(max_retries=2, backoff_base=0.0, jitter=0.0)
        with ChunkedExecutor(1) as ex:
            ex.run(8, 4, flaky, retry_policy=policy, diagnostics=log)
        assert ex.last_run_retries == 2
        assert len(log.by_code(ErrorCode.CHUNK_RETRY)) == 2

    def test_backoff_respects_deadline(self):
        """A retry whose backoff cannot fit the deadline surfaces the
        deadline error instead of sleeping past it."""

        def always_fails(start, end):
            raise ValueError("broken")

        policy = RetryPolicy(max_retries=5, backoff_base=0.5, jitter=0.0)
        with ChunkedExecutor(1) as ex:
            before = time.monotonic()
            with pytest.raises(DeadlineError):
                ex.run(
                    4,
                    4,
                    always_fails,
                    retry_policy=policy,
                    deadline=time.monotonic() + 0.05,
                )
            # It gave up promptly, not after the full 0.5s backoff.
            assert time.monotonic() - before < 0.4
