"""Sharded multi-core batch execution (paper Section IV-B runtime).

The adaptive shard plan must be a pure scheduling decision: for every
worker count, batch size and tail shape, the sharded run's outputs are
bit-identical to the single-threaded run (the kernels are per-sample;
chunk boundaries never change arithmetic). The plan itself must stay
work-stealing friendly (≥ 2 x workers chunks when profitable) without
slicing below the vector-profitable minimum or above the compiled
batch-size hint, and the executor's retry / deadline / fail-fast and
``last_run_*`` snapshot semantics must survive explicit shard plans.
"""

import threading
import time

import numpy as np
import pytest

from repro.compiler import CompilerOptions, compile_spn
from repro.diagnostics import DeadlineError
from repro.runtime import (
    MIN_PROFITABLE_CHUNK,
    ChunkedExecutor,
    RetryPolicy,
    ShardTimeline,
    chunk_ranges,
    plan_chunks,
)
from repro.spn import JointProbability

from ..conftest import make_gaussian_spn

W = 64


def _covers(ranges, total):
    """Ranges are contiguous, disjoint, and cover [0, total)."""
    position = 0
    for start, end in ranges:
        assert start == position
        assert end > start
        position = end
    assert position == total


class TestPlanChunks:
    def test_single_worker_degenerates_to_hint(self):
        assert plan_chunks(1000, 64, 1) == chunk_ranges(1000, 64)

    def test_over_decomposes_to_twice_workers(self):
        for workers in (2, 4, 8):
            ranges = plan_chunks(100_000, 100_000, workers)
            assert len(ranges) >= 2 * workers
            _covers(ranges, 100_000)

    def test_hint_caps_chunk_width(self):
        # Chunks wider than the compiled batch size would regrow every
        # worker arena's high-water footprint; the hint is a hard cap.
        ranges = plan_chunks(100_000, W, 4)
        assert all(end - start <= W for start, end in ranges)
        _covers(ranges, 100_000)

    def test_never_below_profitable_minimum(self):
        # 8 workers over 2048 rows would want 16 chunks of 128 rows;
        # the plan refuses to slice below MIN_PROFITABLE_CHUNK instead.
        ranges = plan_chunks(2048, 100_000, 8)
        assert all(
            end - start >= MIN_PROFITABLE_CHUNK
            for start, end in ranges[:-1]  # the tail may be short
        )
        _covers(ranges, 2048)

    def test_small_batch_single_chunk(self):
        assert plan_chunks(MIN_PROFITABLE_CHUNK, 1024, 4) == [
            (0, MIN_PROFITABLE_CHUNK)
        ]

    def test_tiny_hint_wins_over_minimum(self):
        # An explicit hint below MIN_PROFITABLE_CHUNK is the user's
        # call: the plan honors it rather than silently widening.
        ranges = plan_chunks(10_000, 64, 4)
        assert all(end - start <= 64 for start, end in ranges)
        _covers(ranges, 10_000)

    def test_empty_batch(self):
        assert plan_chunks(0, 64, 4) == []

    def test_invalid_hint(self):
        with pytest.raises(ValueError):
            plan_chunks(100, 0, 4)

    def test_tail_is_last(self):
        ranges = plan_chunks(10_000, 3000, 2)
        widths = [end - start for start, end in ranges]
        assert min(widths) == widths[-1]


class TestShardedBitIdentical:
    """Sharded execution is invisible in the results (oracle property)."""

    @pytest.fixture(scope="class")
    def kernels(self):
        spn = make_gaussian_spn()
        query = JointProbability(batch_size=W, relative_error=1e-9)
        single = compile_spn(
            spn, query, CompilerOptions(vectorize="batch", num_threads=1)
        ).executable
        sharded = compile_spn(
            spn, query, CompilerOptions(vectorize="batch", num_threads=4)
        ).executable
        yield single, sharded
        single.close()
        sharded.close()

    @pytest.mark.parametrize(
        "batch", [1, W - 1, W, W + 1, 4 * W, 4 * W + 1, 16 * W + 3]
    )
    def test_bit_identical_across_tails(self, kernels, batch, rng):
        single, sharded = kernels
        inputs = rng.normal(size=(batch, 2))
        expected = single.execute(inputs)
        actual = sharded.execute(inputs)
        np.testing.assert_array_equal(actual, expected)

    def test_timeline_covers_batch(self, kernels, rng):
        _, sharded = kernels
        inputs = rng.normal(size=(16 * W, 2))
        sharded.execute(inputs)
        timeline = sharded.last_timeline
        assert timeline is not None
        spans = sorted((r.start, r.end) for r in timeline.records)
        _covers(spans, 16 * W)
        assert all(w.startswith("spnc-worker") for w in timeline.workers)
        assert timeline.busy_seconds >= 0.0
        assert timeline.makespan_seconds >= 0.0

    def test_small_batch_skips_sharding(self, kernels, rng):
        _, sharded = kernels
        sharded.last_timeline = None
        sharded.execute(rng.normal(size=(8, 2)))
        # Below the profitable minimum the batch runs unsliced, so no
        # timeline is recorded for this execution.
        assert sharded.last_timeline is None


class TestExplicitRangesSemantics:
    """run(ranges=...) preserves retry / deadline / fail-fast behavior."""

    def test_ranges_override_chunk_size(self):
        seen = []
        with ChunkedExecutor(1) as ex:
            ex.run(10, 3, lambda s, e: seen.append((s, e)), ranges=[(0, 7), (7, 10)])
        assert seen == [(0, 7), (7, 10)]

    def test_retry_recovers_transient_fault(self):
        failures = {"left": 1}

        def flaky(start, end):
            if start == 0 and failures["left"] > 0:
                failures["left"] -= 1
                raise RuntimeError("transient")

        with ChunkedExecutor(2) as ex:
            ex.run(
                1024,
                512,
                flaky,
                retry_policy=RetryPolicy(max_retries=2),
                ranges=plan_chunks(1024, 512, 2, min_chunk=1),
            )
            assert ex.last_run_retries == 1

    def test_deadline_enforced_on_shard_plan(self):
        with ChunkedExecutor(2) as ex:
            with pytest.raises(DeadlineError):
                ex.run(
                    1024,
                    512,
                    lambda s, e: time.sleep(0.01),
                    deadline=time.monotonic() - 0.001,
                    ranges=[(0, 512), (512, 1024)],
                )

    def test_fail_fast_cancels_pending_shards(self):
        started = threading.Event()

        def poisoned(start, end):
            if start == 0:
                started.wait(1.0)
                raise RuntimeError("poisoned batch")
            if start < 4096:
                started.set()
                time.sleep(0.02)

        with ChunkedExecutor(2) as ex:
            with pytest.raises(RuntimeError):
                ex.run(
                    65536,
                    1024,
                    poisoned,
                    ranges=chunk_ranges(65536, 1024),
                )
            # With 2 workers over 64 chunks, the failure sweeps the
            # queue: most chunks are cancelled (then re-run inline,
            # where the first re-raises without a retry budget).
            assert ex.last_run_cancelled > 0

    def test_timeline_records_on_pool_path(self):
        timeline = ShardTimeline()
        with ChunkedExecutor(2) as ex:
            ex.run(
                2048,
                512,
                lambda s, e: None,
                ranges=chunk_ranges(2048, 512),
                timeline=timeline,
            )
        assert len(timeline.records) == 4
        _covers(sorted((r.start, r.end) for r in timeline.records), 2048)


class TestLastRunSnapshotSemantics:
    """``last_run_retries`` / ``last_run_cancelled`` are a *snapshot* of
    the most recently finished run — concurrent runs on a shared
    executor never blend their counters (each run carries its own
    ``_RunState``; the attribute is overwritten, not accumulated)."""

    def test_concurrent_runs_do_not_blend_counters(self):
        ex = ChunkedExecutor(2)
        barrier = threading.Barrier(2, timeout=5.0)

        def make_flaky(budget):
            remaining = {"n": budget}
            entered = {"done": False}

            def fn(start, end):
                if not entered["done"]:
                    # Rendezvous once: both runs are in-flight on the
                    # shared executor before either starts retrying.
                    entered["done"] = True
                    barrier.wait()
                if remaining["n"] > 0:
                    remaining["n"] -= 1
                    raise RuntimeError("transient")

            return fn

        def launch(budget, errors):
            try:
                ex.run(
                    256,
                    256,
                    make_flaky(budget),
                    retry_policy=RetryPolicy(max_retries=5),
                )
            except Exception as error:  # pragma: no cover - defensive
                errors.append(error)

        errors = []
        threads = [
            threading.Thread(target=launch, args=(budget, errors))
            for budget in (2, 3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        ex.close()
        assert not errors
        # A blended (accumulating) counter would read 5; the snapshot
        # must be exactly one run's count.
        assert ex.last_run_retries in (2, 3)

    def test_snapshot_updates_on_each_finish(self):
        with ChunkedExecutor(1) as ex:
            remaining = {"n": 2}

            def flaky(start, end):
                if remaining["n"] > 0:
                    remaining["n"] -= 1
                    raise RuntimeError("transient")

            ex.run(4, 4, flaky, retry_policy=RetryPolicy(max_retries=3))
            assert ex.last_run_retries == 2
            ex.run(4, 4, lambda s, e: None)
            assert ex.last_run_retries == 0
