"""Tests for validity checking and the reference inference oracle."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from scipy.stats import norm

from repro.spn import (
    Categorical,
    Gaussian,
    InvalidSPNError,
    Product,
    Sum,
    assert_valid,
    check_completeness,
    check_decomposability,
    classify,
    is_valid,
    likelihood,
    log_likelihood,
)

from ..conftest import make_discrete_spn, make_gaussian_spn, make_shared_spn
from repro.testing.generators import random_spns


class TestValidity:
    def test_valid_spn(self):
        assert is_valid(make_gaussian_spn())
        assert_valid(make_discrete_spn())
        assert_valid(make_shared_spn())

    def test_incomplete_sum_detected(self):
        bad = Sum([Gaussian(0, 0, 1), Gaussian(1, 0, 1)], [0.5, 0.5])
        errors = check_completeness(bad)
        assert len(errors) == 1
        assert "scopes differ" in errors[0]
        with pytest.raises(InvalidSPNError):
            assert_valid(bad)

    def test_nondecomposable_product_detected(self):
        bad = Product([Gaussian(0, 0, 1), Gaussian(0, 1, 1)])
        errors = check_decomposability(bad)
        assert len(errors) == 1
        assert "overlap" in errors[0]
        assert not is_valid(bad)

    def test_nested_violation_found(self):
        inner = Product([Gaussian(0, 0, 1), Gaussian(0, 1, 1)])
        outer = Sum([inner, Product([Gaussian(0, 2, 1), Gaussian(0, 3, 1)])], [0.5, 0.5])
        assert not is_valid(outer)

    @settings(max_examples=30, deadline=None)
    @given(random_spns())
    def test_property_generated_spns_are_valid(self, spn_and_features):
        spn, _ = spn_and_features
        assert_valid(spn)


class TestJointInference:
    def test_hand_computed_mixture(self):
        spn = make_gaussian_spn()
        x = np.array([[0.5, 1.0]])
        expected = np.logaddexp(
            math.log(0.3) + norm.logpdf(0.5, 0, 1) + norm.logpdf(1.0, 1, 2),
            math.log(0.7) + norm.logpdf(0.5, 2, 1) + norm.logpdf(1.0, -1, 1),
        )
        assert log_likelihood(spn, x)[0] == pytest.approx(expected)

    def test_single_leaf(self):
        g = Gaussian(0, 0.0, 1.0)
        x = np.array([[1.3]])
        assert log_likelihood(g, x)[0] == pytest.approx(norm.logpdf(1.3))

    def test_likelihood_is_exp(self):
        spn = make_gaussian_spn()
        x = np.random.default_rng(0).normal(size=(10, 2))
        np.testing.assert_allclose(
            likelihood(spn, x), np.exp(log_likelihood(spn, x))
        )

    def test_input_shape_validated(self):
        with pytest.raises(ValueError):
            log_likelihood(make_gaussian_spn(), np.zeros(3))

    def test_shared_subgraph_evaluated_consistently(self):
        spn = make_shared_spn()
        x = np.array([[0.1, -0.3], [1.0, 2.0]])
        shared = spn.children[0].children[0]
        expected0 = np.logaddexp(
            math.log(0.4)
            + shared.log_density(x[:, 0])
            + norm.logpdf(x[:, 1], 1.0, 1.0),
            math.log(0.6)
            + shared.log_density(x[:, 0])
            + norm.logpdf(x[:, 1], -2.0, 0.5),
        )
        np.testing.assert_allclose(log_likelihood(spn, x), expected0)

    def test_discrete_joint_probabilities_sum_to_one(self):
        """Total probability over the full discrete domain is 1."""
        spn = Sum(
            [
                Product([Categorical(0, [0.2, 0.8]), Categorical(1, [0.5, 0.5])]),
                Product([Categorical(0, [0.9, 0.1]), Categorical(1, [0.3, 0.7])]),
            ],
            [0.4, 0.6],
        )
        grid = np.array([[a, b] for a in (0, 1) for b in (0, 1)], dtype=float)
        assert likelihood(spn, grid).sum() == pytest.approx(1.0)

    def test_gaussian_likelihood_integrates_to_one(self):
        g = Gaussian(0, 0.3, 0.9)
        xs = np.linspace(-10, 10, 4001).reshape(-1, 1)
        integral = np.trapezoid(likelihood(g, xs), xs[:, 0])
        assert integral == pytest.approx(1.0, abs=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(random_spns())
    def test_property_log_likelihood_finite_in_support(self, spn_and_features):
        spn, num_features = spn_and_features
        rng = np.random.default_rng(0)
        # Values inside every leaf kind's comfortable support.
        x = rng.uniform(0.0, 1.9, size=(16, num_features))
        ll = log_likelihood(spn, x)
        assert np.all(np.isfinite(ll))


class TestMarginalInference:
    def test_all_marginalized_gives_probability_one(self):
        spn = make_gaussian_spn()
        x = np.full((3, 2), np.nan)
        np.testing.assert_allclose(log_likelihood(spn, x), 0.0, atol=1e-12)

    def test_partial_marginalization(self):
        spn = make_gaussian_spn()
        x = np.array([[0.5, np.nan]])
        expected = np.logaddexp(
            math.log(0.3) + norm.logpdf(0.5, 0, 1),
            math.log(0.7) + norm.logpdf(0.5, 2, 1),
        )
        assert log_likelihood(spn, x)[0] == pytest.approx(expected)

    def test_explicit_marginal_flag(self):
        spn = make_gaussian_spn()
        x = np.array([[0.5, 1.0]])
        # With marginal=True but no NaNs, results match the joint query.
        np.testing.assert_allclose(
            log_likelihood(spn, x, marginal=True), log_likelihood(spn, x)
        )

    def test_marginal_autodetected(self):
        spn = make_gaussian_spn()
        x = np.array([[np.nan, 1.0]])
        result = log_likelihood(spn, x)  # no flag
        assert np.isfinite(result[0])


class TestClassify:
    def test_argmax_of_class_likelihoods(self):
        class0 = Product([Gaussian(0, -2.0, 0.5), Gaussian(1, -2.0, 0.5)])
        class1 = Product([Gaussian(0, 2.0, 0.5), Gaussian(1, 2.0, 0.5)])
        x = np.array([[-2.0, -2.1], [2.2, 1.9]])
        np.testing.assert_array_equal(classify([class0, class1], x), [0, 1])
