"""Tests for MPE inference and ancestral sampling."""

import numpy as np
import pytest

from repro.spn import Categorical, Gaussian, Histogram, Product, Sum, log_likelihood
from repro.spn.mpe import max_log_likelihood, mpe
from repro.spn.sampling import conditional_sample, sample

from ..conftest import make_discrete_spn, make_gaussian_spn


class TestMaxLogLikelihood:
    def test_fully_observed_leaf_equals_density(self):
        g = Gaussian(0, 1.0, 2.0)
        x = np.array([[0.5]])
        assert max_log_likelihood(g, x)[0] == pytest.approx(
            log_likelihood(g, x)[0]
        )

    def test_sum_takes_max_not_sum(self):
        spn = Sum([Gaussian(0, -2.0, 1.0), Gaussian(0, 2.0, 1.0)], [0.5, 0.5])
        x = np.array([[2.0]])
        expected = np.log(0.5) + log_likelihood(Gaussian(0, 2.0, 1.0), x)[0]
        assert max_log_likelihood(spn, x)[0] == pytest.approx(expected)
        # And it is a lower bound on the (marginal) log likelihood.
        assert max_log_likelihood(spn, x)[0] <= log_likelihood(spn, x)[0]

    def test_missing_leaf_scores_its_mode(self):
        g = Gaussian(0, 3.0, 0.5)
        x = np.array([[np.nan]])
        assert max_log_likelihood(g, x)[0] == pytest.approx(
            g.log_density(np.array([3.0]))[0]
        )

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            max_log_likelihood(make_gaussian_spn(), np.zeros(3))


class TestMPE:
    def test_fully_observed_rows_unchanged(self, rng):
        spn = make_gaussian_spn()
        x = rng.normal(size=(10, 2))
        completed, scores = mpe(spn, x)
        np.testing.assert_array_equal(completed, x)
        np.testing.assert_allclose(scores, max_log_likelihood(spn, x))

    def test_gaussian_completion_uses_branch_mean(self):
        spn = make_gaussian_spn()
        # Feature 0 strongly indicates the second mixture component
        # (mean 2.0); the MPE completion of feature 1 must be that
        # component's mean for feature 1 (-1.0).
        x = np.array([[2.0, np.nan]])
        completed, _ = mpe(spn, x)
        assert completed[0, 1] == pytest.approx(-1.0)
        x = np.array([[0.0, np.nan]])
        completed, _ = mpe(spn, x)
        assert completed[0, 1] == pytest.approx(1.0)

    def test_categorical_completion_is_argmax(self):
        spn = Product([Categorical(0, [0.1, 0.8, 0.1]), Gaussian(1, 0.0, 1.0)])
        completed, _ = mpe(spn, np.array([[np.nan, 0.0]]))
        assert completed[0, 0] == 1.0

    def test_histogram_completion_is_mode_bucket_center(self):
        spn = Product(
            [Histogram(0, [0, 1, 2, 3], [0.1, 0.7, 0.2]), Gaussian(1, 0, 1)]
        )
        completed, _ = mpe(spn, np.array([[np.nan, 0.0]]))
        assert completed[0, 0] == pytest.approx(1.5)

    def test_completion_has_no_nans_and_consistent_score(self, rng):
        spn = make_gaussian_spn()
        x = rng.normal(size=(20, 2))
        x[::2, 0] = np.nan
        x[::3, 1] = np.nan
        completed, scores = mpe(spn, x)
        assert not np.isnan(completed).any()
        # The returned score bounds the actual likelihood of the completion.
        actual = log_likelihood(spn, completed)
        assert np.all(actual >= scores - 1e-9)

    def test_all_missing(self):
        spn = make_gaussian_spn()
        completed, scores = mpe(spn, np.full((1, 2), np.nan))
        # Heaviest component is the second (w=0.7): means (2.0, -1.0).
        np.testing.assert_allclose(completed[0], [2.0, -1.0])


class TestSampling:
    def test_shapes_and_no_nans(self, rng):
        spn = make_gaussian_spn()
        samples = sample(spn, 50, rng)
        assert samples.shape == (50, 2)
        assert not np.isnan(samples).any()

    def test_sample_statistics_match_mixture(self, rng):
        spn = make_gaussian_spn()
        samples = sample(spn, 6000, rng)
        # Mixture mean of feature 0: 0.3*0 + 0.7*2 = 1.4.
        assert samples[:, 0].mean() == pytest.approx(1.4, abs=0.1)
        assert samples[:, 1].mean() == pytest.approx(0.3 * 1.0 - 0.7 * 1.0, abs=0.1)

    def test_discrete_samples_in_support(self, rng):
        spn = make_discrete_spn()
        samples = sample(spn, 300, rng)
        assert set(np.unique(samples[:, 0])) <= {0.0, 1.0, 2.0}
        assert np.all((samples[:, 1] >= 0.0) & (samples[:, 1] < 4.0))

    def test_categorical_frequencies(self, rng):
        spn = Categorical(0, [0.2, 0.8])
        samples = sample(spn, 5000, rng)
        assert (samples[:, 0] == 1.0).mean() == pytest.approx(0.8, abs=0.03)

    def test_conditional_sampling_respects_evidence(self, rng):
        spn = make_gaussian_spn()
        evidence = np.array([[2.0, np.nan]] * 500)
        completed = conditional_sample(spn, evidence, rng)
        np.testing.assert_array_equal(completed[:, 0], 2.0)
        assert not np.isnan(completed).any()
        # Feature 0 = 2.0 makes the second component (~w 0.96 posterior)
        # dominate; sampled feature 1 should center near its mean -1.0.
        assert completed[:, 1].mean() == pytest.approx(-1.0, abs=0.3)

    def test_conditional_with_no_evidence_matches_prior(self, rng):
        spn = make_gaussian_spn()
        evidence = np.full((4000, 2), np.nan)
        completed = conditional_sample(spn, evidence, rng)
        assert completed[:, 0].mean() == pytest.approx(1.4, abs=0.15)

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            conditional_sample(make_gaussian_spn(), np.zeros(3))

    def test_reproducible_with_seeded_rng(self):
        spn = make_gaussian_spn()
        a = sample(spn, 10, np.random.default_rng(3))
        b = sample(spn, 10, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)
