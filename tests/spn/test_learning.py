"""Tests for structure learning (LearnSPN) and EM weight learning."""

import numpy as np
import pytest

from repro.spn import (
    Categorical,
    Gaussian,
    Histogram,
    LearnSPNOptions,
    Product,
    Sum,
    assert_valid,
    em_weight_update,
    fit_leaf,
    independent_groups,
    kmeans,
    learn_spn,
    mean_log_likelihood,
    num_nodes,
)


@pytest.fixture
def two_cluster_data(rng):
    a = rng.normal(-3.0, 0.5, size=(150, 3))
    b = rng.normal(3.0, 0.5, size=(150, 3))
    return np.vstack([a, b])


class TestKMeans:
    def test_separates_clear_clusters(self, two_cluster_data, rng):
        labels = kmeans(two_cluster_data, 2, rng)
        first, second = labels[:150], labels[150:]
        assert len(np.unique(first)) == 1
        assert len(np.unique(second)) == 1
        assert first[0] != second[0]

    def test_handles_fewer_rows_than_clusters(self, rng):
        labels = kmeans(np.zeros((2, 2)), 4, rng)
        assert labels.shape == (2,)

    def test_no_empty_clusters(self, rng):
        data = rng.normal(size=(30, 2))
        labels = kmeans(data, 3, rng)
        assert set(np.unique(labels)) == {0, 1, 2}


class TestIndependenceSplit:
    def test_correlated_columns_grouped(self, rng):
        base = rng.normal(size=500)
        data = np.column_stack([base, base + rng.normal(scale=0.01, size=500),
                                rng.normal(size=500)])
        groups = independent_groups(data, threshold=0.5)
        assert sorted(map(sorted, groups)) == [[0, 1], [2]]

    def test_all_independent(self, rng):
        data = rng.normal(size=(500, 3))
        groups = independent_groups(data, threshold=0.5)
        assert len(groups) == 3

    def test_single_column(self):
        assert independent_groups(np.zeros((10, 1)), 0.5) == [[0]]

    def test_constant_column_handled(self, rng):
        data = np.column_stack([np.ones(100), rng.normal(size=100)])
        groups = independent_groups(data, threshold=0.5)
        assert len(groups) == 2


class TestFitLeaf:
    def test_gaussian_fit(self, rng):
        column = rng.normal(2.0, 0.5, size=1000)
        leaf = fit_leaf(column, 3, LearnSPNOptions(leaf_kind="gaussian"))
        assert isinstance(leaf, Gaussian)
        assert leaf.variable == 3
        assert leaf.mean == pytest.approx(2.0, abs=0.1)
        assert leaf.stdev == pytest.approx(0.5, abs=0.1)

    def test_gaussian_min_stdev(self):
        leaf = fit_leaf(np.ones(50), 0, LearnSPNOptions(leaf_kind="gaussian"))
        assert leaf.stdev >= LearnSPNOptions().min_stdev

    def test_categorical_fit(self, rng):
        column = rng.choice([0, 1, 2], p=[0.6, 0.3, 0.1], size=2000).astype(float)
        leaf = fit_leaf(column, 0, LearnSPNOptions(leaf_kind="categorical"))
        assert isinstance(leaf, Categorical)
        assert leaf.probabilities[0] == pytest.approx(0.6, abs=0.05)

    def test_histogram_fit(self, rng):
        column = rng.uniform(0, 10, size=500)
        options = LearnSPNOptions(leaf_kind="histogram", histogram_buckets=5)
        leaf = fit_leaf(column, 0, options)
        assert isinstance(leaf, Histogram)
        assert len(leaf.densities) == 5
        assert sum(leaf.densities) == pytest.approx(1.0)

    def test_auto_picks_categorical_for_small_ints(self, rng):
        column = rng.integers(0, 3, size=200).astype(float)
        leaf = fit_leaf(column, 0, LearnSPNOptions(leaf_kind="auto"))
        assert isinstance(leaf, Categorical)

    def test_auto_picks_gaussian_for_continuous(self, rng):
        column = rng.normal(size=200)
        leaf = fit_leaf(column, 0, LearnSPNOptions(leaf_kind="auto"))
        assert isinstance(leaf, Gaussian)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            fit_leaf(np.zeros(10), 0, LearnSPNOptions(leaf_kind="wat"))


class TestLearnSPN:
    def test_structure_is_valid(self, two_cluster_data):
        spn = learn_spn(two_cluster_data)
        assert_valid(spn)
        assert spn.scope == frozenset({0, 1, 2})

    def test_learns_mixture_for_clustered_data(self, two_cluster_data):
        spn = learn_spn(two_cluster_data)
        assert isinstance(spn, Sum)

    def test_beats_naive_single_gaussian_fit(self, two_cluster_data):
        spn = learn_spn(two_cluster_data)
        naive = Product(
            [
                fit_leaf(two_cluster_data[:, i], i, LearnSPNOptions())
                for i in range(3)
            ]
        )
        assert mean_log_likelihood(spn, two_cluster_data) > mean_log_likelihood(
            naive, two_cluster_data
        )

    def test_min_instances_forces_factorization(self, rng):
        data = rng.normal(size=(10, 3))
        spn = learn_spn(data, LearnSPNOptions(min_instances=50))
        assert_valid(spn)
        # With too few rows the result is a mixture of naive factorizations
        # (or a single one), never deeper.
        assert num_nodes(spn) <= 11

    def test_single_feature_gives_leaf_mixture(self, rng):
        data = rng.normal(size=(200, 1))
        spn = learn_spn(data)
        assert spn.scope == frozenset({0})

    def test_custom_variable_indices(self, rng):
        data = rng.normal(size=(100, 2))
        spn = learn_spn(data, variables=[5, 9])
        assert spn.scope == frozenset({5, 9})

    def test_deterministic_for_fixed_seed(self, two_cluster_data):
        from repro.spn import structurally_equal

        a = learn_spn(two_cluster_data, LearnSPNOptions(seed=3))
        b = learn_spn(two_cluster_data, LearnSPNOptions(seed=3))
        assert structurally_equal(a, b)


class TestEM:
    def test_em_improves_log_likelihood(self, two_cluster_data, rng):
        spn = learn_spn(two_cluster_data)
        # Perturb the weights away from the fitted values.
        for node in [spn] if isinstance(spn, Sum) else []:
            node.weights = [1.0 / len(node.weights)] * len(node.weights)
        before = mean_log_likelihood(spn, two_cluster_data)
        em_weight_update(spn, two_cluster_data, iterations=5)
        after = mean_log_likelihood(spn, two_cluster_data)
        assert after >= before - 1e-9

    def test_em_preserves_normalization(self, two_cluster_data):
        spn = learn_spn(two_cluster_data)
        em_weight_update(spn, two_cluster_data, iterations=2)
        from repro.spn import topological_order

        for node in topological_order(spn):
            if isinstance(node, Sum):
                assert sum(node.weights) == pytest.approx(1.0)

    def test_em_recovers_mixture_proportions(self, rng):
        data = np.concatenate(
            [rng.normal(-4, 0.5, size=900), rng.normal(4, 0.5, size=100)]
        ).reshape(-1, 1)
        spn = Sum([Gaussian(0, -4, 0.5), Gaussian(0, 4, 0.5)], [0.5, 0.5])
        em_weight_update(spn, data, iterations=10)
        assert spn.weights[0] == pytest.approx(0.9, abs=0.03)
