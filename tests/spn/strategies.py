"""Hypothesis strategies generating random valid SPNs."""

from hypothesis import strategies as st

from repro.spn import Categorical, Gaussian, Histogram, Product, Sum


@st.composite
def leaf_nodes(draw, variable: int):
    kind = draw(st.sampled_from(["gaussian", "categorical", "histogram"]))
    if kind == "gaussian":
        mean = draw(st.floats(-5.0, 5.0, allow_nan=False))
        stdev = draw(st.floats(0.1, 3.0, allow_nan=False))
        return Gaussian(variable, mean, stdev)
    if kind == "categorical":
        k = draw(st.integers(2, 5))
        raw = draw(
            st.lists(st.floats(0.05, 1.0, allow_nan=False), min_size=k, max_size=k)
        )
        return Categorical(variable, raw)
    buckets = draw(st.integers(2, 5))
    densities = draw(
        st.lists(
            st.floats(0.05, 1.0, allow_nan=False),
            min_size=buckets,
            max_size=buckets,
        )
    )
    bounds = [float(i) for i in range(buckets + 1)]
    total = sum(densities)
    return Histogram(variable, bounds, [d / total for d in densities])


@st.composite
def random_spns(draw, max_features: int = 4, max_depth: int = 3):
    """A random complete & decomposable SPN over ``num_features`` variables."""
    num_features = draw(st.integers(2, max_features))
    variables = tuple(range(num_features))

    def build(scope, depth):
        if len(scope) == 1:
            return draw(leaf_nodes(scope[0]))
        if depth >= max_depth:
            return Product([draw(leaf_nodes(v)) for v in scope])
        kind = draw(st.sampled_from(["sum", "product"]))
        if kind == "sum":
            arity = draw(st.integers(2, 3))
            children = [build(scope, depth + 1) for _ in range(arity)]
            weights = draw(
                st.lists(
                    st.floats(0.1, 1.0, allow_nan=False),
                    min_size=arity,
                    max_size=arity,
                )
            )
            return Sum(children, weights)
        split = draw(st.integers(1, len(scope) - 1))
        left, right = scope[:split], scope[split:]
        return Product([build(left, depth + 1), build(right, depth + 1)])

    return build(variables, 0), num_features
