"""Tests for SPN node classes and graph utilities."""

import numpy as np
import pytest
from scipy.stats import norm

from repro.spn import (
    Categorical,
    Gaussian,
    GraphStatistics,
    Histogram,
    Product,
    Sum,
    depth,
    leaves,
    num_nodes,
    structurally_equal,
    topological_order,
)

from ..conftest import make_gaussian_spn, make_shared_spn


class TestLeafConstruction:
    def test_gaussian_validation(self):
        with pytest.raises(ValueError):
            Gaussian(0, 0.0, 0.0)
        with pytest.raises(ValueError):
            Gaussian(0, 0.0, -1.0)

    def test_gaussian_log_density_matches_scipy(self):
        g = Gaussian(0, 1.5, 0.7)
        xs = np.linspace(-3, 5, 40)
        np.testing.assert_allclose(
            g.log_density(xs), norm.logpdf(xs, 1.5, 0.7), rtol=1e-12
        )

    def test_categorical_normalizes(self):
        c = Categorical(0, [2.0, 1.0, 1.0])
        assert c.probabilities == pytest.approx([0.5, 0.25, 0.25])

    def test_categorical_validation(self):
        with pytest.raises(ValueError):
            Categorical(0, [])
        with pytest.raises(ValueError):
            Categorical(0, [-0.5, 1.5])
        with pytest.raises(ValueError):
            Categorical(0, [0.0, 0.0])

    def test_categorical_log_density(self):
        c = Categorical(0, [0.25, 0.75])
        np.testing.assert_allclose(
            c.log_density(np.array([0.0, 1.0])), np.log([0.25, 0.75])
        )

    def test_histogram_validation(self):
        with pytest.raises(ValueError):
            Histogram(0, [0, 1], [0.5, 0.5])  # bounds/density mismatch
        with pytest.raises(ValueError):
            Histogram(0, [0, 0, 1], [0.5, 0.5])  # non-increasing bounds
        with pytest.raises(ValueError):
            Histogram(0, [0, 1, 2], [-0.5, 1.5])

    def test_histogram_in_range_lookup(self):
        h = Histogram(0, [0, 1, 2], [0.25, 0.75])
        np.testing.assert_allclose(
            h.log_density(np.array([0.5, 1.5])), np.log([0.25, 0.75])
        )

    def test_histogram_out_of_range_epsilon(self):
        h = Histogram(0, [0, 1, 2], [0.25, 0.75])
        values = h.log_density(np.array([-1.0, 5.0]))
        np.testing.assert_allclose(values, np.log(Histogram.EPSILON))

    def test_node_ids_unique(self):
        a, b = Gaussian(0, 0, 1), Gaussian(0, 0, 1)
        assert a.id != b.id


class TestInnerNodes:
    def test_sum_weight_normalization(self):
        s = Sum([Gaussian(0, 0, 1), Gaussian(0, 1, 1)], [2.0, 6.0])
        assert s.weights == pytest.approx([0.25, 0.75])

    def test_sum_validation(self):
        with pytest.raises(ValueError):
            Sum([], [])
        with pytest.raises(ValueError):
            Sum([Gaussian(0, 0, 1)], [0.5, 0.5])
        with pytest.raises(ValueError):
            Sum([Gaussian(0, 0, 1)], [-1.0])
        with pytest.raises(ValueError):
            Sum([Gaussian(0, 0, 1)], [0.0])

    def test_product_validation(self):
        with pytest.raises(ValueError):
            Product([])


class TestScope:
    def test_leaf_scope(self):
        assert Gaussian(3, 0, 1).scope == frozenset({3})

    def test_inner_scopes(self):
        spn = make_gaussian_spn()
        assert spn.scope == frozenset({0, 1})
        assert spn.children[0].scope == frozenset({0, 1})

    def test_scope_cached_on_shared_structure(self):
        spn = make_shared_spn()
        first = spn.scope
        assert spn._scope is not None
        assert spn.scope is first  # cached object returned


class TestGraphUtilities:
    def test_topological_order_children_first(self):
        spn = make_gaussian_spn()
        order = topological_order(spn)
        position = {id(node): i for i, node in enumerate(order)}
        for node in order:
            for child in node.children:
                assert position[id(child)] < position[id(node)]
        assert order[-1] is spn

    def test_topological_order_visits_shared_once(self):
        spn = make_shared_spn()
        order = topological_order(spn)
        assert len(order) == len({id(n) for n in order})
        assert num_nodes(spn) == 6  # shared leaf counted once

    def test_leaves_and_counts(self):
        spn = make_gaussian_spn()
        assert num_nodes(spn) == 7
        assert len(leaves(spn)) == 4

    def test_depth(self):
        spn = make_gaussian_spn()
        assert depth(spn) == 2
        assert depth(Gaussian(0, 0, 1)) == 0

    def test_statistics(self):
        stats = GraphStatistics(make_gaussian_spn())
        assert stats.num_nodes == 7
        assert stats.num_sums == 1
        assert stats.num_products == 2
        assert stats.num_leaves == 4
        assert stats.num_gaussians == 4
        assert stats.gaussian_share == pytest.approx(4 / 7)
        assert stats.num_features == 2


class TestStructuralEquality:
    def test_equal_copies(self):
        assert structurally_equal(make_gaussian_spn(), make_gaussian_spn())

    def test_weight_difference_detected(self):
        a = make_gaussian_spn()
        b = make_gaussian_spn()
        b.weights = [0.5, 0.5]
        assert not structurally_equal(a, b)

    def test_parameter_difference_detected(self):
        a = make_gaussian_spn()
        b = make_gaussian_spn()
        b.children[0].children[0].mean = 99.0
        assert not structurally_equal(a, b)

    def test_type_difference_detected(self):
        assert not structurally_equal(Gaussian(0, 0, 1), Categorical(0, [0.5, 0.5]))

    def test_sharing_respected(self):
        assert structurally_equal(make_shared_spn(), make_shared_spn())
