"""Tests for the binary SPN serialization format."""

import io

import numpy as np
import pytest
from hypothesis import given, settings

from repro.spn import (
    Categorical,
    Gaussian,
    Histogram,
    JointProbability,
    Product,
    SerializationError,
    Sum,
    deserialize,
    deserialize_from_file,
    log_likelihood,
    serialize,
    serialize_to_file,
    structurally_equal,
)

from ..conftest import make_discrete_spn, make_gaussian_spn, make_shared_spn
from repro.testing.generators import random_spns


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory", [make_gaussian_spn, make_discrete_spn, make_shared_spn]
    )
    def test_structural_round_trip(self, factory):
        spn = factory()
        restored, _ = deserialize(serialize(spn, JointProbability()))
        assert structurally_equal(spn, restored)

    def test_query_round_trip(self):
        query = JointProbability(batch_size=512, input_dtype="f64", support_marginal=True)
        _, restored = deserialize(serialize(make_gaussian_spn(), query))
        assert restored.batch_size == 512
        assert restored.input_dtype == "f64"
        assert restored.support_marginal

    def test_single_leaf_spn(self):
        spn = Gaussian(0, 1.0, 2.0)
        restored, _ = deserialize(serialize(spn, JointProbability()))
        assert structurally_equal(spn, restored)

    def test_dag_sharing_preserved(self):
        spn = make_shared_spn()
        restored, _ = deserialize(serialize(spn, JointProbability()))
        # The shared leaf must be the *same object* in both branches.
        left = restored.children[0].children[0]
        right = restored.children[1].children[0]
        assert left is right

    def test_semantics_preserved(self, rng):
        spn = make_gaussian_spn()
        restored, _ = deserialize(serialize(spn, JointProbability()))
        x = rng.normal(size=(20, 2))
        np.testing.assert_allclose(
            log_likelihood(spn, x), log_likelihood(restored, x)
        )

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "model.spnb")
        spn = make_discrete_spn()
        serialize_to_file(spn, JointProbability(batch_size=7), path)
        restored, query = deserialize_from_file(path)
        assert structurally_equal(spn, restored)
        assert query.batch_size == 7

    def test_stream_variant(self):
        buffer = io.BytesIO()
        serialize(make_gaussian_spn(), JointProbability(), buffer)
        buffer.seek(0)
        restored, _ = deserialize(buffer)
        assert structurally_equal(make_gaussian_spn(), restored)

    @settings(max_examples=30, deadline=None)
    @given(random_spns())
    def test_property_round_trip(self, spn_and_features):
        spn, _ = spn_and_features
        restored, _ = deserialize(serialize(spn, JointProbability()))
        assert structurally_equal(spn, restored)


class TestErrors:
    def test_bad_magic(self):
        payload = serialize(make_gaussian_spn(), JointProbability())
        with pytest.raises(SerializationError):
            deserialize(b"XXXX" + payload[4:])

    def test_bad_version(self):
        payload = bytearray(serialize(make_gaussian_spn(), JointProbability()))
        payload[4] = 99
        with pytest.raises(SerializationError):
            deserialize(bytes(payload))

    def test_truncated_payload(self):
        payload = serialize(make_gaussian_spn(), JointProbability())
        with pytest.raises(SerializationError):
            deserialize(payload[: len(payload) // 2])

    def test_unknown_tag(self):
        payload = bytearray(serialize(Gaussian(0, 0.0, 1.0), JointProbability()))
        # The first node tag byte sits right after header+query+count.
        tag_offset = 8 + 19 + 4
        assert payload[tag_offset] == 1  # gaussian
        payload[tag_offset] = 77
        with pytest.raises(SerializationError):
            deserialize(bytes(payload))

    def test_empty_payload(self):
        with pytest.raises(SerializationError):
            deserialize(b"")
