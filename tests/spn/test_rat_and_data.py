"""Tests for RAT-SPN construction and the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import (
    ImageDatasetConfig,
    SpeakerDatasetConfig,
    generate_image_dataset,
    generate_speaker_dataset,
    train_speaker_spns,
)
from repro.spn import (
    GraphStatistics,
    RatSpnConfig,
    Sum,
    assert_valid,
    build_rat_spn,
    classify,
    log_likelihood,
    num_nodes,
    topological_order,
    train_rat_spn,
)


SMALL_RAT = RatSpnConfig(
    num_features=16,
    num_classes=3,
    depth=2,
    num_repetitions=2,
    num_sums=3,
    num_input_distributions=2,
    seed=1,
)


class TestRatConstruction:
    def test_one_root_per_class(self):
        roots = build_rat_spn(SMALL_RAT)
        assert len(roots) == 3
        assert all(isinstance(r, Sum) for r in roots)

    def test_roots_are_valid_spns(self):
        for root in build_rat_spn(SMALL_RAT):
            assert_valid(root)
            assert root.scope == frozenset(range(16))

    def test_classes_share_structure(self):
        roots = build_rat_spn(SMALL_RAT)
        assert roots[0].children == roots[1].children  # same child objects
        assert roots[0].weights != roots[1].weights

    def test_deterministic_by_seed(self):
        from repro.spn import structurally_equal

        a = build_rat_spn(SMALL_RAT)
        b = build_rat_spn(SMALL_RAT)
        assert structurally_equal(a[0], b[0])

    def test_size_scales_with_repetitions(self):
        small = build_rat_spn(SMALL_RAT)
        import dataclasses

        bigger_cfg = dataclasses.replace(SMALL_RAT, num_repetitions=4)
        bigger = build_rat_spn(bigger_cfg)
        assert num_nodes(bigger[0]) > num_nodes(small[0])

    def test_depth_zero_rejected(self):
        import dataclasses

        with pytest.raises(ValueError):
            build_rat_spn(dataclasses.replace(SMALL_RAT, depth=0))

    def test_gaussian_leaves_only(self):
        from repro.spn import Gaussian, leaves

        roots = build_rat_spn(SMALL_RAT)
        assert all(isinstance(l, Gaussian) for l in leaves(roots[0]))


class TestRatTraining:
    def test_training_improves_class_separation(self, rng):
        import dataclasses

        cfg = dataclasses.replace(
            SMALL_RAT, num_repetitions=4, num_sums=4, num_input_distributions=4
        )
        roots = build_rat_spn(cfg)
        centers = rng.normal(0, 2.0, size=(3, 16))
        labels = np.repeat(np.arange(3), 60)
        data = centers[labels] + rng.normal(0, 0.4, size=(180, 16))
        untrained = (classify(roots, data) == labels).mean()
        train_rat_spn(roots, data, labels, em_iterations=3)
        accuracy = (classify(roots, data) == labels).mean()
        assert accuracy > 0.8
        assert accuracy >= untrained

    def test_training_keeps_validity(self, rng):
        roots = build_rat_spn(SMALL_RAT)
        data = rng.normal(size=(90, 16))
        labels = np.repeat(np.arange(3), 30)
        train_rat_spn(roots, data, labels)
        for root in roots:
            assert_valid(root)
            total = sum(root.weights)
            assert total == pytest.approx(1.0)


class TestSpeakerData:
    def test_shapes_and_dtypes(self):
        cfg = SpeakerDatasetConfig(
            num_speakers=2,
            train_samples_per_speaker=50,
            clean_samples=40,
            noisy_samples=30,
        )
        ds = generate_speaker_dataset(cfg)
        assert len(ds.train) == 2
        assert ds.train[0].shape == (50, 26)
        assert ds.clean.shape == (40, 26)
        assert ds.clean.dtype == np.float32
        assert ds.noisy.shape == (30, 26)
        assert ds.clean_labels.shape == (40,)

    def test_noisy_split_has_missing_features(self):
        cfg = SpeakerDatasetConfig(
            num_speakers=2, train_samples_per_speaker=50,
            clean_samples=10, noisy_samples=200,
        )
        ds = generate_speaker_dataset(cfg)
        frac = np.isnan(ds.noisy).mean()
        assert frac == pytest.approx(cfg.noise_missing_fraction, abs=0.05)
        assert not np.isnan(ds.clean).any()

    def test_reproducible(self):
        cfg = SpeakerDatasetConfig(num_speakers=2, clean_samples=20, noisy_samples=20)
        a = generate_speaker_dataset(cfg)
        b = generate_speaker_dataset(cfg)
        np.testing.assert_array_equal(a.clean, b.clean)

    def test_trained_spns_classify_clean_speech(self):
        cfg = SpeakerDatasetConfig(
            num_speakers=3,
            train_samples_per_speaker=200,
            clean_samples=150,
            noisy_samples=10,
        )
        ds = generate_speaker_dataset(cfg)
        spns = train_speaker_spns(ds)
        for spn in spns:
            assert_valid(spn)
            assert GraphStatistics(spn).num_features == 26
        accuracy = (
            classify(spns, ds.clean.astype(np.float64)) == ds.clean_labels
        ).mean()
        assert accuracy > 0.9

    def test_marginalized_classification_still_works(self):
        cfg = SpeakerDatasetConfig(
            num_speakers=2,
            train_samples_per_speaker=200,
            clean_samples=10,
            noisy_samples=150,
            noise_missing_fraction=0.2,
        )
        ds = generate_speaker_dataset(cfg)
        spns = train_speaker_spns(ds)
        scores = np.stack(
            [log_likelihood(s, ds.noisy.astype(np.float64)) for s in spns], axis=1
        )
        accuracy = (np.argmax(scores, axis=1) == ds.noisy_labels).mean()
        assert accuracy > 0.8


class TestImageData:
    def test_shapes(self):
        cfg = ImageDatasetConfig(num_classes=4, side=6, train_per_class=10, test_samples=20)
        ds = generate_image_dataset(cfg)
        assert ds.train.shape == (40, 36)
        assert ds.test.shape == (20, 36)
        assert set(np.unique(ds.train_labels)) == {0, 1, 2, 3}

    def test_classes_are_separable(self):
        cfg = ImageDatasetConfig(num_classes=3, side=8, train_per_class=30, test_samples=60)
        ds = generate_image_dataset(cfg)
        # Nearest-prototype classification on the training means.
        means = np.stack(
            [ds.train[ds.train_labels == c].mean(axis=0) for c in range(3)]
        )
        dists = ((ds.test[:, None, :] - means[None]) ** 2).sum(axis=2)
        accuracy = (np.argmin(dists, axis=1) == ds.test_labels).mean()
        assert accuracy > 0.9

    def test_reproducible(self):
        cfg = ImageDatasetConfig(test_samples=10)
        np.testing.assert_array_equal(
            generate_image_dataset(cfg).test, generate_image_dataset(cfg).test
        )
