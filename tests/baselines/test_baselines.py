"""Tests for the SPFlow-Python, TF-graph and tensorized-RAT baselines."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.baselines import (
    GPUSession,
    MarginalizationUnsupported,
    Session,
    TensorizedRatExecutor,
    TensorizedRatGPU,
    log_likelihood_batched,
    log_likelihood_python,
    translate_to_graph,
)
from repro.spn import (
    JointProbability,
    RatSpnConfig,
    build_rat_spn,
    log_likelihood,
)

from ..conftest import make_discrete_spn, make_gaussian_spn, make_shared_spn
from repro.testing.generators import random_spns


class TestPythonInterpreter:
    @pytest.mark.parametrize(
        "factory", [make_gaussian_spn, make_discrete_spn, make_shared_spn]
    )
    def test_matches_reference(self, factory, rng):
        spn = factory()
        x = np.column_stack(
            [rng.integers(0, 3, size=30), rng.uniform(0, 3.9, size=30)]
        ).astype(np.float64)
        np.testing.assert_allclose(
            log_likelihood_python(spn, x), log_likelihood(spn, x), rtol=1e-10
        )

    def test_marginalization(self, rng):
        spn = make_gaussian_spn()
        x = rng.normal(size=(20, 2))
        x[::2, 1] = np.nan
        np.testing.assert_allclose(
            log_likelihood_python(spn, x), log_likelihood(spn, x), rtol=1e-10
        )

    def test_zero_probability_categorical(self):
        from repro.spn import Categorical, Product

        spn = Product([Categorical(0, [1.0, 0.0]), Categorical(1, [0.5, 0.5])])
        x = np.array([[1.0, 0.0]])
        assert log_likelihood_python(spn, x)[0] == -np.inf

    @settings(max_examples=20, deadline=None)
    @given(random_spns())
    def test_property_matches_reference(self, spn_and_features):
        spn, num_features = spn_and_features
        rng = np.random.default_rng(7)
        x = rng.uniform(0.0, 1.9, size=(8, num_features))
        np.testing.assert_allclose(
            log_likelihood_python(spn, x), log_likelihood(spn, x), rtol=1e-9
        )


class TestBatchedInterpreter:
    def test_matches_reference(self, rng):
        spn = make_gaussian_spn()
        x = rng.normal(size=(50, 2))
        np.testing.assert_allclose(
            log_likelihood_batched(spn, x), log_likelihood(spn, x), rtol=1e-9
        )

    def test_marginal(self, rng):
        spn = make_gaussian_spn()
        x = rng.normal(size=(20, 2))
        x[::3, 0] = np.nan
        np.testing.assert_allclose(
            log_likelihood_batched(spn, x), log_likelihood(spn, x), rtol=1e-9
        )


class TestTFGraph:
    def test_translation_produces_primitive_ops(self):
        graph = translate_to_graph(make_gaussian_spn())
        kinds = {op.kind for op in graph.ops}
        # Gaussians expand into primitive arithmetic, not fused log-pdfs.
        assert {"sub_scalar", "div_scalar", "square", "mul_scalar", "add_scalar"} <= kinds
        assert "stack" in kinds and "reduce_logsumexp" in kinds
        # 4 gaussians x 5 + 2 gathers + 2 products + sum(3) = 27 ops.
        assert graph.num_ops == 27

    def test_session_matches_reference(self, rng):
        spn = make_gaussian_spn()
        x = rng.normal(size=(40, 2))
        session = Session(translate_to_graph(spn))
        np.testing.assert_allclose(session.run(x), log_likelihood(spn, x), rtol=1e-9)

    def test_discrete_graph_matches_reference(self, rng):
        spn = make_discrete_spn()
        x = np.column_stack(
            [rng.integers(0, 3, size=25), rng.uniform(-0.5, 4.5, size=25)]
        ).astype(np.float64)
        session = Session(translate_to_graph(spn))
        np.testing.assert_allclose(session.run(x), log_likelihood(spn, x), rtol=1e-9)

    def test_marginalization_unsupported(self, rng):
        session = Session(translate_to_graph(make_gaussian_spn()))
        x = rng.normal(size=(5, 2))
        x[0, 0] = np.nan
        with pytest.raises(MarginalizationUnsupported):
            session.run(x)

    def test_feed_shape_validated(self):
        session = Session(translate_to_graph(make_gaussian_spn()))
        with pytest.raises(ValueError):
            session.run(np.zeros((4, 3)))

    def test_ops_executed_counter(self, rng):
        graph = translate_to_graph(make_gaussian_spn())
        session = Session(graph)
        session.run(rng.normal(size=(5, 2)))
        assert session.ops_executed == graph.num_ops

    def test_simulated_time_includes_dispatch_model(self, rng):
        graph = translate_to_graph(make_gaussian_spn())
        session = Session(graph)
        session.run(rng.normal(size=(5, 2)))
        assert session.last_simulated_seconds is not None
        assert (
            session.last_simulated_seconds
            >= graph.num_ops * session.runtime_model.per_op_overhead
        )

    def test_gpu_session_timing(self, rng):
        graph = translate_to_graph(make_gaussian_spn())
        cpu = Session(graph)
        gpu = GPUSession(graph)
        x = rng.normal(size=(50, 2))
        np.testing.assert_allclose(gpu.run(x), cpu.run(x))
        # Per-node graphs are launch-bound on GPU: slower than TF-CPU.
        assert gpu.last_simulated_seconds > cpu.last_simulated_seconds

    @settings(max_examples=15, deadline=None)
    @given(random_spns())
    def test_property_translation_preserves_semantics(self, spn_and_features):
        spn, num_features = spn_and_features
        rng = np.random.default_rng(3)
        x = rng.uniform(0.0, 1.9, size=(6, num_features))
        session = Session(translate_to_graph(spn))
        np.testing.assert_allclose(
            session.run(x), log_likelihood(spn, x), rtol=1e-9, atol=1e-12
        )


class TestTensorizedRat:
    @pytest.fixture
    def rat(self):
        return build_rat_spn(
            RatSpnConfig(
                num_features=12,
                num_classes=3,
                depth=2,
                num_repetitions=2,
                num_sums=2,
                num_input_distributions=2,
                seed=5,
            )
        )

    def test_matches_per_class_reference(self, rat, rng):
        executor = TensorizedRatExecutor(rat)
        x = rng.normal(size=(16, 12))
        expected = np.stack([log_likelihood(r, x) for r in rat], axis=1)
        np.testing.assert_allclose(executor.log_likelihoods(x), expected, rtol=1e-9)

    def test_shared_nodes_counted_once(self, rat):
        executor = TensorizedRatExecutor(rat)
        from repro.spn import num_nodes

        # All classes share children; the shared pass holds barely more
        # nodes than a single class (just the extra heads).
        assert executor.num_nodes < num_nodes(rat[0]) + len(rat)

    def test_classify(self, rat, rng):
        executor = TensorizedRatExecutor(rat)
        x = rng.normal(size=(10, 12))
        lls = executor.log_likelihoods(x)
        np.testing.assert_array_equal(executor.classify(x), np.argmax(lls, axis=1))

    def test_gpu_variant_timing(self, rat, rng):
        executor = TensorizedRatGPU(rat)
        x = rng.normal(size=(10, 12))
        executor.log_likelihoods(x)
        assert executor.last_simulated_seconds is not None
        assert executor.last_simulated_seconds > 0
