"""Tests for the core IR structure: operations, blocks, regions, values."""

import pytest

from repro.dialects.arith import AddFOp, ConstantOp, MulFOp
from repro.dialects.func import FuncOp, ReturnOp
from repro.ir import Block, Builder, IRError, ModuleOp, Operation, Region, f32, f64
from repro.ir.ops import lookup_op_class


def build_simple_func():
    module = ModuleOp.build()
    builder = Builder.at_end(module.body)
    fn = builder.create(FuncOp, "f", [f32], [f32])
    fb = Builder.at_end(fn.body)
    c = fb.create(ConstantOp, 1.0, f32)
    add = fb.create(AddFOp, fn.body.arguments[0], c.result)
    fb.create(ReturnOp, [add.result])
    return module, fn, c, add


class TestUseChains:
    def test_results_track_uses(self):
        _, fn, c, add = build_simple_func()
        assert c.result.has_uses
        assert c.result.num_uses == 1
        assert add in c.result.users

    def test_block_argument_uses(self):
        _, fn, _, add = build_simple_func()
        arg = fn.body.arguments[0]
        assert arg.users == [add]

    def test_replace_all_uses_with(self):
        _, fn, c, add = build_simple_func()
        fb = Builder.before_op(add)
        c2 = fb.create(ConstantOp, 2.0, f32)
        c.result.replace_all_uses_with(c2.result)
        assert not c.result.has_uses
        assert add.operands[1] is c2.result

    def test_replace_with_self_is_noop(self):
        _, _, c, add = build_simple_func()
        c.result.replace_all_uses_with(c.result)
        assert add.operands[1] is c.result

    def test_set_operand_updates_uses(self):
        _, fn, c, add = build_simple_func()
        add.set_operand(0, c.result)
        assert c.result.num_uses == 2
        assert not fn.body.arguments[0].has_uses

    def test_set_operands_replaces_all(self):
        _, fn, c, add = build_simple_func()
        add.set_operands([c.result, c.result])
        assert c.result.num_uses == 2

    def test_has_one_use(self):
        _, _, c, _ = build_simple_func()
        assert c.result.has_one_use()


class TestErasure:
    def test_erase_with_uses_rejected(self):
        _, _, c, _ = build_simple_func()
        with pytest.raises(IRError):
            c.erase()

    def test_erase_removes_from_block(self):
        _, fn, c, add = build_simple_func()
        term = fn.body.terminator
        term.erase()
        add.erase()
        c.erase()
        assert len(fn.body) == 0

    def test_erase_releases_operand_uses(self):
        _, fn, c, add = build_simple_func()
        fn.body.terminator.erase()
        add.erase()
        assert not c.result.has_uses


class TestBlockList:
    def test_linked_list_order(self):
        _, fn, c, add = build_simple_func()
        names = [op.op_name for op in fn.body.ops]
        assert names == ["arith.constant", "arith.addf", "func.return"]
        assert len(fn.body) == 3

    def test_first_and_terminator(self):
        _, fn, c, _ = build_simple_func()
        assert fn.body.first_op is c
        assert fn.body.terminator.op_name == "func.return"

    def test_move_before(self):
        _, fn, c, add = build_simple_func()
        add_op = c.next_op
        c.move_before(fn.body.terminator)
        names = [op.op_name for op in fn.body.ops]
        assert names == ["arith.addf", "arith.constant", "func.return"]

    def test_move_after(self):
        _, fn, c, add = build_simple_func()
        c.move_after(add)
        names = [op.op_name for op in fn.body.ops]
        assert names == ["arith.addf", "arith.constant", "func.return"]

    def test_iteration_survives_erasure(self):
        _, fn, *_ = build_simple_func()
        fn.body.terminator.erase()
        visited = []
        for op in fn.body.ops:
            visited.append(op.op_name)
            if not op.has_uses:
                op.erase()
        assert len(visited) == 2

    def test_prev_next_pointers(self):
        _, fn, c, add = build_simple_func()
        assert c.next_op is add
        assert add.prev_op is c
        assert c.prev_op is None

    def test_insert_before_updates_size(self):
        _, fn, c, _ = build_simple_func()
        new = ConstantOp.build(9.0, f32)
        fn.body._insert_before(c, new)
        assert fn.body.first_op is new
        assert len(fn.body) == 4


class TestBlockArguments:
    def test_add_argument(self):
        block = Block([f32])
        arg = block.add_argument(f64)
        assert arg.arg_index == 1
        assert arg.type == f64

    def test_erase_argument_renumbers(self):
        block = Block([f32, f64, f32])
        block.erase_argument(1)
        assert [a.arg_index for a in block.arguments] == [0, 1]

    def test_erase_used_argument_rejected(self):
        block = Block([f32])
        op = AddFOp.build(block.arguments[0], block.arguments[0])
        block.append(op)
        with pytest.raises(IRError):
            block.erase_argument(0)


class TestWalkAndClone:
    def test_walk_postorder_visits_nested_first(self):
        module, fn, c, add = build_simple_func()
        order = [op.op_name for op in module.walk()]
        assert order.index("arith.constant") < order.index("builtin.module")
        assert order[-1] == "builtin.module"

    def test_walk_with_callback(self):
        module, *_ = build_simple_func()
        count = []
        module.walk(lambda op: count.append(op))
        assert len(count) == len(module.walk())

    def test_clone_remaps_internal_values(self):
        module, fn, _, _ = build_simple_func()
        clone = fn.clone({})
        ops = clone.body.op_list()
        # The add in the clone must use the clone's own constant and arg.
        add = ops[1]
        assert add.operands[0] is clone.body.arguments[0]
        assert add.operands[1] is ops[0].results[0]

    def test_clone_preserves_registered_class(self):
        _, fn, c, _ = build_simple_func()
        clone = c.clone({})
        assert isinstance(clone, ConstantOp)

    def test_clone_does_not_mutate_original(self):
        module, fn, c, _ = build_simple_func()
        before = len(fn.body)
        fn.clone({})
        assert len(fn.body) == before
        assert c.result.num_uses == 1

    def test_clone_with_external_mapping(self):
        block = Block([f32, f32])
        add = AddFOp.build(block.arguments[0], block.arguments[1])
        block.append(add)
        replacement = Block([f32, f32])
        mapping = {
            block.arguments[0]: replacement.arguments[1],
            block.arguments[1]: replacement.arguments[0],
        }
        clone = add.clone(mapping)
        assert clone.operands[0] is replacement.arguments[1]


class TestOperationBasics:
    def test_registry_lookup(self):
        assert lookup_op_class("arith.addf") is AddFOp
        assert lookup_op_class("nope.nope") is Operation

    def test_result_property_single(self):
        c = ConstantOp.build(1.0, f32)
        assert c.result is c.results[0]

    def test_result_property_requires_single(self):
        ret = ReturnOp.build([])
        with pytest.raises(IRError):
            ret.result

    def test_attr_helpers(self):
        c = ConstantOp.build(1.0, f32)
        assert c.attr("value") == 1.0
        assert c.attr("missing", 7) == 7
        c.set_attr("note", "x")
        assert c.attr("note") == "x"
        c.remove_attr("note")
        assert c.attr("note") is None

    def test_dialect_name(self):
        assert ConstantOp.build(0.0, f32).dialect == "arith"

    def test_parent_op_chain(self):
        module, fn, c, _ = build_simple_func()
        assert c.parent_op is fn
        assert fn.parent_op is module
        assert module.parent_op is None

    def test_operand_must_be_value(self):
        with pytest.raises(IRError):
            Operation(operands=[42], name="x.y")


class TestRegions:
    def test_region_entry_block(self):
        module = ModuleOp.build()
        assert module.region.entry_block is module.body

    def test_body_block_requires_single_region(self):
        op = Operation(name="x.two", regions=2)
        with pytest.raises(IRError):
            op.region

    def test_erase_contents_clears_nested(self):
        module, fn, *_ = build_simple_func()
        fn.region.erase_contents()
        assert fn.region.empty
