"""Tests for the IR interpreter, including differential tests vs codegen."""

import numpy as np
import pytest

from repro.backends.cpu.codegen import generate_cpu_module
from repro.compiler.bufferization import bufferize, insert_deallocations, remove_result_copies
from repro.compiler.cpu.lowering import CPULoweringOptions, lower_kernel_to_cpu
from repro.compiler.frontend import build_hispn_module
from repro.compiler.lower_to_lospn import lower_to_lospn
from repro.compiler.partitioning import PartitioningOptions, partition_kernel
from repro.dialects.arith import AddFOp, ConstantOp, MulFOp
from repro.dialects.func import CallOp, FuncOp, ReturnOp
from repro.dialects.math_dialect import LogOp
from repro.dialects.memref import DimOp, LoadOp, StoreOp
from repro.dialects.scf import ForOp, YieldOp
from repro.ir import Builder, MemRefType, ModuleOp, f64, index
from repro.ir.interpreter import Interpreter, InterpreterError
from repro.spn import JointProbability, log_likelihood

from ..conftest import make_discrete_spn, make_gaussian_spn


def make_module():
    module = ModuleOp.build()
    return module, Builder.at_end(module.body)


class TestBasics:
    def test_scalar_return(self):
        module, b = make_module()
        fn = b.create(FuncOp, "f", [], [f64])
        fb = Builder.at_end(fn.body)
        c = fb.create(ConstantOp, 3.5, f64)
        fb.create(ReturnOp, [c.result])
        assert Interpreter(module).call("f") == 3.5

    def test_arguments_and_arith(self):
        module, b = make_module()
        fn = b.create(FuncOp, "axpy", [f64, f64], [f64])
        fb = Builder.at_end(fn.body)
        mul = fb.create(MulFOp, fn.body.arguments[0], fn.body.arguments[1])
        log = fb.create(LogOp, mul.result)
        fb.create(ReturnOp, [log.result])
        assert Interpreter(module).call("axpy", 2.0, 4.0) == pytest.approx(np.log(8))

    def test_loop_with_carried_value(self):
        module, b = make_module()
        in_t = MemRefType((None,), f64)
        fn = b.create(FuncOp, "total", [in_t], [f64])
        fb = Builder.at_end(fn.body)
        n = fb.create(DimOp, fn.body.arguments[0], 0)
        c0 = fb.create(ConstantOp, 0, index)
        c1 = fb.create(ConstantOp, 1, index)
        zero = fb.create(ConstantOp, 0.0, f64)
        loop = fb.create(ForOp, c0.result, n.result, c1.result, [zero.result])
        lb = Builder.at_end(loop.body_block)
        value = lb.create(LoadOp, fn.body.arguments[0], [loop.induction_var])
        acc = lb.create(AddFOp, loop.iter_args[0], value.result)
        lb.create(YieldOp, [acc.result])
        fb.create(ReturnOp, [loop.results[0]])
        result = Interpreter(module).call("total", np.array([1.0, 2.5, 3.0]))
        assert result == 6.5

    def test_cross_function_calls(self):
        module, b = make_module()
        helper = b.create(FuncOp, "double", [f64], [f64])
        hb = Builder.at_end(helper.body)
        two = hb.create(ConstantOp, 2.0, f64)
        mul = hb.create(MulFOp, helper.body.arguments[0], two.result)
        hb.create(ReturnOp, [mul.result])
        main = b.create(FuncOp, "main", [f64], [f64])
        mb = Builder.at_end(main.body)
        call = mb.create(CallOp, "double", [main.body.arguments[0]], [f64])
        mb.create(ReturnOp, [call.results[0]])
        assert Interpreter(module).call("main", 21.0) == 42.0

    def test_unknown_function(self):
        module, _ = make_module()
        with pytest.raises(InterpreterError):
            Interpreter(module).call("missing")

    def test_argument_count_checked(self):
        module, b = make_module()
        fn = b.create(FuncOp, "f", [f64], [f64])
        Builder.at_end(fn.body).create(ReturnOp, [fn.body.arguments[0]])
        with pytest.raises(InterpreterError):
            Interpreter(module).call("f")

    def test_memref_store(self):
        module, b = make_module()
        mem = MemRefType((2,), f64)
        fn = b.create(FuncOp, "w", [mem], [])
        fb = Builder.at_end(fn.body)
        c0 = fb.create(ConstantOp, 0, index)
        v = fb.create(ConstantOp, 7.0, f64)
        fb.create(StoreOp, v.result, fn.body.arguments[0], [c0.result])
        fb.create(ReturnOp, [])
        out = np.zeros(2)
        Interpreter(module).call("w", out)
        assert out[0] == 7.0


class TestDifferentialAgainstCodegen:
    """The generated Python code and the interpreter must agree exactly
    on fully lowered SPN kernels — they implement the same semantics by
    independent mechanisms."""

    def _lowered(self, spn, options=None, partition=None):
        module = lower_to_lospn(
            build_hispn_module(spn, JointProbability(batch_size=8))
        )
        if partition:
            module, _ = partition_kernel(
                module, PartitioningOptions(max_partition_size=partition)
            )
        module = bufferize(module)
        remove_result_copies(module)
        insert_deallocations(module)
        return lower_kernel_to_cpu(module, options)

    @pytest.mark.parametrize(
        "factory,options,partition",
        [
            (make_gaussian_spn, None, None),
            (make_discrete_spn, None, None),
            (make_gaussian_spn, CPULoweringOptions(vectorize=True, superword_factor=1), None),
            (
                make_discrete_spn,
                CPULoweringOptions(vectorize=True, superword_factor=1, use_shuffle=False),
                None,
            ),
            (
                make_gaussian_spn,
                CPULoweringOptions(
                    vectorize=True, superword_factor=1, use_vector_library=False
                ),
                None,
            ),
            (make_gaussian_spn, None, 3),
        ],
        ids=["scalar", "discrete", "vector", "gather", "no-veclib", "partitioned"],
    )
    def test_interpreter_equals_generated_code(self, factory, options, partition, rng):
        spn = factory()
        lowered = self._lowered(spn, options, partition)
        generated = generate_cpu_module(lowered)
        interp = Interpreter(lowered)

        if factory is make_discrete_spn:
            x = np.column_stack(
                [rng.integers(0, 3, size=21), rng.uniform(-0.5, 4.5, size=21)]
            ).astype(np.float32)
        else:
            x = rng.normal(size=(21, 2)).astype(np.float32)
        out_gen = np.empty((1, 21), dtype=np.float32)
        out_int = np.empty((1, 21), dtype=np.float32)
        with np.errstate(all="ignore"):
            generated.get("spn_kernel")(x, out_gen)
        interp.call("spn_kernel", x, out_int)
        np.testing.assert_allclose(out_gen, out_int, rtol=1e-6)
        # And both match the reference oracle.
        ref = log_likelihood(spn, x.astype(np.float64))
        np.testing.assert_allclose(out_int[0], ref, rtol=2e-3, atol=1e-5)
