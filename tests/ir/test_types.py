"""Tests for the IR type system."""

import pytest
from hypothesis import given, strategies as st

from repro.ir import (
    FloatType,
    IndexType,
    IntegerType,
    MemRefType,
    NoneType,
    ParseError,
    TensorType,
    VectorType,
    f32,
    f64,
    i1,
    i32,
    i64,
    index,
    parse_type_text,
)


class TestScalarTypes:
    def test_integer_spelling(self):
        assert IntegerType(32).spelling() == "i32"
        assert IntegerType(1).spelling() == "i1"

    def test_integer_width_validation(self):
        with pytest.raises(ValueError):
            IntegerType(0)
        with pytest.raises(ValueError):
            IntegerType(-8)

    def test_float_spelling(self):
        assert FloatType(32).spelling() == "f32"
        assert FloatType(64).spelling() == "f64"

    def test_float_width_validation(self):
        with pytest.raises(ValueError):
            FloatType(8)

    def test_index_and_none(self):
        assert IndexType().spelling() == "index"
        assert NoneType().spelling() == "none"

    def test_value_equality(self):
        assert IntegerType(32) == IntegerType(32)
        assert IntegerType(32) != IntegerType(64)
        assert FloatType(32) != IntegerType(32)
        assert IndexType() == IndexType()

    def test_hashing_uniques_by_value(self):
        types = {IntegerType(32), IntegerType(32), FloatType(32), f32}
        assert len(types) == 2

    def test_singletons_match_fresh_instances(self):
        assert f32 == FloatType(32)
        assert f64 == FloatType(64)
        assert i1 == IntegerType(1)
        assert i32 == IntegerType(32)
        assert i64 == IntegerType(64)
        assert index == IndexType()


class TestShapedTypes:
    def test_tensor_spelling(self):
        assert TensorType((None, 26), f32).spelling() == "tensor<?x26xf32>"
        assert TensorType((4,), f64).spelling() == "tensor<4xf64>"
        assert TensorType((), f32).spelling() == "tensor<f32>"

    def test_memref_spelling(self):
        assert MemRefType((1, None), f32).spelling() == "memref<1x?xf32>"

    def test_vector_spelling(self):
        assert VectorType((8,), f32).spelling() == "vector<8xf32>"
        assert VectorType((8, 26), f32).spelling() == "vector<8x26xf32>"

    def test_dynamic_vector_spelling(self):
        # Batch-vectorized kernels use runtime-width vectors.
        assert VectorType((None,), f64).spelling() == "vector<?xf64>"
        assert VectorType((None, 26), f32).spelling() == "vector<?x26xf32>"

    def test_vector_requires_positive_dims(self):
        with pytest.raises(ValueError):
            VectorType((0,), f32)
        with pytest.raises(ValueError):
            VectorType((-4,), f32)

    def test_rank_and_elements(self):
        ty = TensorType((3, 4), f32)
        assert ty.rank == 2
        assert ty.num_elements() == 12
        assert TensorType((None, 4), f32).num_elements() is None

    def test_nested_element_types(self):
        ty = TensorType((2,), VectorType((8,), f32))
        assert ty.spelling() == "tensor<2xvector<8xf32>>"

    def test_equality_includes_shape(self):
        assert TensorType((2,), f32) != TensorType((3,), f32)
        assert TensorType((2,), f32) != MemRefType((2,), f32)
        assert MemRefType((2,), f32) == MemRefType((2,), f32)


class TestTypeParsing:
    @pytest.mark.parametrize(
        "text",
        [
            "i1",
            "i32",
            "i64",
            "f32",
            "f64",
            "index",
            "none",
            "tensor<?x26xf32>",
            "tensor<4xf64>",
            "memref<1x?xf64>",
            "vector<16xf32>",
            "vector<8x26xf32>",
            "tensor<f32>",
            "!hi_spn.probability",
            "!lo_spn.log<f32>",
            "!lo_spn.log<f64>",
            "memref<2x?x!lo_spn.log<f32>>",
        ],
    )
    def test_round_trip(self, text):
        assert parse_type_text(text).spelling() == text

    def test_unknown_type_rejected(self):
        with pytest.raises(ParseError):
            parse_type_text("f128x")

    def test_unknown_dialect_type_rejected(self):
        with pytest.raises(ParseError):
            parse_type_text("!no_such.type")


# Property: any type built from the constructors round-trips through text.
_scalar = st.sampled_from([f32, f64, i1, i32, i64, index])
_dims = st.lists(
    st.one_of(st.none(), st.integers(min_value=1, max_value=64)),
    min_size=1,
    max_size=3,
)


@st.composite
def shaped_types(draw):
    elem = draw(_scalar)
    kind = draw(st.sampled_from(["tensor", "memref", "vector"]))
    if kind == "vector":
        dims = draw(
            st.lists(
                st.one_of(st.none(), st.integers(min_value=1, max_value=64)),
                min_size=1,
                max_size=2,
            )
        )
        return VectorType(tuple(dims), elem)
    dims = draw(_dims)
    cls = TensorType if kind == "tensor" else MemRefType
    return cls(tuple(dims), elem)


@given(st.one_of(_scalar, shaped_types()))
def test_property_type_text_round_trip(ty):
    assert parse_type_text(ty.spelling()) == ty
