"""Round-trip tests for the textual IR format."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dialects.arith import AddFOp, ConstantOp, MulFOp, SelectOp, CmpFOp
from repro.dialects.func import CallOp, FuncOp, ReturnOp
from repro.dialects.math_dialect import LogOp
from repro.dialects.memref import AllocOp, ConstantBufferOp, LoadOp, StoreOp
from repro.dialects.scf import ForOp, YieldOp
from repro.ir import (
    Builder,
    MemRefType,
    ModuleOp,
    ParseError,
    f32,
    f64,
    index,
    parse_module,
    print_op,
    verify,
)
from repro.ir.printer import format_attribute


def round_trip(module):
    text = print_op(module)
    reparsed = parse_module(text)
    verify(reparsed)
    assert print_op(reparsed) == text
    return reparsed


class TestAttributePrinting:
    def test_bool(self):
        assert format_attribute(True) == "true"
        assert format_attribute(False) == "false"

    def test_int_and_float(self):
        assert format_attribute(5) == "5 : i64"
        assert format_attribute(0.5) == "0.5 : f64"

    def test_special_floats(self):
        assert format_attribute(float("inf")) == "inf : f64"
        assert format_attribute(float("-inf")) == "-inf : f64"
        assert format_attribute(float("nan")) == "nan : f64"

    def test_string_escaping(self):
        assert format_attribute('a"b\\c') == '"a\\"b\\\\c"'

    def test_tuple(self):
        assert format_attribute((1, 2.0)) == "[1 : i64, 2.0 : f64]"

    def test_dense(self):
        text = format_attribute(np.array([1.0, 2.0], dtype=np.float32))
        assert text == "dense<[1.0, 2.0]> : tensor<2xf32>"

    def test_type_attribute(self):
        assert format_attribute(f32) == "f32"


class TestModuleRoundTrip:
    def test_empty_module(self):
        round_trip(ModuleOp.build())

    def test_arith_module(self):
        module = ModuleOp.build()
        b = Builder.at_end(module.body)
        fn = b.create(FuncOp, "main", [f32, f32], [f32])
        fb = Builder.at_end(fn.body)
        c = fb.create(ConstantOp, -0.5, f32)
        add = fb.create(AddFOp, fn.body.arguments[0], c.result)
        mul = fb.create(MulFOp, add.result, fn.body.arguments[1])
        log = fb.create(LogOp, mul.result)
        fb.create(ReturnOp, [log.result])
        round_trip(module)

    def test_special_float_attributes(self):
        module = ModuleOp.build()
        b = Builder.at_end(module.body)
        fn = b.create(FuncOp, "weird", [], [f64, f64])
        fb = Builder.at_end(fn.body)
        ninf = fb.create(ConstantOp, float("-inf"), f64)
        inf = fb.create(ConstantOp, float("inf"), f64)
        fb.create(ReturnOp, [ninf.result, inf.result])
        reparsed = round_trip(module)
        values = [
            op.attributes["value"]
            for op in reparsed.walk()
            if op.op_name == "arith.constant"
        ]
        assert values == [float("-inf"), float("inf")]

    def test_dense_attribute_round_trip(self):
        module = ModuleOp.build()
        b = Builder.at_end(module.body)
        fn = b.create(FuncOp, "tables", [], [])
        fb = Builder.at_end(fn.body)
        fb.create(
            ConstantBufferOp, np.array([0.25, -1.5, math.inf], dtype=np.float64), f64
        )
        fb.create(ReturnOp, [])
        reparsed = round_trip(module)
        buffers = [
            op for op in reparsed.walk() if op.op_name == "memref.constant_buffer"
        ]
        np.testing.assert_array_equal(
            buffers[0].attributes["data"], np.array([0.25, -1.5, math.inf])
        )

    def test_loop_with_iter_args(self):
        module = ModuleOp.build()
        b = Builder.at_end(module.body)
        fn = b.create(FuncOp, "loop", [index, f32], [f32])
        fb = Builder.at_end(fn.body)
        c0 = fb.create(ConstantOp, 0, index)
        c1 = fb.create(ConstantOp, 1, index)
        loop = fb.create(
            ForOp, c0.result, fn.body.arguments[0], c1.result, [fn.body.arguments[1]]
        )
        lb = Builder.at_end(loop.body_block)
        doubled = lb.create(AddFOp, loop.iter_args[0], loop.iter_args[0])
        lb.create(YieldOp, [doubled.result])
        fb.create(ReturnOp, [loop.results[0]])
        round_trip(module)

    def test_memref_ops(self):
        module = ModuleOp.build()
        b = Builder.at_end(module.body)
        mem_type = MemRefType((None, 4), f32)
        fn = b.create(FuncOp, "mem", [mem_type, index], [])
        fb = Builder.at_end(fn.body)
        alloc = fb.create(AllocOp, MemRefType((None,), f32), [fn.body.arguments[1]])
        load = fb.create(
            LoadOp, fn.body.arguments[0], [fn.body.arguments[1], fn.body.arguments[1]]
        )
        fb.create(StoreOp, load.result, alloc.result, [fn.body.arguments[1]])
        fb.create(ReturnOp, [])
        round_trip(module)

    def test_multi_result_and_calls(self):
        module = ModuleOp.build()
        b = Builder.at_end(module.body)
        callee = b.create(FuncOp, "callee", [f32], [f32, f32])
        cb = Builder.at_end(callee.body)
        cb.create(ReturnOp, [callee.body.arguments[0], callee.body.arguments[0]])
        caller = b.create(FuncOp, "caller", [f32], [f32])
        fb = Builder.at_end(caller.body)
        call = fb.create(CallOp, "callee", [caller.body.arguments[0]], [f32, f32])
        fb.create(ReturnOp, [call.results[1]])
        round_trip(module)

    def test_select_and_cmp(self):
        module = ModuleOp.build()
        b = Builder.at_end(module.body)
        fn = b.create(FuncOp, "sel", [f32, f32], [f32])
        fb = Builder.at_end(fn.body)
        args = fn.body.arguments
        cmp = fb.create(CmpFOp, "une", args[0], args[0])
        sel = fb.create(SelectOp, cmp.result, args[0], args[1])
        fb.create(ReturnOp, [sel.result])
        round_trip(module)


class TestParserErrors:
    def test_bad_token(self):
        with pytest.raises(ParseError):
            parse_module("@@@@")

    def test_undefined_value(self):
        with pytest.raises(ParseError):
            parse_module('"x.y"(%0) : (f32) -> ()')

    def test_operand_type_mismatch(self):
        text = (
            '"builtin.module"() ({\n'
            '  %0 = "arith.constant"() {value = 1.0 : f64} : () -> f32\n'
            '  %1 = "math.log"(%0) : (f64) -> f64\n'
            "}) : () -> ()"
        )
        with pytest.raises(ParseError):
            parse_module(text)

    def test_result_count_mismatch(self):
        with pytest.raises(ParseError):
            parse_module('%0, %1 = "arith.constant"() {value = 1 : i64} : () -> i64')

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_module('"builtin.module"() : () -> () extra')


# --- property-based: random expression DAGs round-trip ---------------------------


@st.composite
def expression_modules(draw):
    module = ModuleOp.build()
    b = Builder.at_end(module.body)
    num_args = draw(st.integers(1, 3))
    fn = b.create(FuncOp, "f", [f64] * num_args, [f64])
    fb = Builder.at_end(fn.body)
    values = list(fn.body.arguments)
    for _ in range(draw(st.integers(1, 12))):
        choice = draw(st.integers(0, 3))
        if choice == 0:
            payload = draw(
                st.floats(
                    allow_nan=False, allow_infinity=False, width=64,
                    min_value=-1e6, max_value=1e6,
                )
                | st.just(float("inf"))
                | st.just(float("-inf"))
            )
            values.append(fb.create(ConstantOp, payload, f64).result)
        elif choice == 1:
            lhs = draw(st.sampled_from(values))
            rhs = draw(st.sampled_from(values))
            values.append(fb.create(AddFOp, lhs, rhs).result)
        elif choice == 2:
            lhs = draw(st.sampled_from(values))
            rhs = draw(st.sampled_from(values))
            values.append(fb.create(MulFOp, lhs, rhs).result)
        else:
            operand = draw(st.sampled_from(values))
            values.append(fb.create(LogOp, operand).result)
    fb.create(ReturnOp, [values[-1]])
    return module


@settings(max_examples=40, deadline=None)
@given(expression_modules())
def test_property_print_parse_round_trip(module):
    verify(module)
    round_trip(module)
