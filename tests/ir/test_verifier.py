"""Tests for structural IR verification."""

import pytest

from repro.dialects.arith import AddFOp, ConstantOp
from repro.dialects.func import FuncOp, ReturnOp
from repro.dialects.scf import ForOp, YieldOp
from repro.ir import (
    Block,
    Builder,
    IRError,
    ModuleOp,
    Operation,
    VerificationError,
    f32,
    f64,
    index,
    verify,
)


def empty_func(name="f", args=(), results=()):
    module = ModuleOp.build()
    b = Builder.at_end(module.body)
    fn = b.create(FuncOp, name, list(args), list(results))
    return module, fn


class TestDominance:
    def test_valid_module_passes(self):
        module, fn = empty_func(args=[f32], results=[f32])
        fb = Builder.at_end(fn.body)
        fb.create(ReturnOp, [fn.body.arguments[0]])
        verify(module)

    def test_use_before_def_rejected(self):
        module, fn = empty_func(results=[f32])
        fb = Builder.at_end(fn.body)
        c = fb.create(ConstantOp, 1.0, f32)
        add = fb.create(AddFOp, c.result, c.result)
        fb.create(ReturnOp, [add.result])
        add.move_before(c)  # now add uses c before its definition
        with pytest.raises(VerificationError):
            verify(module)

    def test_cross_function_use_rejected(self):
        module = ModuleOp.build()
        b = Builder.at_end(module.body)
        f1 = b.create(FuncOp, "a", [f32], [f32])
        Builder.at_end(f1.body).create(ReturnOp, [f1.body.arguments[0]])
        f2 = b.create(FuncOp, "b", [], [f32])
        # Manually splice an illegal cross-function use.
        ret = ReturnOp.build([f1.body.arguments[0]])
        f2.body.append(ret)
        f2.attributes["result_types"] = (f32,)
        with pytest.raises(VerificationError):
            verify(module)

    def test_value_from_enclosing_region_is_visible(self):
        module, fn = empty_func(args=[index], results=[])
        fb = Builder.at_end(fn.body)
        c = fb.create(ConstantOp, 2.0, f32)
        c0 = fb.create(ConstantOp, 0, index)
        c1 = fb.create(ConstantOp, 1, index)
        loop = fb.create(ForOp, c0.result, fn.body.arguments[0], c1.result, [])
        lb = Builder.at_end(loop.body_block)
        lb.create(AddFOp, c.result, c.result)  # uses outer value: legal
        lb.create(YieldOp, [])
        fb.create(ReturnOp, [])
        verify(module)


class TestStructuralRules:
    def test_terminator_must_be_last(self):
        # The func-level hook (return must be last) fires first; both are
        # IRErrors, and VerificationError is an IRError subclass.
        from repro.ir import IRError

        module, fn = empty_func()
        fb = Builder.at_end(fn.body)
        fb.create(ReturnOp, [])
        fb.create(ConstantOp, 1.0, f32)
        with pytest.raises(IRError):
            verify(module)

    def test_terminator_position_checked_in_plain_blocks(self):
        module = ModuleOp.build()
        b = Builder.at_end(module.body)
        b.create(ReturnOp, [])
        b.create(ModuleOp)  # another op after a terminator
        with pytest.raises(VerificationError):
            verify(module)

    def test_func_requires_return(self):
        module, fn = empty_func()
        with pytest.raises(IRError):
            verify(module)

    def test_func_return_type_mismatch(self):
        module, fn = empty_func(results=[f64])
        fb = Builder.at_end(fn.body)
        c = fb.create(ConstantOp, 1.0, f32)
        fb.create(ReturnOp, [c.result])
        with pytest.raises(IRError):
            verify(module)

    def test_single_block_trait_enforced(self):
        module = ModuleOp.build()
        module.region.append_block(Block())  # second block: illegal
        with pytest.raises(VerificationError):
            verify(module)

    def test_for_loop_yield_type_checked(self):
        module, fn = empty_func(args=[index], results=[])
        fb = Builder.at_end(fn.body)
        c0 = fb.create(ConstantOp, 0, index)
        c1 = fb.create(ConstantOp, 1, index)
        init = fb.create(ConstantOp, 0.0, f32)
        loop = fb.create(
            ForOp, c0.result, fn.body.arguments[0], c1.result, [init.result]
        )
        lb = Builder.at_end(loop.body_block)
        lb.create(YieldOp, [])  # missing the carried value
        fb.create(ReturnOp, [])
        with pytest.raises(IRError):
            verify(module)

    def test_per_op_hook_runs(self):
        class BadOp(Operation):
            name = "test.bad_hook"

            def verify_op(self):
                raise VerificationError("always bad")

        module = ModuleOp.build()
        module.body.append(BadOp())
        with pytest.raises(VerificationError):
            verify(module)


class TestSiblingRegionClassification:
    """Values must not flow across sibling regions; the verifier both
    rejects such IR and *names* the failure mode (regression test for
    the classified dominance diagnostic)."""

    def _if_with_cross_region_use(self):
        from repro.dialects.arith import NegFOp
        from repro.dialects.scf import IfOp
        from repro.ir import i1

        module, fn = empty_func()
        fb = Builder.at_end(fn.body)
        cond = fb.create(ConstantOp, 1, i1)
        if_op = fb.create(IfOp, cond.result, [], with_else=True)
        then_b = Builder.at_end(if_op.then_block)
        c = then_b.create(ConstantOp, 1.0, f32)
        # Illegal: the else region consumes a value defined in the
        # sibling then region.
        else_b = Builder.at_end(if_op.else_block)
        else_b.create(NegFOp, c.result)
        fb.create(ReturnOp, [])
        return module

    def test_cross_region_operand_rejected_and_classified(self):
        module = self._if_with_cross_region_use()
        with pytest.raises(VerificationError) as exc:
            verify(module)
        message = str(exc.value)
        assert "sibling region" in message
        assert "scf.if" in message  # op path names the exact use site

    def test_block_argument_from_sibling_region_classified(self):
        from repro.dialects.arith import AddIOp

        module, fn = empty_func(args=[index])
        fb = Builder.at_end(fn.body)
        c0 = fb.create(ConstantOp, 0, index)
        c1 = fb.create(ConstantOp, 1, index)
        loop = fb.create(ForOp, c0.result, fn.body.arguments[0], c1.result)
        Builder.at_end(loop.body_block).create(YieldOp, [])
        other = fb.create(ForOp, c0.result, fn.body.arguments[0], c1.result)
        ob = Builder.at_end(other.body_block)
        # Illegal: one loop's body uses the sibling loop's induction var.
        ob.create(AddIOp, loop.induction_var, other.induction_var)
        ob.create(YieldOp, [])
        fb.create(ReturnOp, [])
        with pytest.raises(VerificationError) as exc:
            verify(module)
        assert "sibling region" in str(exc.value)

    def test_plain_use_before_def_not_misclassified(self):
        module, fn = empty_func(results=[f32])
        fb = Builder.at_end(fn.body)
        c = fb.create(ConstantOp, 1.0, f32)
        add = fb.create(AddFOp, c.result, c.result)
        fb.create(ReturnOp, [add.result])
        add.move_before(c)
        with pytest.raises(VerificationError) as exc:
            verify(module)
        message = str(exc.value)
        assert "does not dominate" in message
        assert "sibling region" not in message
