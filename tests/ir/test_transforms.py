"""Tests for CSE, DCE, LICM, canonicalization and the rewrite driver."""

import numpy as np
import pytest

from repro.dialects.arith import AddFOp, ConstantOp, MulFOp, SelectOp, CmpFOp, SubFOp
from repro.dialects.func import FuncOp, ReturnOp
from repro.dialects.math_dialect import ExpOp, LogOp
from repro.dialects.memref import AllocOp, StoreOp
from repro.dialects.scf import ForOp, YieldOp
from repro.ir import (
    Builder,
    MemRefType,
    ModuleOp,
    Operation,
    RewritePattern,
    apply_patterns_greedily,
    canonicalize,
    f32,
    f64,
    index,
    run_cse,
    run_dce,
    verify,
)
from repro.ir.transforms.licm import hoist_loop_invariants


def new_func(args=(), results=()):
    module = ModuleOp.build()
    fn = Builder.at_end(module.body).create(FuncOp, "f", list(args), list(results))
    return module, fn, Builder.at_end(fn.body)


def ops_named(module, name):
    return [op for op in module.walk() if op.op_name == name]


class TestDCE:
    def test_removes_unused_pure_op(self):
        module, fn, fb = new_func()
        fb.create(ConstantOp, 1.0, f32)
        fb.create(ReturnOp, [])
        assert run_dce(module) == 1
        assert not ops_named(module, "arith.constant")

    def test_removes_dead_chains(self):
        module, fn, fb = new_func()
        c = fb.create(ConstantOp, 1.0, f32)
        a = fb.create(AddFOp, c.result, c.result)
        fb.create(MulFOp, a.result, a.result)
        fb.create(ReturnOp, [])
        assert run_dce(module) == 3

    def test_keeps_used_ops(self):
        module, fn, fb = new_func(results=[f32])
        c = fb.create(ConstantOp, 1.0, f32)
        fb.create(ReturnOp, [c.result])
        assert run_dce(module) == 0

    def test_keeps_side_effecting_ops(self):
        module, fn, fb = new_func()
        alloc = fb.create(AllocOp, MemRefType((4,), f32), [])
        fb.create(ReturnOp, [])
        run_dce(module)
        assert ops_named(module, "memref.alloc")


class TestCSE:
    def test_dedupes_identical_constants(self):
        module, fn, fb = new_func(results=[f32])
        c1 = fb.create(ConstantOp, 1.0, f32)
        c2 = fb.create(ConstantOp, 1.0, f32)
        add = fb.create(AddFOp, c1.result, c2.result)
        fb.create(ReturnOp, [add.result])
        assert run_cse(module) == 1
        assert len(ops_named(module, "arith.constant")) == 1
        verify(module)

    def test_respects_attribute_differences(self):
        module, fn, fb = new_func(results=[f32])
        c1 = fb.create(ConstantOp, 1.0, f32)
        c2 = fb.create(ConstantOp, 2.0, f32)
        add = fb.create(AddFOp, c1.result, c2.result)
        fb.create(ReturnOp, [add.result])
        assert run_cse(module) == 0

    def test_respects_operand_differences(self):
        module, fn, fb = new_func(args=[f32, f32], results=[f32])
        a1 = fb.create(AddFOp, fn.body.arguments[0], fn.body.arguments[1])
        a2 = fb.create(AddFOp, fn.body.arguments[1], fn.body.arguments[0])
        r = fb.create(AddFOp, a1.result, a2.result)
        fb.create(ReturnOp, [r.result])
        assert run_cse(module) == 0

    def test_dedupes_expression_dags(self):
        module, fn, fb = new_func(args=[f32], results=[f32])
        x = fn.body.arguments[0]
        a1 = fb.create(AddFOp, x, x)
        l1 = fb.create(LogOp, a1.result)
        a2 = fb.create(AddFOp, x, x)
        l2 = fb.create(LogOp, a2.result)
        r = fb.create(MulFOp, l1.result, l2.result)
        fb.create(ReturnOp, [r.result])
        assert run_cse(module) == 2
        verify(module)

    def test_nested_scope_sees_outer_values(self):
        module, fn, fb = new_func(args=[index])
        c0 = fb.create(ConstantOp, 0, index)
        c1 = fb.create(ConstantOp, 1, index)
        outer = fb.create(ConstantOp, 5.0, f32)
        loop = fb.create(ForOp, c0.result, fn.body.arguments[0], c1.result, [])
        lb = Builder.at_end(loop.body_block)
        inner = lb.create(ConstantOp, 5.0, f32)
        lb.create(AddFOp, inner.result, outer.result)
        lb.create(YieldOp, [])
        fb.create(ReturnOp, [])
        eliminated = run_cse(module)
        assert eliminated == 1  # inner constant deduped against outer one
        verify(module)

    def test_does_not_merge_across_sibling_functions(self):
        module = ModuleOp.build()
        b = Builder.at_end(module.body)
        for name in ("a", "b"):
            fn = b.create(FuncOp, name, [], [f32])
            fb = Builder.at_end(fn.body)
            c = fb.create(ConstantOp, 3.0, f32)
            fb.create(ReturnOp, [c.result])
        assert run_cse(module) == 0


class TestCanonicalize:
    def test_constant_folding(self):
        module, fn, fb = new_func(results=[f64])
        c1 = fb.create(ConstantOp, 2.0, f64)
        c2 = fb.create(ConstantOp, 3.0, f64)
        add = fb.create(AddFOp, c1.result, c2.result)
        fb.create(ReturnOp, [add.result])
        canonicalize(module)
        consts = ops_named(module, "arith.constant")
        assert len(consts) == 1
        assert consts[0].attributes["value"] == 5.0
        assert not ops_named(module, "arith.addf")

    def test_additive_identity(self):
        module, fn, fb = new_func(args=[f32], results=[f32])
        zero = fb.create(ConstantOp, 0.0, f32)
        add = fb.create(AddFOp, fn.body.arguments[0], zero.result)
        fb.create(ReturnOp, [add.result])
        canonicalize(module)
        assert not ops_named(module, "arith.addf")
        ret = ops_named(module, "func.return")[0]
        assert ret.operands[0] is fn.body.arguments[0]

    def test_multiplicative_identity(self):
        module, fn, fb = new_func(args=[f32], results=[f32])
        one = fb.create(ConstantOp, 1.0, f32)
        mul = fb.create(MulFOp, fn.body.arguments[0], one.result)
        fb.create(ReturnOp, [mul.result])
        canonicalize(module)
        assert not ops_named(module, "arith.mulf")

    def test_commutative_constant_sinks_right(self):
        module, fn, fb = new_func(args=[f32], results=[f32])
        c = fb.create(ConstantOp, 2.0, f32)
        add = fb.create(AddFOp, c.result, fn.body.arguments[0])
        fb.create(ReturnOp, [add.result])
        canonicalize(module)
        add = ops_named(module, "arith.addf")[0]
        assert add.operands[0] is fn.body.arguments[0]

    def test_select_with_constant_condition_folds(self):
        module, fn, fb = new_func(args=[f32, f32], results=[f32])
        c1 = fb.create(ConstantOp, 1.0, f32)
        c2 = fb.create(ConstantOp, 2.0, f32)
        cmp = fb.create(CmpFOp, "olt", c1.result, c2.result)
        sel = fb.create(SelectOp, cmp.result, fn.body.arguments[0], fn.body.arguments[1])
        fb.create(ReturnOp, [sel.result])
        canonicalize(module)
        assert not ops_named(module, "arith.select")
        ret = ops_named(module, "func.return")[0]
        assert ret.operands[0] is fn.body.arguments[0]

    def test_transcendental_folding(self):
        module, fn, fb = new_func(results=[f64])
        c = fb.create(ConstantOp, 1.0, f64)
        log = fb.create(LogOp, c.result)
        fb.create(ReturnOp, [log.result])
        canonicalize(module)
        consts = ops_named(module, "arith.constant")
        assert consts[0].attributes["value"] == 0.0

    def test_log_of_nonpositive_constant_not_folded(self):
        module, fn, fb = new_func(results=[f64])
        c = fb.create(ConstantOp, 0.0, f64)
        log = fb.create(LogOp, c.result)
        fb.create(ReturnOp, [log.result])
        canonicalize(module)
        assert ops_named(module, "math.log")

    def test_semantics_preserved(self):
        # Compare evaluation before/after canonicalization via codegen.
        from repro.backends.cpu.codegen import generate_cpu_module
        from repro.dialects.memref import LoadOp

        def build():
            module, fn, fb = new_func(args=[MemRefType((1,), f64), MemRefType((1,), f64)])
            c0 = fb.create(ConstantOp, 0, index)
            x = fb.create(LoadOp, fn.body.arguments[0], [c0.result])
            zero = fb.create(ConstantOp, 0.0, f64)
            one = fb.create(ConstantOp, 1.0, f64)
            t1 = fb.create(AddFOp, x.result, zero.result)
            t2 = fb.create(MulFOp, t1.result, one.result)
            t3 = fb.create(SubFOp, t2.result, zero.result)
            e = fb.create(ExpOp, t3.result)
            fb.create(StoreOp, e.result, fn.body.arguments[1], [c0.result])
            fb.create(ReturnOp, [])
            return module

        reference = build()
        optimized = build()
        canonicalize(optimized)
        verify(optimized)
        for module in (reference, optimized):
            gen = generate_cpu_module(module)
            out = np.zeros(1)
            gen.get("f")(np.array([0.75]), out)
            assert out[0] == pytest.approx(np.exp(0.75))


class TestLICM:
    def test_hoists_invariant_chain(self):
        module, fn, fb = new_func(args=[index])
        c0 = fb.create(ConstantOp, 0, index)
        c1 = fb.create(ConstantOp, 1, index)
        loop = fb.create(ForOp, c0.result, fn.body.arguments[0], c1.result, [])
        lb = Builder.at_end(loop.body_block)
        a = lb.create(ConstantOp, 2.0, f32)
        b_op = lb.create(AddFOp, a.result, a.result)
        lb.create(YieldOp, [])
        fb.create(ReturnOp, [])
        hoisted = hoist_loop_invariants(module)
        assert hoisted == 2
        assert len(loop.body_block) == 1  # only the yield remains
        verify(module)

    def test_keeps_variant_ops(self):
        from repro.dialects.arith import SIToFPOp, IndexCastOp
        from repro.ir.types import i64

        module, fn, fb = new_func(args=[index])
        c0 = fb.create(ConstantOp, 0, index)
        c1 = fb.create(ConstantOp, 1, index)
        loop = fb.create(ForOp, c0.result, fn.body.arguments[0], c1.result, [])
        lb = Builder.at_end(loop.body_block)
        cast = lb.create(IndexCastOp, loop.induction_var, i64)
        lb.create(SIToFPOp, cast.result, f32)
        lb.create(YieldOp, [])
        fb.create(ReturnOp, [])
        # The dead chain depends on the induction variable: must stay.
        hoisted = hoist_loop_invariants(module)
        assert hoisted == 0
        assert len(loop.body_block) == 3


class TestRewriteDriver:
    def test_custom_pattern_applies_to_fixpoint(self):
        class RewriteAddToMul(RewritePattern):
            op_name = "arith.addf"

            def match_and_rewrite(self, op, rewriter):
                builder = rewriter.builder_before(op)
                mul = builder.create(MulFOp, op.operands[0], op.operands[1])
                rewriter.replace_op(op, [mul.result])
                return True

        module, fn, fb = new_func(args=[f32], results=[f32])
        x = fn.body.arguments[0]
        a = fb.create(AddFOp, x, x)
        b_op = fb.create(AddFOp, a.result, x)
        fb.create(ReturnOp, [b_op.result])
        changed = apply_patterns_greedily(module, [RewriteAddToMul()])
        assert changed
        assert not ops_named(module, "arith.addf")
        assert len(ops_named(module, "arith.mulf")) == 2
        verify(module)

    def test_driver_erases_dead_pure_ops(self):
        module, fn, fb = new_func()
        fb.create(ConstantOp, 1.0, f32)
        fb.create(ReturnOp, [])
        assert apply_patterns_greedily(module, [])
        assert not ops_named(module, "arith.constant")
