"""Tests for attribute normalization, hashing and equality."""

import numpy as np
import pytest

from repro.ir import attributes_equal, normalize_attribute
from repro.ir.attributes import attribute_key, attributes_key, normalize_attributes
from repro.ir.types import f32


class TestNormalization:
    def test_scalars_pass_through(self):
        assert normalize_attribute(5) == 5
        assert normalize_attribute(1.5) == 1.5
        assert normalize_attribute(True) is True
        assert normalize_attribute("name") == "name"
        assert normalize_attribute(f32) == f32

    def test_numpy_scalars_unwrap(self):
        assert normalize_attribute(np.float64(2.5)) == 2.5
        assert isinstance(normalize_attribute(np.int64(3)), int)

    def test_lists_become_tuples(self):
        assert normalize_attribute([1, 2, 3]) == (1, 2, 3)
        assert normalize_attribute([[1], [2]]) == ((1,), (2,))

    def test_arrays_become_readonly(self):
        arr = normalize_attribute(np.array([1.0, 2.0]))
        assert not arr.flags.writeable

    def test_none_rejected(self):
        with pytest.raises(TypeError):
            normalize_attribute(None)

    def test_unsupported_rejected(self):
        with pytest.raises(TypeError):
            normalize_attribute(object())

    def test_dict_normalization(self):
        attrs = normalize_attributes({"a": [1, 2], "b": 3})
        assert attrs == {"a": (1, 2), "b": 3}


class TestKeys:
    def test_array_keys_are_hashable(self):
        key = attribute_key(np.array([1.0, 2.0]))
        hash(key)

    def test_equal_arrays_same_key(self):
        a = attribute_key(np.array([1.0, 2.0]))
        b = attribute_key(np.array([1.0, 2.0]))
        assert a == b

    def test_different_dtype_different_key(self):
        a = attribute_key(np.array([1.0], dtype=np.float32))
        b = attribute_key(np.array([1.0], dtype=np.float64))
        assert a != b

    def test_bool_distinct_from_int(self):
        assert attribute_key(True) != attribute_key(1)

    def test_attributes_key_order_independent(self):
        a = attributes_key({"x": 1, "y": 2})
        b = attributes_key({"y": 2, "x": 1})
        assert a == b


class TestEquality:
    def test_scalar_equality(self):
        assert attributes_equal(1.5, 1.5)
        assert not attributes_equal(1.5, 2.5)

    def test_bool_int_distinct(self):
        assert not attributes_equal(True, 1)
        assert attributes_equal(True, True)

    def test_array_equality(self):
        assert attributes_equal(np.array([1.0, 2.0]), np.array([1.0, 2.0]))
        assert not attributes_equal(np.array([1.0]), np.array([2.0]))
        assert not attributes_equal(np.array([1.0]), 1.0)

    def test_tuple_equality_recursive(self):
        assert attributes_equal((1, (2, 3)), (1, (2, 3)))
        assert not attributes_equal((1, 2), (1, 2, 3))
