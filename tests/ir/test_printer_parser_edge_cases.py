"""Printer/parser/verifier edge cases surfaced by the IR fuzzer.

Complements ``test_printer_parser.py`` with the corners the
differential fuzzer exercises: dynamic vector types on fully lowered
batch-vectorized kernels, dense attribute extremes, and the verifier's
structured op-path error reporting.
"""

import numpy as np
import pytest

from repro.compiler.bufferization import (
    bufferize,
    insert_deallocations,
    remove_result_copies,
)
from repro.compiler.cpu.lowering import CPULoweringOptions, lower_kernel_to_cpu
from repro.compiler.frontend import build_hispn_module
from repro.compiler.lower_to_lospn import lower_to_lospn
from repro.dialects.arith import AddFOp, ConstantOp
from repro.dialects.func import FuncOp, ReturnOp
from repro.dialects.memref import ConstantBufferOp
from repro.dialects.vector import BroadcastOp, LoadOp as VLoadOp, StoreOp as VStoreOp
from repro.ir import (
    Builder,
    IRError,
    MemRefType,
    ModuleOp,
    ParseError,
    VectorType,
    f32,
    f64,
    index,
    parse_module,
    print_op,
    verify,
)
from repro.ir.printer import format_attribute
from repro.ir.verifier import VerificationError
from repro.spn import Gaussian, JointProbability, Product, Sum


def round_trip(module):
    text = print_op(module)
    reparsed = parse_module(text)
    verify(reparsed)
    assert print_op(reparsed) == text, "reprint is not a fixed point"
    return text


class TestDynamicVectorRoundTrip:
    def test_dynamic_vector_type_spelling(self):
        assert VectorType((None,), f64).spelling() == "vector<?xf64>"

    def test_handwritten_dynamic_vector_module(self):
        module = ModuleOp.build()
        b = Builder.at_end(module.body)
        fn = b.create(FuncOp, "f", [MemRefType((None,), f64)], [])
        fb = Builder.at_end(fn.body)
        c0 = fb.create(ConstantOp, 0, index)
        vec = VectorType((None,), f64)
        x = fb.create(VLoadOp, fn.body.arguments[0], [c0.result], vec)
        half = fb.create(ConstantOp, 0.5, f64)
        splat = fb.create(BroadcastOp, half.result, vec)
        total = fb.create(AddFOp, x.result, splat.result)
        fb.create(VStoreOp, total.result, fn.body.arguments[0], [c0.result])
        fb.create(ReturnOp, [])
        text = round_trip(module)
        assert "vector<?xf64>" in text

    def test_batch_lowered_kernel_round_trips(self):
        """The whole-batch pipeline emits vector<?xTY> throughout; the
        full lowered module must survive print -> parse -> reprint."""
        spn = Sum(
            [
                Product([Gaussian(0, 0.0, 1.0), Gaussian(1, 1.0, 2.0)]),
                Product([Gaussian(0, 2.0, 1.0), Gaussian(1, -1.0, 1.0)]),
            ],
            [0.3, 0.7],
        )
        module = lower_to_lospn(
            build_hispn_module(spn, JointProbability(batch_size=8))
        )
        module = bufferize(module)
        remove_result_copies(module)
        insert_deallocations(module)
        lowered = lower_kernel_to_cpu(
            module, CPULoweringOptions(vectorize="batch")
        )
        text = round_trip(lowered)
        assert "vector<?x" in text

    def test_mixed_static_dynamic_dims_rejected_in_dense(self):
        with pytest.raises(ParseError):
            parse_module(
                '"builtin.module"() ({\n'
                '  "func.func"() ({\n'
                '    %0 = "memref.constant_buffer"() '
                "{value = dense<[1.0]> : tensor<?xf64>} : () -> memref<1xf64>\n"
                '    "func.return"() : () -> ()\n'
                '  }) {sym_name = "f", arg_types = [], result_types = []} '
                ": () -> ()\n"
                '}) : () -> ()'
            )


class TestDenseAttributeCorners:
    def _buffer_module(self, payload, element_type=f64):
        module = ModuleOp.build()
        b = Builder.at_end(module.body)
        fn = b.create(FuncOp, "f", [], [])
        fb = Builder.at_end(fn.body)
        fb.create(ConstantBufferOp, payload, element_type)
        fb.create(ReturnOp, [])
        return module

    def test_empty_dense_array(self):
        assert (
            format_attribute(np.array([], dtype=np.float64))
            == "dense<[]> : tensor<0xf64>"
        )

    def test_single_element_round_trips(self):
        module = self._buffer_module(np.array([3.25], dtype=np.float64))
        reparsed = parse_module(print_op(module))
        buffer = next(
            op
            for op in reparsed.walk()
            if op.op_name == "memref.constant_buffer"
        )
        np.testing.assert_array_equal(
            buffer.attributes["data"], np.array([3.25])
        )

    def test_negative_and_special_values_round_trip(self):
        payload = np.array(
            [-0.0, -1.5, -np.inf, np.inf, 1e-300], dtype=np.float64
        )
        module = self._buffer_module(payload)
        text = round_trip(module)
        assert "-inf" in text and "inf" in text
        reparsed = parse_module(text)
        buffer = next(
            op
            for op in reparsed.walk()
            if op.op_name == "memref.constant_buffer"
        )
        np.testing.assert_array_equal(buffer.attributes["data"], payload)

    def test_f32_dense_keeps_dtype(self):
        module = self._buffer_module(np.array([0.5, 0.25], dtype=np.float32), f32)
        text = print_op(module)
        assert "tensor<2xf32>" in text
        reparsed = parse_module(text)
        buffer = next(
            op
            for op in reparsed.walk()
            if op.op_name == "memref.constant_buffer"
        )
        assert buffer.attributes["data"].dtype == np.float32

    def test_parsed_dense_is_read_only(self):
        module = self._buffer_module(np.array([1.0], dtype=np.float64))
        reparsed = parse_module(print_op(module))
        buffer = next(
            op
            for op in reparsed.walk()
            if op.op_name == "memref.constant_buffer"
        )
        with pytest.raises(ValueError):
            buffer.attributes["data"][0] = 2.0


class TestVerifierOpPaths:
    """Verifier failures must name the offending op via its path."""

    def test_use_before_def_names_the_op(self):
        module = ModuleOp.build()
        b = Builder.at_end(module.body)
        fn = b.create(FuncOp, "f", [], [])
        fb = Builder.at_end(fn.body)
        orphan = ConstantOp.build(1.0, f64)  # never inserted in a block
        add = fb.create(AddFOp, orphan.results[0], orphan.results[0])
        fb.create(ReturnOp, [])
        with pytest.raises(VerificationError) as excinfo:
            verify(module)
        assert excinfo.value.op_path is not None
        assert "arith.addf" in excinfo.value.op_path
        assert excinfo.value.op_path in str(excinfo.value)

    def test_op_path_indexes_repeated_siblings(self):
        module = ModuleOp.build()
        b = Builder.at_end(module.body)
        fn = b.create(FuncOp, "f", [], [])
        fb = Builder.at_end(fn.body)
        fb.create(ConstantOp, 1.0, f64)
        orphan = ConstantOp.build(2.0, f64)
        fb.create(AddFOp, orphan.results[0], orphan.results[0])
        fb.create(ReturnOp, [])
        with pytest.raises(VerificationError) as excinfo:
            verify(module)
        # The failing add sits after one constant: sibling index 1.
        assert "#1" in excinfo.value.op_path

    def test_missing_terminator_names_the_function(self):
        module = ModuleOp.build()
        b = Builder.at_end(module.body)
        fn = b.create(FuncOp, "f", [], [])
        Builder.at_end(fn.body).create(ConstantOp, 1.0, f64)
        with pytest.raises(IRError) as excinfo:
            verify(module)
        assert "'f'" in str(excinfo.value)

    def test_parse_then_verify_reports_signature_mismatch(self):
        """Structured verification also works on freshly parsed IR."""
        text = (
            '"builtin.module"() ({\n'
            '  "func.func"() ({\n'
            '    %0 = "arith.constant"() {value = 1.0 : f64} : () -> f64\n'
            '    "func.return"(%0) : (f64) -> ()\n'
            '  }) {sym_name = "f", arg_types = [], result_types = []} '
            ": () -> ()\n"
            '}) : () -> ()'
        )
        module = parse_module(text)
        with pytest.raises(IRError) as excinfo:
            verify(module)  # return arity does not match the signature
        assert "'f'" in str(excinfo.value)
