"""Tests for ``python -m repro analyze`` and the checked-in fixtures."""

import os
import pathlib

import pytest

from repro.ir import parse_module, verify
from repro.ir.analysis import run_checks
from repro.tools.cli import main

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

#: fixture file -> the check its seeded bug must trigger.
SEEDED_BUGS = {
    "buffer_safety_bug.mlir": "buffer-safety.use-after-free",
    "range_underflow_bug.mlir": "range.linear-underflow",
    "lint_dead_result_bug.mlir": "lint.unused-result",
    "concurrency_shard_overlap_bug.mlir": "concurrency.shard-overlap",
    "concurrency_task_race_bug.mlir": "concurrency.task-race",
}


class TestFixtures:
    @pytest.mark.parametrize("name", sorted(SEEDED_BUGS))
    def test_fixture_parses_and_verifies(self, name):
        module = parse_module((FIXTURES / name).read_text())
        verify(module)

    @pytest.mark.parametrize("name,expected", sorted(SEEDED_BUGS.items()))
    def test_fixture_triggers_its_seeded_check(self, name, expected):
        module = parse_module((FIXTURES / name).read_text())
        findings = run_checks(module, phase="final")
        assert expected in {f.check for f in findings}


class TestAnalyzeCommand:
    @pytest.mark.parametrize("name,expected", sorted(SEEDED_BUGS.items()))
    def test_seeded_bug_exits_nonzero_with_op_path(self, name, expected, capsys):
        exit_code = main(["analyze", str(FIXTURES / name)])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert expected in captured.out
        assert "[at=builtin.module" in captured.out

    def test_all_fixtures_in_one_invocation(self, capsys):
        paths = [str(FIXTURES / name) for name in sorted(SEEDED_BUGS)]
        assert main(["analyze", *paths]) == 1
        captured = capsys.readouterr()
        for expected in SEEDED_BUGS.values():
            assert expected in captured.out

    def test_check_selection_filters_findings(self, capsys):
        # The range fixture is clean as far as buffer safety goes.
        exit_code = main(
            [
                "analyze",
                str(FIXTURES / "range_underflow_bug.mlir"),
                "--checks",
                "buffer-safety",
            ]
        )
        assert exit_code == 0
        assert "clean" in capsys.readouterr().out

    def test_min_severity_gates_exit_code(self, capsys):
        # The underflow fixture only has WARNING/NOTE findings; raising
        # the gate to "error" reports them without failing.
        exit_code = main(
            [
                "analyze",
                str(FIXTURES / "range_underflow_bug.mlir"),
                "--min-severity",
                "error",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "range.linear-underflow" in captured.out

    def test_unknown_check_is_usage_error(self, capsys):
        exit_code = main(
            [
                "analyze",
                str(FIXTURES / "range_underflow_bug.mlir"),
                "--checks",
                "no-such-check",
            ]
        )
        assert exit_code == 2
        assert "unknown check" in capsys.readouterr().err

    def test_no_input_is_usage_error(self, capsys):
        assert main(["analyze"]) == 2
        assert "nothing to analyze" in capsys.readouterr().err

    def test_reproducer_dumped_to_artifact_dir(self, tmp_path, capsys):
        exit_code = main(
            [
                "analyze",
                str(FIXTURES / "buffer_safety_bug.mlir"),
                "--artifact-dir",
                str(tmp_path),
            ]
        )
        assert exit_code == 1
        dumped = list(tmp_path.rglob("*"))
        assert any(p.is_file() for p in dumped), "expected a reproducer dump"

    def test_generated_corpus_is_clean(self, capsys):
        exit_code = main(["analyze", "--corpus", "1", "--seed", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "clean" in captured.out


class TestJsonFormat:
    def test_findings_are_machine_readable(self, capsys):
        import json

        exit_code = main(
            [
                "analyze",
                str(FIXTURES / "concurrency_shard_overlap_bug.mlir"),
                "--format",
                "json",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 1
        payload = json.loads(captured.out)
        assert payload["ok"] is False
        assert payload["failures"] == 1
        assert "concurrency" in payload["checks"]
        (module,) = payload["modules"]
        assert module["status"] == "findings"
        (finding,) = module["findings"]
        assert finding["check"] == "concurrency.shard-overlap"
        assert finding["severity"] == "error"
        assert finding["gating"] is True
        assert "lo_spn.task" in finding["op_path"]
        # No human-readable noise may pollute the JSON document.
        assert captured.out.lstrip().startswith("{")

    def test_clean_module_reports_ok(self, capsys, tmp_path):
        import json

        clean = tmp_path / "clean.mlir"
        clean.write_text('"builtin.module"() ({\n}) : () -> ()\n')
        exit_code = main(["analyze", str(clean), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["ok"] is True
        assert payload["modules"][0]["status"] == "clean"


class TestSelftestIntegration:
    def test_selftest_covers_the_analyses(self):
        # --selftest asserts one intentionally-broken module per
        # analysis; it must stay green as checks evolve.
        assert main(["--selftest"]) == 0
