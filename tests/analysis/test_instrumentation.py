"""Tests for the verify-each analysis instrumentation.

Covers the :class:`~repro.ir.passes.PassManager` modes, the compiler
pipeline's ``CompilerOptions.verify_each`` knob, and the acceptance
criterion that the shipped pipelines run clean under full
instrumentation on representative models (including the RAT-SPN
example architecture).
"""

import pytest

from repro.compiler.pipeline import CompilerOptions, compile_spn
from repro.diagnostics import PassError
from repro.dialects.arith import ConstantOp
from repro.dialects.func import FuncOp, ReturnOp
from repro.ir import Builder, ModuleOp, Pass, PassManager, f64
from repro.ir.passes import normalize_verify_each
from repro.spn import JointProbability

from ..conftest import make_discrete_spn, make_gaussian_spn


class NopPass(Pass):
    name = "nop"

    def run(self, module):
        pass


class ShadowSymbolPass(Pass):
    """Deliberately broken rewrite: duplicates the first function, so
    two definitions share one symbol (a lint ERROR)."""

    name = "shadow-symbol"

    def run(self, module):
        fn = next(op for op in module.body.ops if op.op_name == "func.func")
        module.body.append(fn.clone({}))


class LeakBufferPass(Pass):
    """Introduces a leaked allocation next to a freed one — a
    buffer-safety WARNING (mid-phase leak detection), not an ERROR."""

    name = "leak-buffer"

    def run(self, module):
        from repro.dialects.memref import AllocOp, DeallocOp
        from repro.ir.types import MemRefType

        fn = next(op for op in module.body.ops if op.op_name == "func.func")
        fb = Builder.at_start(fn.body)
        freed = fb.create(AllocOp, MemRefType((4,), f64)).result
        fb.create(AllocOp, MemRefType((8,), f64))  # never deallocated
        fb.create(DeallocOp, freed)


def _simple_module():
    module = ModuleOp.build()
    fn = Builder.at_end(module.body).create(FuncOp, "f", [], [])
    Builder.at_end(fn.body).create(ReturnOp, [])
    return module


class TestNormalizeVerifyEach:
    def test_bool_back_compat(self):
        assert normalize_verify_each(True) == "structural"
        assert normalize_verify_each(False) == "off"
        assert normalize_verify_each(None) == "off"

    def test_modes_pass_through(self):
        for mode in ("off", "structural", "boundaries", "every-pass"):
            assert normalize_verify_each(mode) == mode

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            normalize_verify_each("sometimes")


class TestPassManagerInstrumentation:
    def test_every_pass_aborts_on_analysis_error(self):
        pm = PassManager(verify_each="every-pass")
        pm.add(ShadowSymbolPass())
        with pytest.raises(PassError) as exc:
            pm.run(_simple_module())
        message = str(exc.value)
        assert "static analysis" in message
        assert "lint.shadowed-symbol" in message
        assert "shadow-symbol" in message  # names the offending pass

    def test_structural_mode_skips_analyses(self):
        pm = PassManager(verify_each="structural")
        pm.add(ShadowSymbolPass())
        pm.run(_simple_module())  # verifies structure only; no abort

    def test_boundaries_checks_only_after_last_pass(self):
        # The ERROR introduced by pass 1 is repaired by pass 2 before
        # the boundary check runs, so "boundaries" stays silent while
        # "every-pass" catches the transient violation.
        class RepairPass(Pass):
            name = "repair"

            def run(self, module):
                funcs = [
                    op for op in module.body.ops if op.op_name == "func.func"
                ]
                funcs[-1].erase()

        def pipeline(mode):
            pm = PassManager(verify_each=mode)
            pm.add(ShadowSymbolPass())
            pm.add(RepairPass())
            return pm

        pipeline("boundaries").run(_simple_module())
        with pytest.raises(PassError):
            pipeline("every-pass").run(_simple_module())

    def test_warnings_accumulate_without_aborting(self):
        pm = PassManager(verify_each="every-pass")
        pm.add(LeakBufferPass())
        pm.run(_simple_module())
        checks = {f.check for f in pm.analysis_findings}
        assert checks == {"buffer-safety.leak"}

    def test_off_mode_runs_nothing(self):
        pm = PassManager(verify_each="off")
        pm.add(ShadowSymbolPass())
        pm.run(_simple_module())
        assert pm.analysis_findings == []

    def test_duplicate_findings_fold_across_passes(self):
        pm = PassManager(verify_each="every-pass")
        pm.add(LeakBufferPass())
        pm.add(NopPass())
        pm.add(NopPass())
        pm.run(_simple_module())
        # The same dead block is re-reported after every pass; the
        # manager keeps one finding per (check, op, message).
        assert len(pm.analysis_findings) == 1


class TestCompilerOptionsKnob:
    def test_bool_back_compat_maps_to_boundaries(self):
        assert CompilerOptions(verify_each=True).verify_each == "boundaries"
        assert CompilerOptions(verify_each=False).verify_each == "off"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            CompilerOptions(verify_each="sometimes")


class TestInstrumentedPipelines:
    """The shipped pipelines must be clean under full instrumentation."""

    @pytest.mark.parametrize("spn_factory", [make_gaussian_spn, make_discrete_spn])
    @pytest.mark.parametrize("opt_level", [0, 3])
    def test_cpu_batch_pipeline_has_no_violations(self, spn_factory, opt_level):
        result = compile_spn(
            spn_factory(),
            JointProbability(batch_size=16),
            CompilerOptions(
                opt_level=opt_level,
                vectorize="batch",
                verify_each="every-pass",
            ),
        )
        assert result.executable is not None

    def test_cpu_o3_pipeline_is_warning_free(self):
        result = compile_spn(
            make_gaussian_spn(),
            JointProbability(batch_size=16),
            CompilerOptions(
                opt_level=3, vectorize="batch", verify_each="every-pass"
            ),
        )
        assert result.analysis_findings == []

    def test_gpu_pipeline_is_warning_free(self):
        result = compile_spn(
            make_gaussian_spn(),
            JointProbability(batch_size=16),
            CompilerOptions(target="gpu", verify_each="every-pass"),
        )
        assert result.analysis_findings == []

    def test_rat_spn_example_model_is_clean_on_both_targets(self):
        from repro.spn.rat import RatSpnConfig, build_rat_spn

        head = build_rat_spn(
            RatSpnConfig(num_features=4, num_classes=2, seed=7)
        )[0]
        for options in (
            CompilerOptions(
                opt_level=3, vectorize="batch", verify_each="every-pass"
            ),
            CompilerOptions(target="gpu", verify_each="every-pass"),
        ):
            result = compile_spn(
                head, JointProbability(batch_size=32), options
            )
            assert result.analysis_findings == []

    def test_linear_space_compile_reports_underflow_hazards(self):
        # Without log-space computation the range analysis flags the
        # paper's underflow argument as concrete WARNING findings —
        # but compilation still succeeds (warnings never abort).
        result = compile_spn(
            make_gaussian_spn(),
            JointProbability(batch_size=16),
            CompilerOptions(
                use_log_space=False, verify_each="every-pass"
            ),
        )
        checks = {f.check for f in result.analysis_findings}
        assert "range.linear-underflow" in checks


class TestEveryPassAcrossAllConfigurations:
    """Every golden pipeline combo and query modality runs clean.

    The exhaustive acceptance sweep: all 24 registered
    (target, opt_level, vectorize) combinations, all four non-joint
    query modalities, and the analysis-gated partition-parallel
    configuration compile with ``verify_each="every-pass"`` — the full
    static-analysis suite (buffer safety, range, lint, concurrency)
    after every pass — without a single finding.
    """

    @pytest.mark.parametrize("target", ["cpu", "gpu"])
    @pytest.mark.parametrize("opt_level", [0, 1, 2, 3])
    @pytest.mark.parametrize("vectorize", ["off", "lanes", "batch"])
    def test_golden_combo_is_clean(self, target, opt_level, vectorize):
        result = compile_spn(
            make_gaussian_spn(),
            JointProbability(batch_size=16),
            CompilerOptions(
                target=target,
                opt_level=opt_level,
                vectorize=vectorize,
                verify_each="every-pass",
            ),
        )
        assert result.analysis_findings == []

    @pytest.mark.parametrize("kind", ["mpe", "sample", "conditional",
                                      "expectation"])
    def test_query_modality_is_clean(self, kind):
        from repro.spn.query import (
            ConditionalProbability,
            Expectation,
            MPEQuery,
            SampleQuery,
        )

        query = {
            "mpe": lambda: MPEQuery(batch_size=16),
            "sample": lambda: SampleQuery(batch_size=16),
            "conditional": lambda: ConditionalProbability(
                query_variables=(0,), batch_size=16
            ),
            "expectation": lambda: Expectation(batch_size=16),
        }[kind]()
        result = compile_spn(
            make_gaussian_spn(),
            query,
            CompilerOptions(
                opt_level=3, vectorize="batch", verify_each="every-pass"
            ),
        )
        assert result.analysis_findings == []

    def test_partition_parallel_schedule_passes_reverification(self):
        # The attached parallelSchedule is re-checked from scratch by
        # the concurrency analysis after every subsequent pass.
        from repro.spn import Gaussian, Product, Sum

        wide = Sum(
            [
                Product([Gaussian(2 * i, 0.0, 1.0),
                         Gaussian(2 * i + 1, 0.0, 1.0)])
                for i in range(4)
            ],
            [0.25] * 4,
        )
        result = compile_spn(
            wide,
            JointProbability(batch_size=16),
            CompilerOptions(
                vectorize="batch",
                max_partition_size=6,
                partition_parallel=True,
                num_threads=4,
                verify_each="every-pass",
            ),
        )
        try:
            assert result.analysis_findings == []
            assert result.executable.parallel_plan is not None
        finally:
            result.executable.close()
