"""Tests for the interval and flag-set lattices."""

import math

from repro.ir.analysis.lattices import (
    BOTTOM,
    F64_MIN,
    LOG_F64_MAX,
    LOG_F64_MIN,
    LOG_UNIT,
    TOP,
    UNIT,
    Interval,
    flags,
    join_flags,
)


class TestIntervalLattice:
    def test_bottom_is_empty(self):
        assert BOTTOM.is_bottom
        assert not BOTTOM.contains(0.0)
        assert not Interval(0.0, 1.0).is_bottom

    def test_join_is_hull(self):
        a = Interval(0.0, 1.0)
        b = Interval(2.0, 3.0)
        assert a.join(b) == Interval(0.0, 3.0)
        assert b.join(a) == Interval(0.0, 3.0)

    def test_join_with_bottom_is_identity(self):
        a = Interval(1.0, 2.0)
        assert a.join(BOTTOM) == a
        assert BOTTOM.join(a) == a
        assert BOTTOM.join(BOTTOM).is_bottom

    def test_join_only_grows(self):
        a = Interval(-1.0, 1.0)
        b = Interval(0.0, 0.5)
        joined = a.join(b)
        assert joined.lo <= min(a.lo, b.lo)
        assert joined.hi >= max(a.hi, b.hi)

    def test_widen_jumps_unstable_bounds_to_infinity(self):
        old = Interval(0.0, 1.0)
        grown = Interval(0.0, 2.0)
        widened = old.widen(grown)
        assert widened.lo == 0.0
        assert widened.hi == math.inf

    def test_widen_keeps_stable_bounds(self):
        old = Interval(0.0, 1.0)
        assert old.widen(Interval(0.5, 1.0)) == old

    def test_point_and_of(self):
        assert Interval.point(3.0) == Interval(3.0, 3.0)
        assert Interval.point(3.0).is_point
        assert Interval.of([0.25, 0.5, 0.125]) == Interval(0.125, 0.5)
        assert Interval.of([]).is_bottom


class TestIntervalArithmetic:
    def test_add_sub_neg(self):
        a = Interval(1.0, 2.0)
        b = Interval(10.0, 20.0)
        assert a.add(b) == Interval(11.0, 22.0)
        assert b.sub(a) == Interval(8.0, 19.0)
        assert a.neg() == Interval(-2.0, -1.0)

    def test_mul_sign_cases(self):
        assert Interval(-2.0, 3.0).mul(Interval(-1.0, 4.0)) == Interval(-8.0, 12.0)
        assert Interval(0.0, 1.0).mul(Interval(0.0, 1.0)) == Interval(0.0, 1.0)

    def test_mul_resolves_zero_times_inf(self):
        # 0 * inf must not poison the bounds with NaN.
        product = Interval(0.0, 1.0).mul(Interval(0.0, math.inf))
        assert not math.isnan(product.lo) and not math.isnan(product.hi)

    def test_exp_log_roundtrip_on_probabilities(self):
        log_interval = UNIT.log()
        assert log_interval == LOG_UNIT
        back = log_interval.exp()
        assert back == UNIT

    def test_exp_underflow_and_overflow(self):
        assert Interval.point(-math.inf).exp() == Interval.point(0.0)
        assert Interval.point(LOG_F64_MAX + 1.0).exp().hi == math.inf

    def test_log_clamps_negatives(self):
        assert Interval(-1.0, 1.0).log() == Interval(-math.inf, 0.0)
        assert Interval(-2.0, -1.0).log().is_bottom

    def test_logaddexp_matches_scalar(self):
        a = Interval.point(math.log(0.25))
        b = Interval.point(math.log(0.5))
        combined = a.logaddexp(b)
        assert math.isclose(combined.lo, math.log(0.75))
        assert math.isclose(combined.hi, math.log(0.75))

    def test_logaddexp_with_neg_inf_is_identity(self):
        a = Interval.point(-math.inf)
        b = Interval.point(math.log(0.5))
        assert a.logaddexp(b) == b

    def test_bottom_propagates_through_arithmetic(self):
        a = Interval(0.0, 1.0)
        for result in (
            a.add(BOTTOM),
            BOTTOM.mul(a),
            BOTTOM.exp(),
            a.logaddexp(BOTTOM),
        ):
            assert result.is_bottom

    def test_min_max_with(self):
        a = Interval(0.0, 2.0)
        b = Interval(1.0, 3.0)
        assert a.min_with(b) == Interval(0.0, 2.0)
        assert a.max_with(b) == Interval(1.0, 3.0)


class TestConstants:
    def test_float_constants_consistent(self):
        assert math.isclose(LOG_F64_MIN, math.log(F64_MIN))
        assert TOP.lo == -math.inf and TOP.hi == math.inf
        # F64_MIN is the smallest positive *normal*; subnormals sit below.
        assert 0.0 < 5e-324 < F64_MIN


class TestFlagLattice:
    def test_join_is_union(self):
        assert join_flags(flags("a"), flags("b")) == flags("a", "b")
        assert join_flags(flags(), flags("a")) == flags("a")

    def test_flags_constructor(self):
        assert flags() == frozenset()
        assert flags("allocated") == frozenset({"allocated"})
