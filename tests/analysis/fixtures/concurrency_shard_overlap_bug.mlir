"builtin.module"() ({
  "lo_spn.kernel"() ({
  ^bb0(%0: memref<?x2xf32>, %1: memref<1x?xf32>):
    "lo_spn.task"(%0, %1) ({
    ^bb0(%2: index, %3: memref<?x2xf32>, %4: memref<1x?xf32>):
      %5 = "lo_spn.batch_read"(%3, %2) {staticIndex = 0 : i64, transposed = false} : (memref<?x2xf32>, index) -> f32
      %6 = "arith.constant"() {value = 0 : i64} : () -> index
      "memref.store"(%5, %4, %6, %6) : (f32, memref<1x?xf32>, index, index) -> ()
    }) {batchSize = 4 : i64} : (memref<?x2xf32>, memref<1x?xf32>) -> ()
    "lo_spn.kernel_return"() : () -> ()
  }) {arg_types = [memref<?x2xf32>, memref<1x?xf32>], numInputs = 1 : i64, readonlyArgs = [0 : i64], result_types = [], sym_name = "overlapping_shards"} : () -> ()
}) : () -> ()
