"builtin.module"() ({
  "func.func"() ({
    %0 = "arith.constant"() {value = 1.5 : f64} : () -> f64
    %1 = "arith.constant"() {value = 2.5 : f64} : () -> f64
    %2 = "arith.addf"(%0, %1) : (f64, f64) -> f64
    "func.return"() : () -> ()
  }) {arg_types = [], result_types = [], sym_name = "dead_result"} : () -> ()
}) : () -> ()
