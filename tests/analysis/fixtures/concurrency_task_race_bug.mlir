"builtin.module"() ({
  "lo_spn.kernel"() ({
  ^bb0(%0: memref<?x2xf32>, %1: memref<1x?x!lo_spn.log<f32>>):
    %2 = "memref.dim"(%0) {dim = 0 : i64} : (memref<?x2xf32>) -> index
    %3 = "memref.alloc"(%2) : (index) -> memref<1x?x!lo_spn.log<f32>>
    "lo_spn.task"(%0, %3) ({
    ^bb0(%4: index, %5: memref<?x2xf32>, %6: memref<1x?x!lo_spn.log<f32>>):
      %7 = "lo_spn.batch_read"(%5, %4) {staticIndex = 0 : i64, transposed = false} : (memref<?x2xf32>, index) -> f32
      %8 = "lo_spn.body"(%7) ({
      ^bb0(%9: f32):
        %10 = "lo_spn.gaussian"(%9) {mean = 0.0 : f64, stddev = 1.0 : f64, supportMarginal = false} : (f32) -> !lo_spn.log<f32>
        "lo_spn.yield"(%10) : (!lo_spn.log<f32>) -> ()
      }) : (f32) -> !lo_spn.log<f32>
      "lo_spn.batch_write"(%6, %4, %8) {transposed = true} : (memref<1x?x!lo_spn.log<f32>>, index, !lo_spn.log<f32>) -> ()
    }) {batchSize = 4 : i64} : (memref<?x2xf32>, memref<1x?x!lo_spn.log<f32>>) -> ()
    "lo_spn.task"(%3, %1) ({
    ^bb0(%11: index, %12: memref<1x?x!lo_spn.log<f32>>, %13: memref<1x?x!lo_spn.log<f32>>):
      %14 = "lo_spn.batch_read"(%12, %11) {staticIndex = 0 : i64, transposed = true} : (memref<1x?x!lo_spn.log<f32>>, index) -> !lo_spn.log<f32>
      %15 = "lo_spn.body"(%14) ({
      ^bb0(%16: !lo_spn.log<f32>):
        %17 = "lo_spn.constant"() {value = -0.6931471805599453 : f64} : () -> !lo_spn.log<f32>
        %18 = "lo_spn.mul"(%16, %17) : (!lo_spn.log<f32>, !lo_spn.log<f32>) -> !lo_spn.log<f32>
        "lo_spn.yield"(%18) : (!lo_spn.log<f32>) -> ()
      }) : (!lo_spn.log<f32>) -> !lo_spn.log<f32>
      "lo_spn.batch_write"(%13, %11, %15) {transposed = true} : (memref<1x?x!lo_spn.log<f32>>, index, !lo_spn.log<f32>) -> ()
    }) {batchSize = 4 : i64, outputAliases = [1 : i64]} : (memref<1x?x!lo_spn.log<f32>>, memref<1x?x!lo_spn.log<f32>>) -> ()
    "memref.dealloc"(%3) : (memref<1x?x!lo_spn.log<f32>>) -> ()
    "lo_spn.kernel_return"() : () -> ()
  }) {arg_types = [memref<?x2xf32>, memref<1x?x!lo_spn.log<f32>>], numInputs = 1 : i64, parallelSchedule = "{\"waves\": [[0, 1]]}", readonlyArgs = [0 : i64], result_types = [], sym_name = "racy_schedule"} : () -> ()
}) : () -> ()
