"builtin.module"() ({
  "func.func"() ({
    %0 = "memref.alloc"() : () -> memref<4xf64>
    %1 = "arith.constant"() {value = 0 : i64} : () -> index
    "memref.dealloc"(%0) : (memref<4xf64>) -> ()
    %2 = "memref.load"(%0, %1) : (memref<4xf64>, index) -> f64
    "func.return"() : () -> ()
  }) {arg_types = [], result_types = [], sym_name = "use_after_free"} : () -> ()
}) : () -> ()
