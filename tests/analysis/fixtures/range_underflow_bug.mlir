"builtin.module"() ({
  "func.func"() ({
    %0 = "lo_spn.constant"() {value = 1e-160 : f64} : () -> f64
    %1 = "lo_spn.constant"() {value = 1e-160 : f64} : () -> f64
    %2 = "lo_spn.mul"(%0, %1) : (f64, f64) -> f64
    %3 = "lo_spn.log"(%2) : (f64) -> !lo_spn.log<f64>
    "func.return"() : () -> ()
  }) {arg_types = [], result_types = [], sym_name = "underflow"} : () -> ()
}) : () -> ()
