"""Tests for the def-use and structure linter."""

from repro.dialects.arith import AddFOp, ConstantOp
from repro.dialects.func import FuncOp, ReturnOp
from repro.dialects import lospn
from repro.diagnostics import Severity
from repro.ir import Block, Builder, ModuleOp, f64
from repro.ir.analysis import run_checks
from repro.ir.types import MemRefType


def _lint(module, phase="final"):
    return run_checks(module, checks=["lint"], phase=phase)


def _rules(module, phase="final"):
    return {f.check for f in _lint(module, phase)}


def _module_with_func(name="f"):
    module = ModuleOp.build()
    fn = Builder.at_end(module.body).create(FuncOp, name, [], [])
    return module, fn, Builder.at_end(fn.body)


class TestUnusedResult:
    def test_dead_pure_chain_reported_in_final_phase(self):
        module, fn, fb = _module_with_func()
        a = fb.create(ConstantOp, 1.0, f64)
        b = fb.create(ConstantOp, 2.0, f64)
        fb.create(AddFOp, a.result, b.result)  # result never used
        fb.create(ReturnOp, [])
        findings = [
            f for f in _lint(module) if f.check == "lint.unused-result"
        ]
        # Only the add is fully dead; the constants feed it.
        assert len(findings) == 1
        assert findings[0].severity == Severity.WARNING
        assert "arith.addf" in findings[0].op_path

    def test_suppressed_in_mid_phase(self):
        # Between passes, not-yet-swept dead code is transient, not a bug.
        module, fn, fb = _module_with_func()
        fb.create(ConstantOp, 1.0, f64)
        fb.create(ReturnOp, [])
        assert "lint.unused-result" not in _rules(module, phase="mid")
        assert "lint.unused-result" in _rules(module, phase="final")

    def test_used_results_not_reported(self):
        module = ModuleOp.build()
        fn = Builder.at_end(module.body).create(FuncOp, "f", [], [f64])
        fb = Builder.at_end(fn.body)
        c = fb.create(ConstantOp, 1.0, f64)
        fb.create(ReturnOp, [c.result])
        assert _rules(module) == set()


class TestDeadBlock:
    def test_non_entry_block_reported(self):
        module, fn, fb = _module_with_func()
        fb.create(ReturnOp, [])
        fn.regions[0].append_block(Block())
        findings = [f for f in _lint(module) if f.check == "lint.dead-block"]
        assert len(findings) == 1
        assert "unreachable" in findings[0].message


class TestShadowedSymbol:
    def test_duplicate_function_symbol_is_error(self):
        module = ModuleOp.build()
        b = Builder.at_end(module.body)
        for _ in range(2):
            fn = b.create(FuncOp, "same_name", [], [])
            Builder.at_end(fn.body).create(ReturnOp, [])
        findings = [
            f for f in _lint(module) if f.check == "lint.shadowed-symbol"
        ]
        assert len(findings) == 1
        assert findings[0].severity == Severity.ERROR
        assert "same_name" in findings[0].message
        assert findings[0].detail["first_definition"]

    def test_distinct_symbols_are_clean(self):
        module = ModuleOp.build()
        b = Builder.at_end(module.body)
        for name in ("a", "b"):
            fn = b.create(FuncOp, name, [], [])
            Builder.at_end(fn.body).create(ReturnOp, [])
        assert "lint.shadowed-symbol" not in _rules(module)


class TestBatchDimMismatch:
    def _kernel_with_task(self, arg_type):
        module = ModuleOp.build()
        kernel = Builder.at_end(module.body).create(
            lospn.KernelOp, "k", [arg_type]
        )
        kb = Builder.at_end(kernel.body)
        task = kb.create(lospn.TaskOp, [kernel.body.arguments[0]], 8)
        kb.create(lospn.KernelReturnOp)
        return module, task, Builder.at_end(task.body)

    def test_transposed_access_against_row_major_buffer(self):
        # transposed=True indexes input[staticIndex, dynamicIndex]; on a
        # [batch x features] buffer the static index lands on the
        # *dynamic* batch axis while the batch runs over the static
        # feature axis: the orientation disagrees with the signature.
        module, task, tb = self._kernel_with_task(MemRefType((None, 4), f64))
        tb.create(
            lospn.BatchReadOp,
            task.input_args[0],
            task.batch_index,
            0,
            transposed=True,
        )
        findings = [
            f for f in _lint(module) if f.check == "lint.batch-dim-mismatch"
        ]
        assert len(findings) == 1
        assert findings[0].severity == Severity.ERROR
        assert "orientation" in findings[0].message

    def test_matching_orientation_is_clean(self):
        module, task, tb = self._kernel_with_task(MemRefType((None, 4), f64))
        tb.create(
            lospn.BatchReadOp, task.input_args[0], task.batch_index, 0
        )
        assert "lint.batch-dim-mismatch" not in _rules(module)

    def test_batch_write_count_disagrees_with_extent(self):
        # A [2 x batch] output buffer written with only one value per
        # sample: the task disagrees with the kernel signature.
        module = ModuleOp.build()
        kernel = Builder.at_end(module.body).create(
            lospn.KernelOp,
            "k",
            [MemRefType((None, 4), f64), MemRefType((2, None), f64)],
        )
        kb = Builder.at_end(kernel.body)
        task = kb.create(
            lospn.TaskOp, list(kernel.body.arguments), 8
        )
        tb = Builder.at_end(task.body)
        read = tb.create(
            lospn.BatchReadOp, task.input_args[0], task.batch_index, 0
        )
        tb.create(
            lospn.BatchWriteOp,
            task.input_args[1],
            task.batch_index,
            [read.results[0]],
            transposed=True,
        )
        kb.create(lospn.KernelReturnOp)
        findings = [
            f for f in _lint(module) if f.check == "lint.batch-dim-mismatch"
        ]
        assert len(findings) == 1
        assert "writes 1 value(s)" in findings[0].message
