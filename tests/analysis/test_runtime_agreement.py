"""Analysis-vs-runtime agreement on shard-plan disjointness.

``tests/runtime/test_sharding.py`` asserts *dynamically* that every
shard plan is contiguous, disjoint and covering. This module closes the
loop with the static side: a fault-injected overlapping plan (the same
``inject_overlapping_shards`` hook the runtime honors) must be flagged
by :func:`check_shard_plan` *before* execution, and the ranges the
executor actually ran — recorded in the shard timeline — must be
flagged by the very same check. What the runtime test catches
dynamically, the race detector names statically.
"""

import numpy as np

from repro.compiler import CompilerOptions, compile_spn
from repro.ir.analysis import check_shard_plan
from repro.runtime import plan_chunks
from repro.spn import JointProbability
from repro.testing import faults

from ..conftest import make_gaussian_spn

ROWS = 512
BATCH = 64


def _executable(num_threads=2):
    return compile_spn(
        make_gaussian_spn(),
        JointProbability(batch_size=BATCH),
        CompilerOptions(vectorize="batch", num_threads=num_threads),
    ).executable


class TestStaticSide:
    def test_healthy_plan_is_clean(self):
        plan = plan_chunks(ROWS, BATCH, 2)
        assert len(plan) >= 2
        assert check_shard_plan(plan, ROWS) == []

    def test_fault_injected_plan_is_flagged_before_running(self):
        plan = plan_chunks(ROWS, BATCH, 2)
        with faults.inject_overlapping_shards(rows=1):
            perturbed = faults.maybe_overlap_shards(plan, ROWS)
        assert perturbed != plan
        findings = check_shard_plan(perturbed, ROWS)
        overlaps = [
            f for f in findings if f.check == "concurrency.shard-overlap"
        ]
        # Every extended chunk overlaps its successor.
        assert len(overlaps) == len(plan) - 1
        assert not any(f.check == "concurrency.shard-gap" for f in findings)

    def test_fault_outside_context_is_inert(self):
        plan = plan_chunks(ROWS, BATCH, 2)
        assert faults.maybe_overlap_shards(plan, ROWS) == plan


class TestRuntimeSide:
    def test_executed_ranges_match_the_static_verdict(self, rng):
        inputs = rng.normal(size=(ROWS, 2)).astype(np.float32)
        ex = _executable()
        try:
            baseline = ex.execute(inputs)
            clean_ranges = sorted(
                (r.start, r.end) for r in ex.last_timeline.records
            )
            assert check_shard_plan(clean_ranges, ROWS) == []

            with faults.inject_overlapping_shards(rows=1):
                observed = ex.execute(inputs)
            ran = sorted((r.start, r.end) for r in ex.last_timeline.records)
        finally:
            ex.close()

        # The executor really ran overlapping shards...
        findings = check_shard_plan(ran, ROWS)
        assert any(
            f.check == "concurrency.shard-overlap" for f in findings
        ), f"expected the executed ranges {ran} to be flagged"
        # ...and only determinism saved the output: the per-sample
        # kernels recompute identical values for the doubly-written
        # rows, which is exactly why this must be a *static* guarantee
        # rather than an observed-output one.
        np.testing.assert_array_equal(observed, baseline)

    def test_dynamic_coverage_check_catches_the_same_fault(self):
        # The runtime suite's disjointness invariant (``_covers``-style)
        # fails on the perturbed plan too — both layers see one truth.
        plan = plan_chunks(ROWS, BATCH, 2)
        with faults.inject_overlapping_shards(rows=1):
            perturbed = faults.maybe_overlap_shards(plan, ROWS)

        def covers(ranges, total):
            position = 0
            for start, end in ranges:
                if start != position or end <= start:
                    return False
                position = end
            return position == total

        assert covers(plan, ROWS)
        assert not covers(perturbed, ROWS)
