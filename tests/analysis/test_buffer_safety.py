"""Tests for the buffer-safety sanitizer."""

from repro.dialects.arith import ConstantOp
from repro.dialects.func import FuncOp, ReturnOp
from repro.dialects.scf import IfOp
from repro.dialects import lospn
from repro.dialects.memref import AllocOp, DeallocOp, DimOp, LoadOp, StoreOp
from repro.diagnostics import Severity
from repro.ir import Builder, ModuleOp, f64, i1, index
from repro.ir.analysis import run_checks
from repro.ir.types import MemRefType


def _func(module_args=(), name="f"):
    module = ModuleOp.build()
    fn = Builder.at_end(module.body).create(FuncOp, name, list(module_args), [])
    return module, fn, Builder.at_end(fn.body)


def _checks(module, phase="final"):
    return run_checks(module, checks=["buffer-safety"], phase=phase)


def _by_rule(findings):
    return {f.check for f in findings}


class TestUseAfterFree:
    def test_load_after_dealloc_is_error(self):
        module, fn, fb = _func()
        buf = fb.create(AllocOp, MemRefType((4,), f64)).result
        zero = fb.create(ConstantOp, 0, index).result
        fb.create(DeallocOp, buf)
        fb.create(LoadOp, buf, [zero])
        fb.create(ReturnOp, [])
        findings = _checks(module)
        uaf = [f for f in findings if f.check == "buffer-safety.use-after-free"]
        assert len(uaf) == 1
        assert uaf[0].severity == Severity.ERROR
        assert "after it is deallocated" in uaf[0].message
        assert uaf[0].op_path and "memref.load" in uaf[0].op_path

    def test_may_freed_on_one_branch_is_flagged(self):
        module, fn, fb = _func()
        buf = fb.create(AllocOp, MemRefType((4,), f64)).result
        zero = fb.create(ConstantOp, 0, index).result
        cond = fb.create(ConstantOp, True, i1).result
        if_op = fb.create(IfOp, cond, [], with_else=True)
        Builder.at_end(if_op.then_block).create(DeallocOp, buf)
        fb.create(LoadOp, buf, [zero])
        fb.create(ReturnOp, [])
        findings = _checks(module)
        uaf = [f for f in findings if f.check == "buffer-safety.use-after-free"]
        assert len(uaf) == 1
        assert "may already be deallocated" in uaf[0].message

    def test_use_before_dealloc_is_clean(self):
        module, fn, fb = _func()
        buf = fb.create(AllocOp, MemRefType((4,), f64)).result
        zero = fb.create(ConstantOp, 0, index).result
        fb.create(LoadOp, buf, [zero])
        fb.create(DeallocOp, buf)
        fb.create(ReturnOp, [])
        assert "buffer-safety.use-after-free" not in _by_rule(_checks(module))

    def test_use_through_task_alias_is_tracked(self):
        # A batch_read through a task block argument is a use of the
        # underlying (freed) allocation.
        module = ModuleOp.build()
        kernel = Builder.at_end(module.body).create(
            lospn.KernelOp, "k", [MemRefType((None, 2), f64)]
        )
        kb = Builder.at_end(kernel.body)
        n = kb.create(ConstantOp, 16, index).result
        buf = kb.create(AllocOp, MemRefType((None, 2), f64), [n]).result
        kb.create(DeallocOp, buf)
        task = kb.create(lospn.TaskOp, [buf], 8)
        tb = Builder.at_end(task.body)
        tb.create(
            lospn.BatchReadOp, task.input_args[0], task.batch_index, 0
        )
        kb.create(lospn.KernelReturnOp)
        findings = _checks(module)
        assert "buffer-safety.use-after-free" in _by_rule(findings)


class TestDoubleFree:
    def test_double_dealloc_is_error(self):
        module, fn, fb = _func()
        buf = fb.create(AllocOp, MemRefType((4,), f64)).result
        fb.create(DeallocOp, buf)
        fb.create(DeallocOp, buf)
        fb.create(ReturnOp, [])
        findings = _checks(module)
        dbl = [f for f in findings if f.check == "buffer-safety.double-free"]
        assert len(dbl) == 1
        assert dbl[0].severity == Severity.ERROR


class TestReadonlyWrite:
    def test_store_into_readonly_arg_is_error(self):
        module, fn, fb = _func(module_args=[MemRefType((None, 4), f64)])
        fn.attributes["readonlyArgs"] = (0,)
        value = fb.create(ConstantOp, 1.0, f64).result
        zero = fb.create(ConstantOp, 0, index).result
        fb.create(StoreOp, value, fn.body.arguments[0], [zero, zero])
        fb.create(ReturnOp, [])
        findings = _checks(module)
        rules = _by_rule(findings)
        assert "buffer-safety.readonly-write" in rules

    def test_store_into_unmarked_arg_is_clean(self):
        module, fn, fb = _func(module_args=[MemRefType((None, 4), f64)])
        value = fb.create(ConstantOp, 1.0, f64).result
        zero = fb.create(ConstantOp, 0, index).result
        fb.create(StoreOp, value, fn.body.arguments[0], [zero, zero])
        fb.create(ReturnOp, [])
        assert "buffer-safety.readonly-write" not in _by_rule(_checks(module))


class TestStaticOutOfBounds:
    def test_constant_index_past_extent(self):
        module, fn, fb = _func()
        buf = fb.create(AllocOp, MemRefType((4,), f64)).result
        bad = fb.create(ConstantOp, 4, index).result
        fb.create(LoadOp, buf, [bad])
        fb.create(DeallocOp, buf)
        fb.create(ReturnOp, [])
        findings = _checks(module)
        oob = [f for f in findings if f.check == "buffer-safety.out-of-bounds"]
        assert len(oob) == 1
        assert "index 4" in oob[0].message

    def test_in_bounds_constant_index_is_clean(self):
        module, fn, fb = _func()
        buf = fb.create(AllocOp, MemRefType((4,), f64)).result
        ok = fb.create(ConstantOp, 3, index).result
        fb.create(LoadOp, buf, [ok])
        fb.create(DeallocOp, buf)
        fb.create(ReturnOp, [])
        assert "buffer-safety.out-of-bounds" not in _by_rule(_checks(module))

    def test_dynamic_extent_not_flagged(self):
        module, fn, fb = _func(module_args=[MemRefType((None,), f64)])
        big = fb.create(ConstantOp, 1000, index).result
        fb.create(LoadOp, fn.body.arguments[0], [big])
        fb.create(ReturnOp, [])
        assert "buffer-safety.out-of-bounds" not in _by_rule(_checks(module))

    def test_memref_dim_of_missing_dimension(self):
        module, fn, fb = _func(module_args=[MemRefType((None, 4), f64)])
        fb.create(DimOp, fn.body.arguments[0], 2)
        fb.create(ReturnOp, [])
        findings = _checks(module)
        oob = [f for f in findings if f.check == "buffer-safety.out-of-bounds"]
        assert len(oob) == 1
        assert "memref.dim" in oob[0].message

    def test_batch_read_static_index_out_of_bounds(self):
        module = ModuleOp.build()
        kernel = Builder.at_end(module.body).create(
            lospn.KernelOp, "k", [MemRefType((None, 2), f64)]
        )
        kb = Builder.at_end(kernel.body)
        task = kb.create(lospn.TaskOp, [kernel.body.arguments[0]], 8)
        tb = Builder.at_end(task.body)
        # Feature column 5 of a 2-feature input.
        tb.create(
            lospn.BatchReadOp, task.input_args[0], task.batch_index, 5
        )
        kb.create(lospn.KernelReturnOp)
        findings = _checks(module)
        oob = [f for f in findings if f.check == "buffer-safety.out-of-bounds"]
        assert len(oob) == 1
        assert "feature column index 5" in oob[0].message


class TestLeak:
    def test_unfreed_allocation_warns_in_final_phase(self):
        module, fn, fb = _func()
        fb.create(AllocOp, MemRefType((4,), f64))
        fb.create(ReturnOp, [])
        findings = _checks(module, phase="final")
        leaks = [f for f in findings if f.check == "buffer-safety.leak"]
        assert len(leaks) == 1
        assert leaks[0].severity == Severity.WARNING

    def test_mid_phase_before_dealloc_pass_is_silent(self):
        # Between passes, a function with no deallocs at all simply has
        # not reached BufferDeallocation yet; not a leak.
        module, fn, fb = _func()
        fb.create(AllocOp, MemRefType((4,), f64))
        fb.create(ReturnOp, [])
        assert "buffer-safety.leak" not in _by_rule(_checks(module, phase="mid"))

    def test_mid_phase_with_other_deallocs_still_flags(self):
        module, fn, fb = _func()
        freed = fb.create(AllocOp, MemRefType((4,), f64)).result
        fb.create(AllocOp, MemRefType((8,), f64))
        fb.create(DeallocOp, freed)
        fb.create(ReturnOp, [])
        findings = _checks(module, phase="mid")
        leaks = [f for f in findings if f.check == "buffer-safety.leak"]
        assert len(leaks) == 1
        assert "8" in leaks[0].message

    def test_escaping_allocation_is_not_a_leak(self):
        module = ModuleOp.build()
        mem = MemRefType((4,), f64)
        fn = Builder.at_end(module.body).create(FuncOp, "f", [], [mem])
        fb = Builder.at_end(fn.body)
        buf = fb.create(AllocOp, mem).result
        fb.create(ReturnOp, [buf])
        assert "buffer-safety.leak" not in _by_rule(_checks(module))

    def test_freed_allocation_is_clean(self):
        module, fn, fb = _func()
        buf = fb.create(AllocOp, MemRefType((4,), f64)).result
        fb.create(DeallocOp, buf)
        fb.create(ReturnOp, [])
        assert _by_rule(_checks(module)) == set()
