"""Tests for the per-task memory-access summaries and race detector.

The ``concurrency`` check is the static half of the PR 7 parallelism
story: it proves (or refutes) that row-sharded and partition-parallel
execution cannot race. These tests cover the summarizer on real
compiled kernels, the conflict/wave computation the
``parallelize-partitions`` pass consumes, the seeded bug fixtures, and
the shard-plan cross-check used by the analysis-vs-runtime agreement
test.
"""

import json
import pathlib

from repro.compiler.bufferization import (
    bufferize,
    insert_deallocations,
    remove_result_copies,
)
from repro.compiler.frontend import build_hispn_module
from repro.compiler.lower_to_lospn import lower_to_lospn
from repro.compiler.partitioning import PartitioningOptions, partition_kernel
from repro.diagnostics import Severity
from repro.ir import parse_module, verify
from repro.ir.analysis import (
    check_shard_plan,
    dependence_waves,
    run_checks,
    summarize_kernel,
)
from repro.ir.analysis.memory_access import conflicts, parse_schedule
from repro.spn import Gaussian, JointProbability, Product, Sum

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def _kernel(module):
    return next(op for op in module.walk() if op.op_name == "lo_spn.kernel")


def _checks(module):
    return run_checks(module, checks=["concurrency"], phase="final")


def _partitioned(spn, max_partition_size):
    """Lower an SPN to the buffer-deallocation stage (multi-task form)."""
    module = lower_to_lospn(build_hispn_module(spn, JointProbability()))
    module, _ = partition_kernel(
        module, PartitioningOptions(max_partition_size=max_partition_size)
    )
    module = bufferize(module)
    remove_result_copies(module)
    insert_deallocations(module)
    verify(module)
    return module


def _wide_spn(width=4):
    """Independent 2-feature products under one Sum — disjoint partitions."""
    products = [
        Product([Gaussian(2 * i, 0.0, 1.0), Gaussian(2 * i + 1, 0.0, 1.0)])
        for i in range(width)
    ]
    return Sum(products, [1.0 / width] * width)


class TestSummaries:
    def test_wide_spn_partitions_are_disjoint(self):
        module = _partitioned(_wide_spn(), max_partition_size=6)
        summaries = summarize_kernel(_kernel(module))
        assert len(summaries) >= 3  # leaves + combiner
        # Every task models precisely (no opaque degradation) and every
        # write is batch-confined — the shard-safety invariant.
        for summary in summaries:
            assert summary.precise
            for access in summary.accesses.values():
                assert access.batch_confined
                assert not access.opaque
        # Leaf tasks are pairwise conflict-free; each conflicts with the
        # combiner (it reads their intermediates).
        leaves, combiner = summaries[:-1], summaries[-1]
        for i, a in enumerate(leaves):
            for b in leaves[i + 1 :]:
                assert conflicts(a, b) == []
            kinds = {kind for _, kind in conflicts(a, combiner)}
            assert kinds == {"raw"}

    def test_dependence_waves_widen_then_join(self):
        module = _partitioned(_wide_spn(), max_partition_size=6)
        waves = dependence_waves(summarize_kernel(_kernel(module)))
        assert len(waves) == 2
        assert len(waves[0]) >= 3  # all leaf partitions run concurrently
        assert len(waves[1]) == 1  # the combiner joins them

    def test_dependent_tasks_stay_sequential(self):
        # The race fixture's second task reads the first one's
        # intermediate: the safe schedule is strictly sequential.
        module = parse_module(
            (FIXTURES / "concurrency_task_race_bug.mlir").read_text()
        )
        waves = dependence_waves(summarize_kernel(_kernel(module)))
        assert waves == [[0], [1]]

    def test_real_kernels_analyze_clean(self):
        module = _partitioned(_wide_spn(), max_partition_size=6)
        assert _checks(module) == []


class TestSeededFixtures:
    def test_shard_overlap_fixture_is_flagged(self):
        module = parse_module(
            (FIXTURES / "concurrency_shard_overlap_bug.mlir").read_text()
        )
        verify(module)
        findings = _checks(module)
        overlap = [
            f for f in findings if f.check == "concurrency.shard-overlap"
        ]
        assert len(overlap) == 1
        assert overlap[0].severity == Severity.ERROR
        assert "race" in overlap[0].message
        assert overlap[0].op_path and "lo_spn.task" in overlap[0].op_path

    def test_task_race_fixture_is_flagged(self):
        module = parse_module(
            (FIXTURES / "concurrency_task_race_bug.mlir").read_text()
        )
        verify(module)
        findings = _checks(module)
        races = [f for f in findings if f.check == "concurrency.task-race"]
        assert len(races) == 1
        assert races[0].severity == Severity.ERROR
        assert races[0].detail["kind"] == "raw"
        assert races[0].detail["tasks"] == (0, 1)

    def test_correct_schedule_on_race_fixture_is_clean(self):
        # Same kernel, but the schedule the analysis itself computes:
        # the declared-schedule re-verification accepts it.
        module = parse_module(
            (FIXTURES / "concurrency_task_race_bug.mlir").read_text()
        )
        kernel = _kernel(module)
        waves = dependence_waves(summarize_kernel(kernel))
        kernel.attributes["parallelSchedule"] = json.dumps({"waves": waves})
        assert _checks(module) == []


class TestScheduleVerification:
    def _racy_kernel(self, schedule):
        module = parse_module(
            (FIXTURES / "concurrency_task_race_bug.mlir").read_text()
        )
        _kernel(module).attributes["parallelSchedule"] = json.dumps(schedule)
        return module

    def test_reversed_order_is_schedule_order_error(self):
        findings = _checks(self._racy_kernel({"waves": [[1], [0]]}))
        assert {f.check for f in findings} == {"concurrency.schedule-order"}
        assert "before its read-after-write dependency" in findings[0].message

    def test_out_of_range_index_is_flagged(self):
        findings = _checks(self._racy_kernel({"waves": [[0], [7]]}))
        assert {f.check for f in findings} == {"concurrency.schedule-order"}

    def test_duplicated_task_is_flagged(self):
        findings = _checks(self._racy_kernel({"waves": [[0], [0, 1]]}))
        assert any(
            "more than one wave" in f.message
            for f in findings
            if f.check == "concurrency.schedule-order"
        )

    def test_omitted_task_is_flagged(self):
        findings = _checks(self._racy_kernel({"waves": [[0]]}))
        assert any(
            "omits task(s) [1]" in f.message
            for f in findings
            if f.check == "concurrency.schedule-order"
        )

    def test_parse_schedule_roundtrip(self):
        module = parse_module(
            (FIXTURES / "concurrency_task_race_bug.mlir").read_text()
        )
        schedule = parse_schedule(_kernel(module))
        assert schedule == {"waves": [[0, 1]]}


class TestShardPlanCheck:
    def test_disjoint_covering_plan_is_clean(self):
        assert check_shard_plan([(0, 4), (4, 8)], total=8) == []

    def test_overlap_is_error(self):
        findings = check_shard_plan([(0, 5), (3, 8)], total=8)
        assert [f.check for f in findings] == ["concurrency.shard-overlap"]
        assert findings[0].severity == Severity.ERROR
        assert "[3, 5)" in findings[0].message

    def test_gap_is_error(self):
        findings = check_shard_plan([(0, 3), (5, 8)], total=8)
        assert [f.check for f in findings] == ["concurrency.shard-gap"]
        assert "[3, 5)" in findings[0].message

    def test_tail_gap_is_error(self):
        findings = check_shard_plan([(0, 6)], total=8)
        assert [f.check for f in findings] == ["concurrency.shard-gap"]

    def test_unordered_input_is_sorted_first(self):
        assert check_shard_plan([(4, 8), (0, 4)], total=8) == []
