"""Transform/linter interplay: LICM and DCE against the static checks.

Satellite coverage for ``repro.ir.transforms.licm`` and ``dce``: the
transforms must leave golden pipeline modules in a state the analyses
accept, and the linter's dead-code rule must agree with what DCE
actually removes.
"""

from repro.diagnostics import Severity
from repro.dialects.arith import AddFOp, ConstantOp
from repro.dialects.func import FuncOp, ReturnOp
from repro.dialects.scf import ForOp, YieldOp
from repro.ir import Builder, ModuleOp, f64, index, verify
from repro.ir.analysis import run_checks, severity_at_least
from repro.ir.transforms.dce import run_dce
from repro.ir.transforms.licm import hoist_loop_invariants
from repro.testing.generators import CaseGenerator
from repro.testing.oracle import _lowered_module


def _errors(findings):
    return [f for f in findings if severity_at_least(f.severity, Severity.ERROR)]


def _golden_modules():
    generator = CaseGenerator(seed=11)
    for index_ in range(2):
        case = generator.case(index_)
        for vectorize in ("off", "batch"):
            yield f"case {index_} ({vectorize})", _lowered_module(case, vectorize)


class TestTransformsOnGoldenModules:
    def test_licm_preserves_analysis_cleanliness(self):
        for label, module in _golden_modules():
            hoist_loop_invariants(module)
            verify(module)
            findings = run_checks(module, phase="mid")
            assert _errors(findings) == [], f"{label}: {findings}"

    def test_licm_then_dce_leaves_no_dead_code_or_errors(self):
        for label, module in _golden_modules():
            hoist_loop_invariants(module)
            run_dce(module)
            verify(module)
            findings = run_checks(module, phase="final")
            assert _errors(findings) == [], f"{label}: {findings}"
            dead = [f for f in findings if f.check == "lint.unused-result"]
            assert dead == [], f"{label}: DCE left dead code: {dead}"


class TestLinterAgreesWithDCE:
    def _module_with_dead_chain(self):
        module = ModuleOp.build()
        fn = Builder.at_end(module.body).create(FuncOp, "f", [], [])
        fb = Builder.at_end(fn.body)
        a = fb.create(ConstantOp, 1.0, f64)
        b = fb.create(ConstantOp, 2.0, f64)
        fb.create(AddFOp, a.result, b.result)
        fb.create(ReturnOp, [])
        return module

    def test_dce_clears_the_lint_warning(self):
        module = self._module_with_dead_chain()
        before = run_checks(module, checks=["lint"], phase="final")
        assert any(f.check == "lint.unused-result" for f in before)
        erased = run_dce(module)
        assert erased == 3  # add + both now-dead constants
        after = run_checks(module, checks=["lint"], phase="final")
        assert after == []


class TestLICMOnLoops:
    def test_hoisted_invariants_stay_lint_clean(self):
        module = ModuleOp.build()
        fn = Builder.at_end(module.body).create(FuncOp, "f", [index], [])
        fb = Builder.at_end(fn.body)
        zero = fb.create(ConstantOp, 0, index).result
        one = fb.create(ConstantOp, 1, index).result
        loop = fb.create(ForOp, zero, fn.body.arguments[0], one)
        lb = Builder.at_end(loop.body_block)
        # Invariant chain: both ops hoist together.
        c = lb.create(ConstantOp, 4.0, f64)
        doubled = lb.create(AddFOp, c.result, c.result)
        sink = lb.create(AddFOp, doubled.result, doubled.result)
        lb.create(YieldOp, [])
        fb.create(ReturnOp, [])
        del sink

        hoisted = hoist_loop_invariants(module)
        assert hoisted == 3
        verify(module)
        # Post-LICM the (dead) chain now sits outside the loop; the
        # linter still sees through it and DCE can finish the job.
        findings = run_checks(module, phase="final")
        assert _errors(findings) == []
        run_dce(module)
        assert run_checks(module, checks=["lint"], phase="final") == []
