"""Tests for the stream-hazard verifier over GPU execution traces.

Seeded hazards are constructed as raw :class:`ExecutionProfile` records
(the simulator's own API cannot express a wait-before-record, and the
point is to verify traces, not to trust the producer). The clean-trace
tests then run the real pipelined GPU executable and assert the
verifier accepts what the simulator actually emits — the
analysis-vs-runtime agreement for the stream half of the story.
"""

import json

import numpy as np
import pytest

from repro.compiler import CompilerOptions, compile_spn
from repro.diagnostics import Severity
from repro.gpusim.device import (
    EventRecord,
    ExecutionProfile,
    LaunchRecord,
    TransferRecord,
    WaitRecord,
)
from repro.ir.analysis import verify_profile
from repro.ir.analysis.stream_hazards import (
    dump_trace_reproducer,
    profile_from_json,
    profile_to_json,
    shrink_profile,
)
from repro.spn import JointProbability

from ..conftest import make_gaussian_spn

BUF = ("device:0", 0, 1024)
OTHER = ("device:1", 0, 1024)


def _launch(stream, seq, reads=(), writes=()):
    return LaunchRecord(
        "spn_kernel", 4, 256, 1e-4, 1e-4,
        stream=stream, seq=seq, reads=tuple(reads), writes=tuple(writes),
    )


def _memcpy(direction, stream, seq, reads=(), writes=()):
    return TransferRecord(
        direction, 1024, 1e-5,
        stream=stream, seq=seq, reads=tuple(reads), writes=tuple(writes),
    )


def _checks_of(findings):
    return [f.check for f in findings]


class TestCrossStreamHazards:
    def test_war_without_ordering_edge_is_flagged(self):
        # Stream 0 launches a kernel reading BUF; stream 1 overwrites
        # BUF with an H2D copy and no event orders the two.
        profile = ExecutionProfile()
        profile.launches.append(_launch(0, 0, reads=[BUF]))
        profile.transfers.append(_memcpy("h2d", 1, 1, writes=[BUF]))
        findings = verify_profile(profile)
        assert _checks_of(findings) == ["stream-hazard.cross-stream-war"]
        assert findings[0].severity == Severity.ERROR
        assert findings[0].detail["streams"] == [0, 1]

    def test_wait_edge_makes_the_same_trace_clean(self):
        # Identical memory ops, but stream 1 waits on an event stream 0
        # records after its read — the WAR pair is now ordered.
        profile = ExecutionProfile()
        profile.launches.append(_launch(0, 0, reads=[BUF]))
        profile.events.append(EventRecord(7, stream=0, seq=1))
        profile.waits.append(WaitRecord(7, stream=1, seq=2))
        profile.transfers.append(_memcpy("h2d", 1, 3, writes=[BUF]))
        assert verify_profile(profile) == []

    def test_raw_and_waw_kinds(self):
        profile = ExecutionProfile()
        profile.transfers.append(_memcpy("h2d", 0, 0, writes=[BUF]))
        profile.launches.append(_launch(1, 1, reads=[BUF]))
        findings = verify_profile(profile)
        assert _checks_of(findings) == ["stream-hazard.cross-stream-raw"]

        profile = ExecutionProfile()
        profile.transfers.append(_memcpy("h2d", 0, 0, writes=[BUF]))
        profile.transfers.append(_memcpy("h2d", 1, 1, writes=[BUF]))
        findings = verify_profile(profile)
        assert _checks_of(findings) == ["stream-hazard.cross-stream-waw"]

    def test_disjoint_footprints_are_clean(self):
        profile = ExecutionProfile()
        profile.launches.append(_launch(0, 0, reads=[BUF], writes=[BUF]))
        profile.launches.append(_launch(1, 1, reads=[OTHER], writes=[OTHER]))
        assert verify_profile(profile) == []

    def test_same_stream_overlap_is_program_ordered(self):
        profile = ExecutionProfile()
        profile.transfers.append(_memcpy("h2d", 0, 0, writes=[BUF]))
        profile.launches.append(_launch(0, 1, reads=[BUF], writes=[BUF]))
        assert verify_profile(profile) == []


class TestDeadlockCycle:
    def _cyclic_profile(self):
        # Stream 0: wait(e2) then record(e1); stream 1: wait(e1) then
        # record(e2) — each stream waits on an event the other only
        # records after its own wait: a real device hangs.
        profile = ExecutionProfile()
        profile.waits.append(WaitRecord(2, stream=0, seq=0))
        profile.waits.append(WaitRecord(1, stream=1, seq=1))
        profile.events.append(EventRecord(1, stream=0, seq=2))
        profile.events.append(EventRecord(2, stream=1, seq=3))
        return profile

    def test_event_wait_cycle_is_flagged(self):
        findings = verify_profile(self._cyclic_profile())
        assert _checks_of(findings) == ["stream-hazard.deadlock-cycle"]
        assert findings[0].severity == Severity.ERROR
        assert "would hang" in findings[0].message
        assert findings[0].detail["streams"] == [0, 1]

    def test_cycle_short_circuits_race_detection(self):
        # With no consistent happens-before on a cyclic trace, the
        # verifier must not pile speculative race findings on top.
        profile = self._cyclic_profile()
        profile.launches.append(_launch(0, 4, writes=[BUF]))
        profile.launches.append(_launch(1, 5, writes=[BUF]))
        findings = verify_profile(profile)
        assert _checks_of(findings) == ["stream-hazard.deadlock-cycle"]

    def test_wait_before_record_without_cycle_warns(self):
        profile = ExecutionProfile()
        profile.waits.append(WaitRecord(9, stream=1, seq=0))
        profile.events.append(EventRecord(9, stream=0, seq=1))
        findings = verify_profile(profile)
        assert _checks_of(findings) == ["stream-hazard.wait-before-record"]
        assert findings[0].severity == Severity.WARNING


class TestReproducers:
    def test_war_reproducer_roundtrips_and_reproduces(self, tmp_path):
        profile = ExecutionProfile()
        profile.launches.append(_launch(0, 0, reads=[BUF]))
        profile.transfers.append(_memcpy("h2d", 1, 1, writes=[BUF]))
        # Unrelated traffic the shrinker must drop.
        profile.transfers.append(_memcpy("h2d", 0, 2, writes=[OTHER]))
        findings = verify_profile(profile)
        path = dump_trace_reproducer(profile, findings, str(tmp_path))
        assert path is not None
        with open(f"{path}/trace.json") as handle:
            payload = json.load(handle)
        replayed = profile_from_json(payload)
        assert len(replayed.transfers) == 1  # unrelated memcpy shrunk away
        assert _checks_of(verify_profile(replayed)) == [
            "stream-hazard.cross-stream-war"
        ]
        with open(f"{path}/findings.json") as handle:
            dumped = json.load(handle)
        assert dumped[0]["check"] == "stream-hazard.cross-stream-war"

    def test_cycle_reproducer_keeps_the_ordering_skeleton(self, tmp_path):
        profile = ExecutionProfile()
        profile.waits.append(WaitRecord(2, stream=0, seq=0))
        profile.waits.append(WaitRecord(1, stream=1, seq=1))
        profile.events.append(EventRecord(1, stream=0, seq=2))
        profile.events.append(EventRecord(2, stream=1, seq=3))
        findings = verify_profile(profile)
        assert _checks_of(findings) == ["stream-hazard.deadlock-cycle"]
        path = dump_trace_reproducer(profile, findings, str(tmp_path))
        with open(f"{path}/trace.json") as handle:
            replayed = profile_from_json(json.load(handle))
        assert _checks_of(verify_profile(replayed)) == [
            "stream-hazard.deadlock-cycle"
        ]

    def test_no_findings_no_dump(self, tmp_path):
        assert dump_trace_reproducer(
            ExecutionProfile(), [], str(tmp_path)
        ) is None

    def test_profile_json_roundtrip_preserves_footprints(self):
        profile = ExecutionProfile()
        profile.launches.append(_launch(2, 0, reads=[BUF], writes=[BUF]))
        profile.transfers.append(
            _memcpy("d2h", 1, 1, reads=[BUF], writes=[("host", 64, 128)])
        )
        profile.events.append(EventRecord(3, stream=2, seq=2))
        profile.waits.append(WaitRecord(3, stream=1, seq=3))
        replayed = profile_from_json(profile_to_json(profile))
        assert replayed.launches[0].reads == (BUF,)
        assert replayed.transfers[0].writes == (("host", 64, 128),)
        assert replayed.events[0].event_id == 3
        assert replayed.waits[0].stream == 1

    def test_shrink_keeps_only_implicated_memory_ops(self):
        profile = ExecutionProfile()
        profile.launches.append(_launch(0, 0, reads=[BUF]))
        profile.transfers.append(_memcpy("h2d", 1, 1, writes=[BUF]))
        profile.transfers.append(_memcpy("h2d", 0, 2, writes=[OTHER]))
        findings = verify_profile(profile)
        shrunk = shrink_profile(profile, findings)
        assert len(shrunk.launches) == 1
        assert len(shrunk.transfers) == 1


class TestRealPipelinedTraces:
    """The simulator's own traces must verify clean (runtime agreement)."""

    @pytest.mark.parametrize("streams", [1, 4])
    def test_pipelined_gpu_trace_verifies_clean(self, streams, rng):
        spn = make_gaussian_spn()
        query = JointProbability(batch_size=64)
        executable = compile_spn(
            spn, query, CompilerOptions(target="gpu", streams=streams)
        ).executable
        try:
            executable.execute(
                rng.normal(size=(4096, 2)).astype(np.float32)
            )
            profile = executable.last_profile
        finally:
            executable.close()
        if streams > 1:
            # The interesting case: chunks genuinely interleave.
            assert profile.num_streams == streams
        assert verify_profile(profile) == []

    def test_trace_has_footprints_to_verify(self, rng):
        # Guard against the footprints silently going missing (the
        # verifier would pass vacuously on empty read/write sets).
        spn = make_gaussian_spn()
        executable = compile_spn(
            spn,
            JointProbability(batch_size=64),
            CompilerOptions(target="gpu", streams=4),
        ).executable
        try:
            executable.execute(rng.normal(size=(2048, 2)).astype(np.float32))
            profile = executable.last_profile
        finally:
            executable.close()
        assert all(t.reads and t.writes for t in profile.transfers)
        assert all(l.reads and l.writes for l in profile.launches)
