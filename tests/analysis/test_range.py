"""Tests for the log-space numeric-range analysis."""

import math

from repro.dialects import lospn
from repro.dialects.func import FuncOp, ReturnOp
from repro.diagnostics import Severity
from repro.ir import Builder, ModuleOp, f64
from repro.ir.analysis import AnalysisContext, RangeAnalysis, run_analysis, run_checks
from repro.ir.analysis.lattices import LOG_F64_MIN, Interval
from repro.ir.analysis.range_analysis import HISTOGRAM_EPSILON

LOG_F64 = lospn.LogType(f64)


class _CaptureRange(RangeAnalysis):
    """Range analysis that keeps the function exit state for assertions."""

    def __init__(self):
        self.final = {}

    def finish_function(self, func, state, ctx):
        self.final.update(state)


def _func_with_evidence():
    module = ModuleOp.build()
    fn = Builder.at_end(module.body).create(FuncOp, "f", [f64], [])
    return module, fn, Builder.at_end(fn.body), fn.body.arguments[0]


def _intervals(module):
    analysis = _CaptureRange()
    run_analysis(analysis, module, AnalysisContext())
    return analysis.final


def _range_findings(module):
    return run_checks(module, checks=["range"], phase="final")


class TestLeafSeeding:
    def test_gaussian_linear_interval_is_zero_to_peak(self):
        module, fn, fb, x = _func_with_evidence()
        leaf = fb.create(lospn.GaussianOp, x, 0.0, 2.0, f64)
        fb.create(ReturnOp, [])
        interval = _intervals(module)[leaf.results[0]]
        peak = 1.0 / (2.0 * math.sqrt(2.0 * math.pi))
        assert interval.lo == 0.0
        assert math.isclose(interval.hi, peak)

    def test_gaussian_log_interval_is_unbounded_below(self):
        module, fn, fb, x = _func_with_evidence()
        leaf = fb.create(lospn.GaussianOp, x, 0.0, 1.0, LOG_F64)
        fb.create(ReturnOp, [])
        interval = _intervals(module)[leaf.results[0]]
        assert interval.lo == -math.inf
        assert math.isclose(interval.hi, math.log(1.0 / math.sqrt(2.0 * math.pi)))

    def test_categorical_interval_spans_probability_table(self):
        module, fn, fb, x = _func_with_evidence()
        leaf = fb.create(lospn.CategoricalOp, x, [0.1, 0.6, 0.3], f64)
        fb.create(ReturnOp, [])
        interval = _intervals(module)[leaf.results[0]]
        assert interval == Interval(0.1, 0.6)

    def test_support_marginal_adds_unit_probability(self):
        module, fn, fb, x = _func_with_evidence()
        leaf = fb.create(
            lospn.CategoricalOp, x, [0.1, 0.4], f64, support_marginal=True
        )
        fb.create(ReturnOp, [])
        interval = _intervals(module)[leaf.results[0]]
        assert interval == Interval(0.1, 1.0)

    def test_histogram_zero_bucket_floored_at_epsilon(self):
        # The emitters floor zero-density buckets at HISTOGRAM_EPSILON;
        # the analysis must model the lowered value, not the raw table.
        module, fn, fb, x = _func_with_evidence()
        leaf = fb.create(
            lospn.HistogramOp, x, [0.0, 1.0, 2.0], [0.0, 1.0], LOG_F64
        )
        fb.create(ReturnOp, [])
        interval = _intervals(module)[leaf.results[0]]
        assert math.isclose(interval.lo, math.log(HISTOGRAM_EPSILON))
        assert interval.hi == 0.0


class TestArithmeticTransfer:
    def test_log_mul_adds_intervals(self):
        module, fn, fb, x = _func_with_evidence()
        a = fb.create(lospn.CategoricalOp, x, [0.5], LOG_F64)
        b = fb.create(lospn.CategoricalOp, x, [0.25], LOG_F64)
        product = fb.create(lospn.MulOp, a.results[0], b.results[0])
        fb.create(ReturnOp, [])
        interval = _intervals(module)[product.results[0]]
        assert math.isclose(interval.lo, math.log(0.125))
        assert math.isclose(interval.hi, math.log(0.125))

    def test_log_add_is_logaddexp(self):
        module, fn, fb, x = _func_with_evidence()
        a = fb.create(lospn.CategoricalOp, x, [0.5], LOG_F64)
        b = fb.create(lospn.CategoricalOp, x, [0.25], LOG_F64)
        total = fb.create(lospn.AddOp, a.results[0], b.results[0])
        fb.create(ReturnOp, [])
        interval = _intervals(module)[total.results[0]]
        assert math.isclose(interval.hi, math.log(0.75))

    def test_evidence_reads_are_unknown(self):
        module = ModuleOp.build()
        from repro.ir.types import MemRefType

        kernel = Builder.at_end(module.body).create(
            lospn.KernelOp, "k", [MemRefType((None, 1), f64)]
        )
        kb = Builder.at_end(kernel.body)
        task = kb.create(lospn.TaskOp, [kernel.body.arguments[0]], 8)
        tb = Builder.at_end(task.body)
        read = tb.create(
            lospn.BatchReadOp, task.input_args[0], task.batch_index, 0
        )
        kb.create(lospn.KernelReturnOp)
        interval = _intervals(module)[read.results[0]]
        assert interval.lo == -math.inf and interval.hi == math.inf
        # ... and unknown evidence must not produce range findings.
        assert _range_findings(module) == []


class TestJudgments:
    def test_proven_underflow_note_on_deep_log_product(self):
        # log(1e-200) ~ -460.5; the product of two such leaves sits at
        # ~ -921, entirely below log(DBL_MIN): linear evaluation is
        # *proven* to flush to zero, which is exactly the paper's case
        # for log-space computation.
        module, fn, fb, x = _func_with_evidence()
        a = fb.create(lospn.CategoricalOp, x, [1e-200], LOG_F64)
        b = fb.create(lospn.CategoricalOp, x, [1e-200], LOG_F64)
        fb.create(lospn.MulOp, a.results[0], b.results[0])
        fb.create(ReturnOp, [])
        findings = _range_findings(module)
        notes = [f for f in findings if f.check == "range.proven-underflow"]
        assert len(notes) == 1
        assert notes[0].severity == Severity.NOTE
        assert notes[0].op_path and "lo_spn.mul" in notes[0].op_path
        lo, hi = notes[0].detail["interval"]
        assert hi <= LOG_F64_MIN

    def test_no_underflow_note_for_ordinary_log_values(self):
        module, fn, fb, x = _func_with_evidence()
        a = fb.create(lospn.CategoricalOp, x, [0.5], LOG_F64)
        b = fb.create(lospn.CategoricalOp, x, [0.25], LOG_F64)
        fb.create(lospn.MulOp, a.results[0], b.results[0])
        fb.create(ReturnOp, [])
        assert _range_findings(module) == []

    def test_linear_underflow_warning_on_tiny_probability(self):
        # 1e-320 sits below the smallest positive *normal* f64.
        module, fn, fb, x = _func_with_evidence()
        fb.create(lospn.CategoricalOp, x, [1e-320, 0.5], f64)
        fb.create(ReturnOp, [])
        findings = _range_findings(module)
        warnings = [f for f in findings if f.check == "range.linear-underflow"]
        assert len(warnings) == 1
        assert warnings[0].severity == Severity.WARNING
        assert "log space" in warnings[0].message

    def test_linear_product_flushing_to_zero_still_warns(self):
        # 1e-200 * 1e-200 flushes to exactly 0.0 in the analysis' own
        # arithmetic; positivity of the bound must survive the flush so
        # the underflow is still reported.
        module, fn, fb, x = _func_with_evidence()
        a = fb.create(lospn.ConstantOp, 1e-200, f64)
        b = fb.create(lospn.ConstantOp, 1e-200, f64)
        product = fb.create(lospn.MulOp, a.results[0], b.results[0])
        fb.create(ReturnOp, [])
        interval = _intervals(module)[product.results[0]]
        assert interval.hi > 0.0
        findings = _range_findings(module)
        assert "range.linear-underflow" in {f.check for f in findings}

    def test_literal_constants_are_not_hazards(self):
        module, fn, fb, x = _func_with_evidence()
        fb.create(lospn.ConstantOp, 0.0, f64)
        fb.create(ReturnOp, [])
        assert _range_findings(module) == []

    def test_overflow_warning_on_degenerate_gaussian(self):
        # stddev -> 0 sends the PDF peak to +inf in linear space.
        module, fn, fb, x = _func_with_evidence()
        fb.create(lospn.GaussianOp, x, 0.0, 0.0, f64)
        fb.create(ReturnOp, [])
        findings = _range_findings(module)
        assert "range.overflow" in {f.check for f in findings}
