"""Tests for the generic dataflow engine and the check registry."""

import pytest

from repro.dialects.arith import AddFOp, ConstantOp
from repro.dialects.func import FuncOp, ReturnOp
from repro.dialects.scf import ForOp, IfOp, YieldOp
from repro.diagnostics import Severity
from repro.ir import Builder, ModuleOp, f64, i1, index
from repro.ir.analysis import (
    AnalysisContext,
    DataflowAnalysis,
    register_check,
    registered_checks,
    run_analysis,
    run_checks,
    severity_at_least,
)
from repro.ir.analysis.engine import MAX_FIXPOINT_ITERATIONS


class ConstantSetAnalysis(DataflowAnalysis):
    """Toy analysis: the state is the set of arith.constant payloads seen
    on the current path. Join is set union; used to observe how the
    engine merges branch and loop states."""

    name = "constant-set"

    def __init__(self):
        self.final = None
        self.loop_rounds = 0

    def initial_state(self, func, ctx):
        return frozenset()

    def copy_state(self, state):
        return state

    def join_states(self, a, b):
        return a | b

    def transfer(self, op, state, ctx):
        if op.op_name == "arith.constant":
            return state | {op.attributes["value"]}
        return state

    def enter_region(self, op, region, state, ctx):
        if op.op_name == "scf.for":
            self.loop_rounds += 1
        return state

    def finish_function(self, func, state, ctx):
        self.final = state


def _func_in_module(name="f", args=(), results=()):
    module = ModuleOp.build()
    fn = Builder.at_end(module.body).create(FuncOp, name, list(args), list(results))
    return module, fn


class TestBranchJoin:
    def test_scf_if_joins_both_branches(self):
        module, fn = _func_in_module()
        fb = Builder.at_end(fn.body)
        cond = fb.create(ConstantOp, True, i1).result
        if_op = fb.create(IfOp, cond, [], with_else=True)
        Builder.at_end(if_op.then_block).create(ConstantOp, 1.0, f64)
        Builder.at_end(if_op.else_block).create(ConstantOp, 2.0, f64)
        fb.create(ReturnOp, [])

        analysis = ConstantSetAnalysis()
        run_analysis(analysis, module, AnalysisContext())
        # After the if, facts from *both* branches are visible (may-join).
        assert {1.0, 2.0} <= analysis.final

    def test_scf_if_without_else_keeps_fall_through(self):
        module, fn = _func_in_module()
        fb = Builder.at_end(fn.body)
        before = fb.create(ConstantOp, 0.5, f64)
        cond = fb.create(ConstantOp, True, i1).result
        if_op = fb.create(IfOp, cond, [], with_else=False)
        Builder.at_end(if_op.then_block).create(ConstantOp, 1.0, f64)
        fb.create(ReturnOp, [])
        del before

        analysis = ConstantSetAnalysis()
        run_analysis(analysis, module, AnalysisContext())
        # The pre-if state survives the (possibly not-taken) branch.
        assert {0.5, 1.0} <= analysis.final


class TestLoopFixpoint:
    def _loop_module(self):
        module, fn = _func_in_module(args=[index])
        fb = Builder.at_end(fn.body)
        zero = fb.create(ConstantOp, 0, index).result
        one = fb.create(ConstantOp, 1, index).result
        loop = fb.create(ForOp, zero, fn.body.arguments[0], one)
        lb = Builder.at_end(loop.body_block)
        lb.create(ConstantOp, 7.0, f64)
        lb.create(YieldOp, [])
        fb.create(ReturnOp, [])
        return module

    def test_loop_body_reaches_fixpoint_quickly(self):
        module = self._loop_module()
        analysis = ConstantSetAnalysis()
        run_analysis(analysis, module, AnalysisContext())
        assert 7.0 in analysis.final
        # A finite-height state stabilizes well under the iteration cap.
        assert 2 <= analysis.loop_rounds < MAX_FIXPOINT_ITERATIONS

    def test_growing_state_is_capped(self):
        class GrowingAnalysis(ConstantSetAnalysis):
            """Pathological transfer that grows the state every round."""

            def __init__(self):
                super().__init__()
                self._tick = 0

            def transfer(self, op, state, ctx):
                if op.op_name == "arith.constant" and op.parent_op is not None:
                    self._tick += 1
                    return state | {self._tick}
                return state

        module = self._loop_module()
        analysis = GrowingAnalysis()
        # Must terminate despite never stabilizing.
        run_analysis(analysis, module, AnalysisContext())
        assert analysis.loop_rounds <= MAX_FIXPOINT_ITERATIONS


class TestAnalysisContext:
    def test_report_dedups_identical_findings(self):
        ctx = AnalysisContext()
        assert ctx.report("x.rule", Severity.WARNING, "same message") is not None
        assert ctx.report("x.rule", Severity.WARNING, "same message") is None
        assert len(ctx.findings) == 1

    def test_errors_selects_error_and_above(self):
        ctx = AnalysisContext()
        ctx.report("x.a", Severity.NOTE, "note")
        ctx.report("x.b", Severity.ERROR, "error")
        assert [f.check for f in ctx.errors()] == ["x.b"]

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError):
            AnalysisContext(phase="sometimes")

    def test_severity_ordering_helper(self):
        assert severity_at_least(Severity.ERROR, Severity.WARNING)
        assert severity_at_least(Severity.WARNING, Severity.WARNING)
        assert not severity_at_least(Severity.NOTE, Severity.WARNING)


class TestRegistry:
    def test_builtin_checks_registered(self):
        assert {"buffer-safety", "range", "lint"} <= set(registered_checks())

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_check("lint", lambda root, ctx: None)

    def test_unknown_check_name_rejected(self):
        module, _ = _func_in_module()
        with pytest.raises(ValueError, match="unknown check"):
            run_checks(module, checks=["no-such-check"])

    def test_findings_sorted_most_severe_first(self):
        module, fn = _func_in_module()
        fb = Builder.at_end(fn.body)
        # A dead pure op (lint WARNING) ...
        fb.create(ConstantOp, 1.0, f64)
        fb.create(ReturnOp, [])
        # ... plus a shadowed symbol (lint ERROR).
        Builder.at_end(module.body).create(FuncOp, "f", [], [])
        findings = run_checks(module, phase="final")
        severities = [f.severity for f in findings]
        ranks = [severity_at_least(s, Severity.ERROR) for s in severities]
        assert ranks == sorted(ranks, reverse=True)
        assert findings[0].check == "lint.shadowed-symbol"

    def test_finding_render_includes_op_path(self):
        module, fn = _func_in_module()
        fb = Builder.at_end(fn.body)
        fb.create(ConstantOp, 1.0, f64)
        fb.create(ReturnOp, [])
        findings = run_checks(module, checks=["lint"], phase="final")
        assert findings, "expected the dead constant to be reported"
        rendered = findings[0].render()
        assert "lint.unused-result" in rendered
        assert "[at=builtin.module" in rendered
