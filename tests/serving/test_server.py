"""End-to-end serving tests: batching, degradation, deadlines, swap.

The fault-injection scenarios assert the robustness contract from the
server's docstring: every admitted request gets exactly one terminal
outcome, results are either correct or clearly marked degraded (never
silently wrong), and the degradation ladder recovers once faults clear.
"""

import threading
import time
from concurrent.futures import wait

import numpy as np
import pytest

from repro.diagnostics import AdmissionError, DeadlineError, ExecutionError
from repro.runtime.threadpool import RetryPolicy
from repro.serving import (
    BreakerConfig,
    CircuitBreaker,
    InferenceServer,
    ModelNotFoundError,
    ServerConfig,
)
from repro.serving.loadgen import poisson_load
from repro.spn import Gaussian, Product, log_likelihood
from repro.testing import faults

from ..conftest import make_gaussian_spn


def _config(**overrides):
    base = dict(
        max_batch=64,
        max_wait_us=1000,
        queue_capacity=64,
        retry=RetryPolicy(max_retries=1, backoff_base=0.0, jitter=0.0),
        breaker=BreakerConfig(failure_threshold=1, cooldown_s=0.05),
        drain_timeout_s=5.0,
    )
    base.update(overrides)
    return ServerConfig(**base)


@pytest.fixture
def server():
    with InferenceServer(config=_config()) as srv:
        srv.publish("m", make_gaussian_spn(), batch_size=16)
        yield srv


class TestBasicServing:
    def test_results_match_reference(self, server, rng):
        spn = make_gaussian_spn()
        inputs = rng.normal(size=(8, 2))
        futures = [server.submit("m", row) for row in inputs]
        wait(futures, timeout=10.0)
        reference = log_likelihood(spn, inputs)
        for index, future in enumerate(futures):
            result = future.result()
            assert not result.degraded
            np.testing.assert_allclose(
                result.values, reference[index : index + 1], atol=1e-5, rtol=1e-5
            )

    def test_single_row_infer_squeezes(self, server, rng):
        row = rng.normal(size=2)
        value = server.infer("m", row, timeout_s=5.0)
        assert np.ndim(value) == 0

    def test_requests_coalesce_into_batches(self, rng):
        # Stall the worker with the first request, pile up more, and
        # check the histogram records a multi-request batch.
        config = _config(max_wait_us=30_000)
        with InferenceServer(config=config) as server:
            server.publish("m", make_gaussian_spn(), batch_size=16)
            futures = [
                server.submit("m", row) for row in rng.normal(size=(12, 2))
            ]
            wait(futures, timeout=10.0)
            histogram = server.health()["models"]["m"]["batch_size_histogram"]
            assert max(histogram) > 1  # some batch had > 1 row

    def test_unknown_model_rejected(self, server, rng):
        with pytest.raises(ModelNotFoundError):
            server.submit("ghost", rng.normal(size=2))

    def test_shape_validation(self, server, rng):
        with pytest.raises(ValueError):
            server.submit("m", rng.normal(size=(4, 7)))

    def test_health_snapshot_schema(self, server, rng):
        server.infer("m", rng.normal(size=2), timeout_s=5.0)
        health = server.health()
        assert health["status"] == "ok"
        model = health["models"]["m"]
        assert model["queue_capacity"] == 64
        assert model["breaker"]["state"] == CircuitBreaker.CLOSED
        assert model["outcomes"]["ok"] >= 1
        assert model["lost"] == 0
        assert "p99" in model["latency_ms"]


class TestDegradationLadder:
    def test_kernel_failure_degrades_to_interpreter(self, server, rng):
        spn = make_gaussian_spn()
        inputs = rng.normal(size=(4, 2))
        with faults.inject_kernel_failure():
            results = [
                server.submit("m", row).result(timeout=10.0) for row in inputs
            ]
        reference = log_likelihood(spn, inputs)
        for index, result in enumerate(results):
            assert result.degraded  # marked, not silent
            np.testing.assert_allclose(
                result.values, reference[index : index + 1], atol=1e-12
            )
        breaker = server.health()["models"]["m"]["breaker"]
        assert breaker["trip_count"] >= 1

    def test_nan_poisoning_detected_and_degraded(self, server, rng):
        spn = make_gaussian_spn()
        row = rng.normal(size=2)
        with faults.inject_kernel_nan():
            result = server.submit("m", row).result(timeout=10.0)
        assert result.degraded
        assert np.isfinite(result.values).all()
        np.testing.assert_allclose(
            result.values,
            log_likelihood(spn, row.reshape(1, -1)),
            atol=1e-12,
        )

    def test_breaker_recovers_after_faults_clear(self, server, rng):
        row = rng.normal(size=2)
        with faults.inject_kernel_failure():
            server.submit("m", row).result(timeout=10.0)
        assert server.health()["models"]["m"]["breaker"]["state"] != "closed"
        time.sleep(0.06)  # past the cooldown -> half-open probe allowed
        result = server.submit("m", row).result(timeout=10.0)
        assert not result.degraded  # the probe went through the kernel
        assert server.health()["models"]["m"]["breaker"]["state"] == "closed"

    def test_open_breaker_short_circuits_without_kernel_calls(self, server, rng):
        with faults.inject_kernel_failure():
            server.submit("m", rng.normal(size=2)).result(timeout=10.0)
        # Immediately after the trip (cooldown not elapsed): requests are
        # served degraded without touching the kernel.
        result = server.submit("m", rng.normal(size=2)).result(timeout=10.0)
        assert result.degraded
        stats = server.health()["models"]["m"]
        assert stats["breaker_short_circuits"] >= 1


class TestDeadlines:
    def test_infeasible_deadline_rejected_at_submit(self, server, rng):
        with pytest.raises(DeadlineError):
            server.submit("m", rng.normal(size=2), timeout_s=0.0)
        assert server.health()["models"]["m"]["outcomes"]["expired"] == 1
        assert server.health()["models"]["m"]["lost"] == 0

    def test_slow_kernel_hits_deadline(self, rng):
        config = _config(retry=RetryPolicy())
        with InferenceServer(config=config) as server:
            server.publish("m", make_gaussian_spn(), batch_size=16)
            with faults.inject_slow_chunks(0.2):
                future = server.submit("m", rng.normal(size=2), timeout_s=0.05)
                with pytest.raises(DeadlineError):
                    future.result(timeout=10.0)
            assert server.health()["models"]["m"]["lost"] == 0

    def test_expired_while_queued_gets_deadline_outcome(self, rng):
        # One slow batch in front; the second request's deadline lapses
        # while it waits in the queue. Its outcome must arrive promptly
        # even though no further live traffic follows (regression: the
        # batcher once blocked for the next live request while holding
        # drained expiries).
        config = _config(max_wait_us=0, retry=RetryPolicy())
        with InferenceServer(config=config) as server:
            server.publish("m", make_gaussian_spn(), batch_size=16)
            with faults.inject_slow_chunks(0.15):
                blocker = server.submit("m", rng.normal(size=2))
                time.sleep(0.02)  # let the worker start the slow batch
                doomed = server.submit("m", rng.normal(size=2), timeout_s=0.05)
                with pytest.raises(DeadlineError):
                    doomed.result(timeout=5.0)
            blocker.result(timeout=10.0)
            outcomes = server.health()["models"]["m"]["outcomes"]
            assert outcomes["expired"] == 1
            assert server.health()["models"]["m"]["lost"] == 0


class TestBackpressure:
    def test_queue_overflow_rejected_with_retry_hint(self, rng):
        config = _config(queue_capacity=2, max_wait_us=0, retry=RetryPolicy())
        with InferenceServer(config=config) as server:
            server.publish("m", make_gaussian_spn(), batch_size=16)
            accepted, rejected = [], []
            with faults.inject_slow_chunks(0.1):
                for row in rng.normal(size=(12, 2)):
                    try:
                        accepted.append(server.submit("m", row))
                    except AdmissionError as error:
                        rejected.append(error)
            assert rejected, "overload must shed load synchronously"
            assert all(e.retry_after_s > 0 for e in rejected)
            wait(accepted, timeout=10.0)
            stats = server.health()["models"]["m"]
            assert stats["outcomes"]["rejected"] == len(rejected)
            assert stats["lost"] == 0

    def test_submit_after_close_rejected(self, rng):
        server = InferenceServer(config=_config())
        server.publish("m", make_gaussian_spn(), batch_size=16)
        server.close()
        with pytest.raises(AdmissionError):
            server.submit("m", rng.normal(size=2))


class TestHotSwap:
    def test_swap_under_load_drops_nothing(self, rng):
        spn = make_gaussian_spn()
        config = _config(max_wait_us=500)
        with InferenceServer(config=config) as server:
            server.publish("m", spn, batch_size=16)
            inputs = rng.normal(size=(40, 2))
            futures = []
            for index, row in enumerate(inputs):
                futures.append(server.submit("m", row))
                if index == 20:
                    server.swap("m", spn, batch_size=16)
            done, not_done = wait(futures, timeout=15.0)
            assert not not_done
            reference = log_likelihood(spn, inputs)
            versions = set()
            for index, future in enumerate(futures):
                result = future.result()
                versions.add(result.model_version)
                np.testing.assert_allclose(
                    result.values,
                    reference[index : index + 1],
                    atol=1e-5,
                    rtol=1e-5,
                )
            assert server.health()["models"]["m"]["lost"] == 0
            # New traffic reached the new version.
            assert server.registry.current("m").version == 2

    def test_unload_then_submit_rejected(self, server, rng):
        server.unload("m")
        with pytest.raises(ModelNotFoundError):
            server.submit("m", rng.normal(size=2))


class TestWorkerResilience:
    """Regressions: the batcher worker must survive cancellation races
    and schema-mixed queues — a dead worker strands every future
    behind it and silently breaks the one-terminal-outcome invariant."""

    def test_client_cancelled_request_skipped_and_accounted(self, rng):
        config = _config(max_wait_us=0, retry=RetryPolicy())
        with InferenceServer(config=config) as server:
            server.publish("m", make_gaussian_spn(), batch_size=16)
            with faults.inject_slow_chunks(0.1):
                blocker = server.submit("m", rng.normal(size=2))
                time.sleep(0.02)  # let the worker enter the slow batch
                doomed = server.submit("m", rng.normal(size=2))
                assert doomed.cancel()  # client walked away while queued
            blocker.result(timeout=10.0)
            # The worker survived the cancelled future and still serves.
            value = server.infer("m", rng.normal(size=2), timeout_s=5.0)
            assert np.isfinite(value)
            stats = server.health()["models"]["m"]
            assert stats["outcomes"]["cancelled"] == 1
            assert stats["lost"] == 0

    def test_swap_changing_width_fails_stranded_requests_cleanly(self, rng):
        # A hot swap that changes num_features while old-width requests
        # sit queued used to make DynamicBatcher.concat raise inside
        # the worker loop, killing the worker. The stranded requests
        # must instead fail cleanly and new-width traffic keep flowing.
        wider = Product(
            [Gaussian(0, 0.0, 1.0), Gaussian(1, 0.0, 1.0), Gaussian(2, 0.0, 1.0)]
        )
        config = _config(max_wait_us=0, retry=RetryPolicy())
        with InferenceServer(config=config) as server:
            server.publish("m", make_gaussian_spn(), batch_size=16)
            with faults.inject_slow_chunks(0.1):
                blocker = server.submit("m", rng.normal(size=2))
                time.sleep(0.02)
                stranded = server.submit("m", rng.normal(size=2))  # old width
                server.swap("m", wider, batch_size=16)  # now 3 features
                fresh = server.submit("m", rng.normal(size=3))
            blocker.result(timeout=10.0)
            with pytest.raises(ExecutionError):
                stranded.result(timeout=10.0)
            assert not fresh.result(timeout=10.0).degraded
            stats = server.health()["models"]["m"]
            assert stats["lost"] == 0
            # The worker is still alive and serving the new schema.
            server.infer("m", rng.normal(size=3), timeout_s=5.0)

    def test_submit_racing_queue_close_maps_to_admission_error(self, rng):
        # Simulates close()/unload() winning the race between submit's
        # closed check and the queue offer: the caller must see the
        # structured AdmissionError, not a bare RuntimeError.
        server = InferenceServer(config=_config())
        try:
            server.publish("m", make_gaussian_spn(), batch_size=16)
            server._models["m"].queue.close(flush=False)
            with pytest.raises(AdmissionError) as excinfo:
                server.submit("m", rng.normal(size=2))
            assert excinfo.value.retry_after_s > 0
        finally:
            server.close()


class TestFaultInjectedLoad:
    """The headline invariant: chaos in the middle, zero lost requests."""

    def test_no_request_lost_under_kernel_chaos(self, rng):
        spn = make_gaussian_spn()
        rows = rng.normal(size=(64, 2))
        config = _config(queue_capacity=256)
        with InferenceServer(config=config) as server:
            server.publish("m", spn, batch_size=16)

            def chaos():
                time.sleep(0.15)
                with faults.inject_kernel_failure():
                    time.sleep(0.15)

            chaos_thread = threading.Thread(target=chaos)
            chaos_thread.start()
            report = poisson_load(
                server, "m", rows,
                rate_qps=300.0, duration_s=0.5, seed=3, timeout_s=2.0,
            )
            chaos_thread.join()
            assert report["lost"] == 0
            assert report["outcomes"]["failed"] == 0
            assert report["outcomes"]["ok"] > 0
            assert server.health()["totals"]["lost"] == 0
            # The chaos window really exercised the degraded rung.
            assert report["degraded"] > 0

    def test_drain_close_settles_every_pending_request(self, rng):
        config = _config(max_wait_us=0, retry=RetryPolicy())
        server = InferenceServer(config=config)
        server.publish("m", make_gaussian_spn(), batch_size=16)
        with faults.inject_slow_chunks(0.05):
            futures = [
                server.submit("m", row) for row in rng.normal(size=(6, 2))
            ]
            server.close(drain=True)
        done, not_done = wait(futures, timeout=5.0)
        assert not not_done  # each future settled (result or error)
        assert server.stats.lost() == 0
