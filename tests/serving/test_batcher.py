"""Dynamic batcher: coalescing policy, expiry separation, split/concat."""

import threading
import time

import numpy as np
import pytest

from repro.serving import BatchPolicy, DynamicBatcher, Request, RequestQueue


def _request(rows=1, features=2, deadline=None, fill=0.0):
    return Request(
        model="m",
        rows=np.full((rows, features), fill, dtype=np.float64),
        deadline=deadline,
    )


class TestBatchPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_wait_us=-1)

    def test_max_wait_conversion(self):
        assert BatchPolicy(max_wait_us=2500).max_wait_s == pytest.approx(0.0025)


class TestCoalescing:
    def test_coalesces_queued_requests_into_one_batch(self):
        queue = RequestQueue(capacity=16)
        requests = [_request() for _ in range(5)]
        for request in requests:
            queue.offer(request)
        batcher = DynamicBatcher(BatchPolicy(max_batch=64, max_wait_us=10_000))
        batch, expired = batcher.next_batch(queue)
        assert batch == requests
        assert expired == []

    def test_max_batch_caps_rows_not_requests(self):
        queue = RequestQueue(capacity=16)
        for _ in range(4):
            queue.offer(_request(rows=3))
        batcher = DynamicBatcher(BatchPolicy(max_batch=6, max_wait_us=10_000))
        batch, _ = batcher.next_batch(queue)
        # 3 + 3 rows reach the cap; the other two requests stay queued.
        assert len(batch) == 2
        assert queue.depth == 2

    def test_lone_request_waits_at_most_max_wait(self):
        queue = RequestQueue(capacity=4)
        queue.offer(_request())
        batcher = DynamicBatcher(BatchPolicy(max_batch=64, max_wait_us=20_000))
        start = time.monotonic()
        batch, _ = batcher.next_batch(queue)
        waited = time.monotonic() - start
        assert len(batch) == 1
        assert waited < 1.0  # bounded, not blocking forever

    def test_late_arrival_joins_within_window(self):
        queue = RequestQueue(capacity=4)
        queue.offer(_request())
        late = _request()

        def arrive_late():
            time.sleep(0.01)
            queue.offer(late)

        thread = threading.Thread(target=arrive_late)
        thread.start()
        batcher = DynamicBatcher(BatchPolicy(max_batch=64, max_wait_us=500_000))
        batch, _ = batcher.next_batch(queue)
        thread.join()
        assert len(batch) == 2 and batch[1] is late

    def test_closed_empty_queue_returns_none(self):
        queue = RequestQueue(capacity=4)
        queue.close()
        batcher = DynamicBatcher()
        batch, expired = batcher.next_batch(queue)
        assert batch is None and expired == []

    def test_drained_expiries_returned_without_blocking_for_live_traffic(self):
        # Regression: a queue holding only expired requests must yield
        # them immediately — not block until unrelated live traffic
        # arrives to complete a batch.
        queue = RequestQueue(capacity=4)
        dead = _request(deadline=time.monotonic() - 0.01)
        queue.offer(dead)
        batcher = DynamicBatcher(BatchPolicy(max_batch=64, max_wait_us=500_000))
        start = time.monotonic()
        batch, expired = batcher.next_batch(queue)
        assert time.monotonic() - start < 0.4
        assert batch is None and expired == [dead]
        assert not queue.closed

    def test_expired_requests_separated_not_batched(self):
        queue = RequestQueue(capacity=8)
        dead = _request(deadline=time.monotonic() - 0.01)
        live = _request()
        queue.offer(dead)
        queue.offer(live)
        batcher = DynamicBatcher(BatchPolicy(max_batch=64, max_wait_us=1000))
        batch, expired = batcher.next_batch(queue)
        assert batch == [live]
        assert expired == [dead]


class TestConcatSplit:
    def test_roundtrip_single_head(self):
        batch = [_request(rows=2, fill=1.0), _request(rows=3, fill=2.0)]
        stacked = DynamicBatcher.concat(batch)
        assert stacked.shape == (5, 2)
        outputs = np.arange(5, dtype=np.float64)
        pieces = DynamicBatcher.split(batch, outputs)
        np.testing.assert_array_equal(pieces[0], [0.0, 1.0])
        np.testing.assert_array_equal(pieces[1], [2.0, 3.0, 4.0])

    def test_split_multi_head_outputs(self):
        # Rows are the last axis; leading axes (e.g. heads) pass through.
        batch = [_request(rows=1), _request(rows=2)]
        outputs = np.arange(6, dtype=np.float64).reshape(2, 3)
        pieces = DynamicBatcher.split(batch, outputs)
        assert pieces[0].shape == (2, 1)
        assert pieces[1].shape == (2, 2)
        np.testing.assert_array_equal(pieces[1], [[1.0, 2.0], [4.0, 5.0]])

    def test_single_request_concat_avoids_copy(self):
        request = _request(rows=4)
        assert DynamicBatcher.concat([request]) is request.rows
