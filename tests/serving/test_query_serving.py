"""Query modalities through the serving layer.

Mixed-modality traffic must batch correctly (the batcher partitions by
query kind, so a joint result can never come from an MPE kernel), keep
the zero-lost accounting identity, and preserve each modality's
semantics end to end: seeded sampling stays per-request deterministic,
conditional query-variable NaNs are caller errors that neither charge
the circuit breaker nor degrade, and the interpreter rung serves every
modality when the compiled kernel faults.
"""

import numpy as np
import pytest

from repro.diagnostics import ExecutionError
from repro.serving import InferenceServer, ServerConfig, canonical_query_args
from repro.serving.admission import CircuitBreaker
from repro.serving.batcher import Request
from repro.spn import inference
from repro.spn.mpe import mpe as reference_mpe

from ..conftest import make_gaussian_spn


@pytest.fixture
def server():
    server = InferenceServer(
        config=ServerConfig(max_batch=64, max_wait_us=2000, queue_capacity=256)
    )
    server.publish("m", make_gaussian_spn(), batch_size=16)
    yield server
    server.close()


def rows_with_holes(rng, n=4):
    rows = rng.normal(size=(n, 2))
    rows[0, 0] = np.nan
    return rows


class TestCanonicalQueryArgs:
    def test_per_kind(self):
        assert canonical_query_args("joint") == ()
        assert canonical_query_args("mpe") == ()
        assert canonical_query_args("sample") == ()
        assert canonical_query_args("conditional", [1, 0, 1]) == (0, 1)
        assert canonical_query_args("expectation", moment=2) == (2,)

    def test_batch_key_partitions_by_modality(self):
        joint = Request(model="m", rows=np.zeros((1, 2)), deadline=None)
        mpe = Request(
            model="m", rows=np.zeros((1, 2)), deadline=None, query="mpe"
        )
        conditional_a = Request(
            model="m",
            rows=np.zeros((1, 2)),
            deadline=None,
            query="conditional",
            query_args=(0,),
        )
        conditional_b = Request(
            model="m",
            rows=np.zeros((1, 2)),
            deadline=None,
            query="conditional",
            query_args=(1,),
        )
        keys = {
            joint.batch_key,
            mpe.batch_key,
            conditional_a.batch_key,
            conditional_b.batch_key,
        }
        assert len(keys) == 4

    def test_sample_requests_never_coalesce(self):
        # Same seed, same shape: the key still differs per request, so
        # one request's samples never depend on co-batched traffic.
        first = Request(
            model="m", rows=np.zeros((1, 2)), deadline=None, query="sample", seed=7
        )
        second = Request(
            model="m", rows=np.zeros((1, 2)), deadline=None, query="sample", seed=7
        )
        assert first.batch_key != second.batch_key


class TestMixedModalityTraffic:
    def test_concurrent_mix_resolves_correctly(self, server, rng):
        spn = make_gaussian_spn()
        joint_rows = rng.normal(size=(3, 2))
        mpe_rows = rows_with_holes(rng)
        cond_rows = rng.normal(size=(3, 2))
        cond_rows[:, 0] = np.nan  # evidence NaN (query variable is 1)
        exp_rows = rows_with_holes(rng)
        sample_rows = rows_with_holes(rng)

        # Submit everything before resolving anything: the batcher sees
        # genuinely mixed traffic and must partition it per modality.
        futures = {
            "joint": server.submit("m", joint_rows, timeout_s=10.0),
            "mpe": server.submit("m", mpe_rows, timeout_s=10.0, query="mpe"),
            "conditional": server.submit(
                "m",
                cond_rows,
                timeout_s=10.0,
                query="conditional",
                query_variables=(1,),
            ),
            "expectation": server.submit(
                "m", exp_rows, timeout_s=10.0, query="expectation", moment=2
            ),
            "sample": server.submit(
                "m", sample_rows, timeout_s=10.0, query="sample", seed=13
            ),
        }
        results = {kind: future.result(timeout=10.0) for kind, future in futures.items()}
        for kind, result in results.items():
            assert result.query == kind
            assert result.degraded is False

        np.testing.assert_allclose(
            results["joint"].values,
            inference.log_likelihood(spn, joint_rows),
            rtol=1e-4,
            atol=1e-6,
        )
        ref_completions, ref_scores = reference_mpe(spn, mpe_rows)
        np.testing.assert_allclose(
            results["mpe"].values[0], ref_scores, rtol=1e-4, atol=1e-6
        )
        assert np.array_equal(results["mpe"].values[1:].T, ref_completions)
        np.testing.assert_allclose(
            results["conditional"].values,
            inference.conditional_log_likelihood(spn, cond_rows, (1,)),
            rtol=2e-4,
            atol=2e-6,
        )
        np.testing.assert_allclose(
            results["expectation"].values,
            inference.expectation(spn, exp_rows, moment=2).T,
            rtol=1e-4,
            atol=1e-6,
            equal_nan=True,
        )
        samples = results["sample"].values
        observed = ~np.isnan(sample_rows)
        assert np.array_equal(samples.T[observed], sample_rows[observed])

        # The zero-lost accounting identity holds for mixed traffic.
        assert server.stats.lost() == 0
        assert server.stats.outcome("ok") == len(futures)

    def test_seeded_sampling_deterministic_under_load(self, server, rng):
        evidence = np.full((4, 2), np.nan)
        futures = [
            server.submit("m", evidence, timeout_s=10.0, query="sample", seed=21)
            for _ in range(6)
        ]
        values = [future.result(timeout=10.0).values for future in futures]
        for other in values[1:]:
            assert np.array_equal(values[0], other)
        # A different seed produces different draws.
        different = server.infer("m", evidence, timeout_s=10.0, query="sample", seed=22)
        assert not np.array_equal(values[0], different)
        assert server.stats.lost() == 0

    def test_conditional_variables_partition_separately(self, server, rng):
        spn = make_gaussian_spn()
        rows = rng.normal(size=(3, 2))
        futures = [
            server.submit(
                "m", rows, timeout_s=10.0, query="conditional", query_variables=vs
            )
            for vs in ((0,), (1,))
        ]
        for future, variables in zip(futures, ((0,), (1,))):
            np.testing.assert_allclose(
                future.result(timeout=10.0).values,
                inference.conditional_log_likelihood(spn, rows, variables),
                rtol=2e-4,
                atol=2e-6,
            )
        assert server.stats.lost() == 0


class TestCallerErrors:
    def test_query_nan_fails_request_without_charging_breaker(self, server, rng):
        rows = rng.normal(size=(2, 2))
        rows[0, 1] = np.nan  # NaN on the query variable
        future = server.submit(
            "m", rows, timeout_s=10.0, query="conditional", query_variables=(1,)
        )
        with pytest.raises(ExecutionError, match="query"):
            future.result(timeout=10.0)
        state = server._models["m"]
        assert state.breaker.state == CircuitBreaker.CLOSED
        # Subsequent traffic is still served by the compiled kernel.
        result = server.submit("m", rng.normal(size=(2, 2)), timeout_s=10.0).result(
            timeout=10.0
        )
        assert result.degraded is False
        assert server.stats.lost() == 0

    def test_invalid_query_rejected_at_submit(self, server, rng):
        rows = rng.normal(size=(2, 2))
        with pytest.raises(ValueError, match="unknown query kind"):
            server.submit("m", rows, query="bogus")
        with pytest.raises(ValueError, match="query variable"):
            server.submit("m", rows, query="conditional")
        with pytest.raises(ValueError, match="moment"):
            server.submit("m", rows, query="expectation", moment=7)
        with pytest.raises(ValueError, match="out of range"):
            server.submit("m", rows, query="conditional", query_variables=(5,))
        # Synchronous rejections never enter the queue: nothing lost,
        # nothing stuck in flight.
        assert server.stats.lost() == 0
        assert server.stats.in_flight == 0


class TestDegradedRung:
    def test_interpreter_serves_every_modality(self, server, rng):
        spn = make_gaussian_spn()
        version = server.registry.current("m")

        def boom(query=None):
            raise RuntimeError("injected kernel fault")

        version.executable_for = boom
        try:
            rows = rows_with_holes(rng)
            mpe_result = server.submit(
                "m", rows, timeout_s=10.0, query="mpe"
            ).result(timeout=10.0)
            assert mpe_result.degraded is True
            ref_completions, ref_scores = reference_mpe(spn, rows)
            np.testing.assert_allclose(
                mpe_result.values[0], ref_scores, rtol=1e-6, atol=1e-9
            )
            assert np.array_equal(mpe_result.values[1:].T, ref_completions)

            cond_rows = rng.normal(size=(3, 2))
            cond_result = server.submit(
                "m",
                cond_rows,
                timeout_s=10.0,
                query="conditional",
                query_variables=(0,),
            ).result(timeout=10.0)
            assert cond_result.degraded is True
            np.testing.assert_allclose(
                cond_result.values,
                inference.conditional_log_likelihood(spn, cond_rows, (0,)),
                rtol=1e-6,
                atol=1e-9,
            )

            sample_result = server.submit(
                "m", np.full((3, 2), np.nan), timeout_s=10.0, query="sample", seed=4
            ).result(timeout=10.0)
            assert sample_result.degraded is True
            assert np.isfinite(sample_result.values).all()

            exp_rows = rows_with_holes(rng)
            exp_result = server.submit(
                "m", exp_rows, timeout_s=10.0, query="expectation"
            ).result(timeout=10.0)
            assert exp_result.degraded is True
            np.testing.assert_allclose(
                exp_result.values,
                inference.expectation(spn, exp_rows, moment=1).T,
                rtol=1e-6,
                atol=1e-9,
                equal_nan=True,
            )
        finally:
            del version.executable_for  # restore the class method
        assert server.stats.lost() == 0


class TestRegistryQuerySurface:
    def test_lazy_compilation_per_kind(self, server, rng):
        version = server.registry.current("m")
        assert version.describe()["compiled_queries"] == ["joint"]
        server.infer("m", rows_with_holes(rng), timeout_s=10.0, query="mpe")
        assert "mpe" in version.describe()["compiled_queries"]

    def test_joint_nan_reroutes_to_marginal_kernel(self, server, rng):
        spn = make_gaussian_spn()
        rows = rows_with_holes(rng)
        result = server.submit("m", rows, timeout_s=10.0).result(timeout=10.0)
        np.testing.assert_allclose(
            result.values,
            inference.log_likelihood(spn, rows),
            rtol=1e-4,
            atol=1e-6,
        )
        assert result.degraded is False
        assert server.stats.lost() == 0
