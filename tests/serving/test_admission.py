"""Unit tests: bounded queue, circuit breaker, stats accounting."""

import threading
import time

import pytest

from repro.serving import BreakerConfig, CircuitBreaker, RequestQueue
from repro.serving.health import ServerStats, percentile


class TestRequestQueue:
    def test_fifo_order(self):
        queue = RequestQueue(capacity=4)
        for item in "abc":
            assert queue.offer(item)
        assert [queue.take_nowait() for _ in range(3)] == list("abc")

    def test_offer_rejects_when_full(self):
        queue = RequestQueue(capacity=2)
        assert queue.offer(1)
        assert queue.offer(2)
        assert not queue.offer(3)  # backpressure, not blocking
        assert queue.depth == 2

    def test_take_blocks_until_offer(self):
        queue = RequestQueue(capacity=1)
        got = []

        def taker():
            got.append(queue.take(timeout=2.0))

        thread = threading.Thread(target=taker)
        thread.start()
        time.sleep(0.02)
        queue.offer("x")
        thread.join()
        assert got == ["x"]

    def test_take_timeout_returns_none(self):
        queue = RequestQueue(capacity=1)
        start = time.monotonic()
        assert queue.take(timeout=0.02) is None
        assert time.monotonic() - start < 1.0

    def test_close_flush_returns_pending(self):
        queue = RequestQueue(capacity=4)
        queue.offer(1)
        queue.offer(2)
        assert queue.close(flush=True) == [1, 2]
        with pytest.raises(RuntimeError):
            queue.offer(3)
        assert queue.take() is None

    def test_close_without_flush_leaves_items_for_takers(self):
        queue = RequestQueue(capacity=4)
        queue.offer(1)
        assert queue.close(flush=False) == []
        assert queue.take() == 1
        assert queue.take() is None  # closed and empty

    def test_close_wakes_blocked_taker(self):
        queue = RequestQueue(capacity=1)
        got = ["sentinel"]

        def taker():
            got[0] = queue.take()

        thread = threading.Thread(target=taker)
        thread.start()
        time.sleep(0.02)
        queue.close()
        thread.join(timeout=2.0)
        assert got[0] is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RequestQueue(capacity=0)


class TestCircuitBreaker:
    def _breaker(self, threshold=3, cooldown=0.05):
        return CircuitBreaker(
            BreakerConfig(
                failure_threshold=threshold,
                cooldown_s=cooldown,
                half_open_probes=1,
            )
        )

    def test_starts_closed_and_allows(self):
        breaker = self._breaker()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow_request()

    def test_trips_after_threshold_consecutive_failures(self):
        breaker = self._breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow_request()
        assert breaker.trip_count == 1

    def test_success_resets_failure_streak(self):
        breaker = self._breaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_after_cooldown_probe_success_closes(self):
        breaker = self._breaker(threshold=1, cooldown=0.02)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        time.sleep(0.03)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow_request()  # the probe
        assert not breaker.allow_request()  # only one probe admitted
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow_request()

    def test_half_open_probe_failure_reopens(self):
        breaker = self._breaker(threshold=1, cooldown=0.02)
        breaker.record_failure()
        time.sleep(0.03)
        assert breaker.allow_request()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trip_count == 2

    def test_force_open(self):
        breaker = self._breaker()
        breaker.force_open()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow_request()

    def test_describe(self):
        breaker = self._breaker(threshold=1)
        breaker.record_failure()
        info = breaker.describe()
        assert info["state"] == CircuitBreaker.OPEN
        assert info["trip_count"] == 1


class TestServerStats:
    def test_exactly_one_outcome_identity(self):
        stats = ServerStats()
        for _ in range(5):
            stats.record_arrival(accepted=True)
        stats.record_arrival(accepted=False)  # rejection is terminal at arrival
        assert stats.in_flight == 5
        for outcome in ("ok", "ok", "expired", "failed", "ok"):
            stats.record_outcome(outcome, latency_s=0.01)
        assert stats.in_flight == 0
        assert stats.lost() == 0
        snap = stats.snapshot()
        assert snap["outcomes"] == {
            "ok": 3, "rejected": 1, "expired": 1, "failed": 1, "cancelled": 0,
        }
        assert snap["lost"] == 0

    def test_unknown_outcome_rejected(self):
        stats = ServerStats()
        with pytest.raises(ValueError):
            stats.record_outcome("vanished")

    def test_degraded_fraction(self):
        stats = ServerStats()
        for degraded in (True, False, True, True):
            stats.record_arrival(accepted=True)
            stats.record_outcome("ok", latency_s=0.01, degraded=degraded)
        assert stats.degraded_fraction() == pytest.approx(0.75)

    def test_batch_histogram_and_mean(self):
        stats = ServerStats()
        for size in (1, 4, 4, 8):
            stats.record_batch(size)
        snap = stats.snapshot()
        assert snap["batch_size_histogram"] == {1: 1, 4: 2, 8: 1}
        assert snap["mean_batch_size"] == pytest.approx((1 + 4 + 4 + 8) / 4)

    def test_latency_quantiles(self):
        stats = ServerStats()
        for ms in range(1, 101):
            stats.record_arrival(accepted=True)
            stats.record_outcome("ok", latency_s=ms / 1e3)
        snap = stats.snapshot()["latency_ms"]
        assert snap["count"] == 100
        assert 45 <= snap["p50"] <= 55
        assert 95 <= snap["p99"] <= 100
        assert snap["max"] == pytest.approx(100.0)

    def test_percentile_edge_cases(self):
        assert percentile([], 99) == 0.0
        assert percentile([7.0], 50) == 7.0
        assert percentile([1.0, 2.0, 3.0], 0) == 1.0
        assert percentile([1.0, 2.0, 3.0], 100) == 3.0
