"""HTTP facade: JSON endpoints and admission error mapping."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serving import InferenceServer, ServerConfig
from repro.serving.httpd import serve_http
from repro.spn import log_likelihood

from ..conftest import make_gaussian_spn


@pytest.fixture
def endpoint():
    server = InferenceServer(
        config=ServerConfig(max_batch=32, max_wait_us=500, queue_capacity=32)
    )
    server.publish("m", make_gaussian_spn(), batch_size=16)
    httpd = serve_http(server, port=0)
    host, port = httpd.server_address[:2]
    yield f"http://{host}:{port}", server
    httpd.shutdown()
    server.close()


def _get(url):
    with urllib.request.urlopen(url, timeout=10.0) as response:
        return response.status, json.loads(response.read())


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10.0) as response:
        return response.status, json.loads(response.read())


class TestEndpoints:
    def test_healthz(self, endpoint):
        base, _ = endpoint
        status, health = _get(f"{base}/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert "m" in health["models"]
        assert health["batch_policy"]["max_batch"] == 32

    def test_models_listing(self, endpoint):
        base, _ = endpoint
        status, models = _get(f"{base}/models")
        assert status == 200
        assert models["m"]["version"] == 1

    def test_predict_roundtrip(self, endpoint, rng):
        base, _ = endpoint
        inputs = rng.normal(size=(3, 2))
        status, body = _post(
            f"{base}/v1/models/m:predict",
            {"inputs": inputs.tolist(), "timeout_ms": 5000},
        )
        assert status == 200
        assert body["degraded"] is False
        assert body["model_version"] == 1
        reference = log_likelihood(make_gaussian_spn(), inputs)
        np.testing.assert_allclose(body["outputs"], reference, atol=1e-5, rtol=1e-5)

    def test_unknown_model_404(self, endpoint, rng):
        base, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{base}/v1/models/ghost:predict", {"inputs": [[0.0, 0.0]]})
        assert excinfo.value.code == 404

    def test_malformed_body_400(self, endpoint):
        base, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{base}/v1/models/m:predict", {"wrong_key": 1})
        assert excinfo.value.code == 400

    def test_unknown_path_404(self, endpoint):
        base, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{base}/nope")
        assert excinfo.value.code == 404

    def test_infeasible_deadline_504(self, endpoint):
        base, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                f"{base}/v1/models/m:predict",
                {"inputs": [[0.0, 0.0]], "timeout_ms": 0},
            )
        assert excinfo.value.code == 504

    def test_health_reports_closed_as_503(self, endpoint):
        base, server = endpoint
        server.close()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{base}/healthz")
        assert excinfo.value.code == 503


class TestQueryModalities:
    def test_predict_mpe(self, endpoint, rng):
        base, _ = endpoint
        inputs = rng.normal(size=(3, 2))
        inputs[0, 0] = float("nan")
        payload = {
            "inputs": [[None if np.isnan(v) else v for v in row] for row in inputs],
            "query": "mpe",
            "timeout_ms": 5000,
        }
        status, body = _post(f"{base}/v1/models/m:predict", payload)
        assert status == 200
        assert body["query"] == "mpe"
        outputs = np.asarray(body["outputs"], dtype=np.float64)
        # Rows: [score; completions.T] — the NaN hole was completed.
        assert outputs.shape == (3, 3)
        assert np.isfinite(outputs[1, 0])

    def test_predict_conditional(self, endpoint, rng):
        from repro.spn import inference

        base, _ = endpoint
        inputs = rng.normal(size=(3, 2))
        status, body = _post(
            f"{base}/v1/models/m:predict",
            {
                "inputs": inputs.tolist(),
                "query": "conditional",
                "query_variables": [1],
                "timeout_ms": 5000,
            },
        )
        assert status == 200
        assert body["query"] == "conditional"
        reference = inference.conditional_log_likelihood(
            make_gaussian_spn(), inputs, (1,)
        )
        np.testing.assert_allclose(body["outputs"], reference, atol=1e-5, rtol=2e-4)

    def test_predict_sample_seeded(self, endpoint):
        base, _ = endpoint
        payload = {
            "inputs": [[None, None]] * 2,
            "query": "sample",
            "seed": 9,
            "timeout_ms": 5000,
        }
        _, first = _post(f"{base}/v1/models/m:predict", payload)
        _, second = _post(f"{base}/v1/models/m:predict", payload)
        assert first["outputs"] == second["outputs"]

    def test_query_nan_is_400(self, endpoint):
        base, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                f"{base}/v1/models/m:predict",
                {
                    "inputs": [[0.0, None]],
                    "query": "conditional",
                    "query_variables": [1],
                    "timeout_ms": 5000,
                },
            )
        assert excinfo.value.code == 400

    def test_unknown_query_kind_is_400(self, endpoint):
        base, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                f"{base}/v1/models/m:predict",
                {"inputs": [[0.0, 0.0]], "query": "bogus"},
            )
        assert excinfo.value.code == 400
