"""Serving-runtime test suite."""
