"""Model registry: versioning, leases, drain-before-unload, hot swap."""

import threading
import time

import numpy as np
import pytest

from repro.api import CPUCompiler
from repro.diagnostics import ErrorCode
from repro.serving import ModelNotFoundError, ModelRegistry
from repro.spn import log_likelihood

from ..conftest import make_discrete_spn, make_gaussian_spn


class TestPublish:
    def test_publish_and_execute(self, rng):
        registry = ModelRegistry()
        spn = make_gaussian_spn()
        version = registry.publish("m", spn, batch_size=16)
        inputs = rng.normal(size=(32, 2))
        outputs = version.executable(inputs)
        np.testing.assert_allclose(
            outputs, log_likelihood(spn, inputs), atol=1e-5, rtol=1e-5
        )
        registry.close()

    def test_versions_auto_increment(self):
        registry = ModelRegistry()
        spn = make_gaussian_spn()
        v1 = registry.publish("m", spn, batch_size=16)
        v2 = registry.publish("m", spn, batch_size=16)
        assert (v1.version, v2.version) == (1, 2)
        assert registry.current("m") is v2
        assert v2.previous is v1
        registry.retire(v1)
        registry.close()

    def test_swap_requires_existing_name(self):
        registry = ModelRegistry()
        with pytest.raises(ModelNotFoundError):
            registry.swap("ghost", make_gaussian_spn())

    def test_swap_emits_diagnostic(self):
        registry = ModelRegistry()
        spn = make_gaussian_spn()
        registry.publish("m", spn, batch_size=16)
        old = registry.current("m")
        registry.swap("m", spn, batch_size=16)
        notes = registry.diagnostics.by_code(ErrorCode.MODEL_SWAPPED)
        assert len(notes) == 1
        registry.retire(old)
        registry.close()

    def test_fingerprint_identifies_configuration(self):
        registry = ModelRegistry()
        spn = make_gaussian_spn()
        a = registry.publish("a", spn, batch_size=16)
        b = registry.publish("b", spn, batch_size=16)
        c = registry.publish("c", spn, batch_size=64)
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != c.fingerprint
        registry.close()

    def test_compiler_instance_and_options_are_exclusive(self):
        registry = ModelRegistry()
        with pytest.raises(ValueError):
            registry.publish(
                "m",
                make_gaussian_spn(),
                compiler=CPUCompiler(batch_size=16),
                batch_size=32,
            )

    def test_interpret_matches_reference(self, rng):
        registry = ModelRegistry()
        spn = make_discrete_spn()
        version = registry.publish("m", spn, batch_size=16)
        inputs = np.column_stack(
            [rng.integers(0, 3, size=16), rng.integers(0, 4, size=16)]
        ).astype(np.float64)
        np.testing.assert_allclose(
            version.interpret(inputs), log_likelihood(spn, inputs), atol=1e-12
        )
        registry.close()


class TestLeases:
    def test_acquire_release_counts(self):
        registry = ModelRegistry()
        registry.publish("m", make_gaussian_spn(), batch_size=16)
        version = registry.acquire("m")
        assert version.leases == 1
        version.release()
        assert version.leases == 0
        registry.close()

    def test_acquire_unknown_raises(self):
        registry = ModelRegistry()
        with pytest.raises(ModelNotFoundError):
            registry.acquire("ghost")

    def test_retire_waits_for_lease(self):
        registry = ModelRegistry()
        registry.publish("m", make_gaussian_spn(), batch_size=16)
        version = registry.acquire("m")
        retired = []

        def retire():
            retired.append(registry.retire(version, drain_timeout=5.0))

        thread = threading.Thread(target=retire)
        thread.start()
        time.sleep(0.03)
        assert not version.retired  # still draining: the lease is held
        version.release()
        thread.join()
        assert retired == [True]
        assert version.retired

    def test_retire_timeout_leaves_version_open(self):
        registry = ModelRegistry()
        registry.publish("m", make_gaussian_spn(), batch_size=16)
        version = registry.acquire("m")
        assert registry.retire(version, drain_timeout=0.02) is False
        assert not version.retired
        version.release()
        assert registry.retire(version, drain_timeout=1.0) is True

    def test_swap_does_not_disturb_inflight_lease(self, rng):
        """The lease pin: a batch started on v1 finishes on v1 even
        after v2 takes over routing."""
        registry = ModelRegistry()
        spn = make_gaussian_spn()
        registry.publish("m", spn, batch_size=16)
        v1 = registry.acquire("m")
        registry.swap("m", spn, batch_size=16)
        assert registry.current("m").version == 2
        # v1 still usable under its lease.
        inputs = rng.normal(size=(16, 2))
        np.testing.assert_allclose(
            v1.executable(inputs), log_likelihood(spn, inputs), atol=1e-5, rtol=1e-5
        )
        v1.release()
        registry.retire(v1, drain_timeout=1.0)
        registry.close()


class TestUnload:
    def test_unload_removes_and_closes(self):
        registry = ModelRegistry()
        registry.publish("m", make_gaussian_spn(), batch_size=16)
        version = registry.current("m")
        assert registry.unload("m") is True
        assert version.retired
        with pytest.raises(ModelNotFoundError):
            registry.current("m")

    def test_unload_unknown_raises(self):
        registry = ModelRegistry()
        with pytest.raises(ModelNotFoundError):
            registry.unload("ghost")

    def test_close_unloads_everything(self):
        registry = ModelRegistry()
        registry.publish("a", make_gaussian_spn(), batch_size=16)
        registry.publish("b", make_gaussian_spn(), batch_size=16)
        registry.close()
        assert registry.names() == []
