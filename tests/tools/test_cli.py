"""Tests for the command-line driver."""

import numpy as np
import pytest

from repro.spn import JointProbability, log_likelihood, serialize_to_file
from repro.tools.cli import main

from ..conftest import make_gaussian_spn


@pytest.fixture
def model_path(tmp_path):
    path = str(tmp_path / "model.spnb")
    serialize_to_file(make_gaussian_spn(), JointProbability(batch_size=32), path)
    return path


@pytest.fixture
def inputs_path(tmp_path, rng):
    path = str(tmp_path / "inputs.npy")
    np.save(path, rng.normal(size=(12, 2)).astype(np.float32))
    return path


class TestInfo:
    def test_prints_statistics(self, model_path, capsys):
        assert main(["info", model_path]) == 0
        out = capsys.readouterr().out
        assert "nodes:      7" in out
        assert "features:   2" in out
        assert "batch size: 32" in out

    def test_missing_file(self, tmp_path, capsys):
        assert main(["info", str(tmp_path / "nope.spnb")]) == 1
        assert "error" in capsys.readouterr().err


class TestCompile:
    def test_reports_stages(self, model_path, capsys):
        assert main(["compile", model_path, "--vectorize"]) == 0
        out = capsys.readouterr().out
        assert "compiled" in out
        assert "codegen" in out

    def test_dump_ir(self, model_path, capsys):
        assert main(["compile", model_path, "--dump-ir", "lower-to-lospn"]) == 0
        out = capsys.readouterr().out
        assert "lo_spn.kernel" in out

    def test_dump_unknown_stage(self, model_path, capsys):
        assert main(["compile", model_path, "--dump-ir", "nope"]) == 1
        assert "available" in capsys.readouterr().err

    def test_emit_source(self, model_path, capsys):
        assert main(["compile", model_path, "--emit-source"]) == 0
        assert "def spn_kernel" in capsys.readouterr().out

    def test_gpu_target(self, model_path, capsys):
        assert main(["compile", model_path, "--target", "gpu"]) == 0
        assert "gpu-lowering" in capsys.readouterr().out

    def test_partitioning_flag(self, model_path, capsys):
        assert main(["compile", model_path, "--partition", "3"]) == 0
        out = capsys.readouterr().out
        assert "task(s)" in out
        assert "graph-partitioning" in out

    def test_partition_parallel_flag(self, model_path, capsys):
        assert main(
            [
                "compile",
                model_path,
                "--vectorize",
                "--partition",
                "3",
                "--threads",
                "2",
                "--partition-parallel",
            ]
        ) == 0
        assert "parallelize-partitions" in capsys.readouterr().out


class TestRun:
    def test_run_writes_output(self, model_path, inputs_path, tmp_path, capsys):
        out_path = str(tmp_path / "out.npy")
        assert main(["run", model_path, inputs_path, "-o", out_path]) == 0
        produced = np.load(out_path)
        inputs = np.load(inputs_path)
        expected = log_likelihood(make_gaussian_spn(), inputs.astype(np.float64))
        np.testing.assert_allclose(produced, expected, rtol=2e-3, atol=1e-5)

    def test_run_prints_without_output(self, model_path, inputs_path, capsys):
        assert main(["run", model_path, inputs_path]) == 0
        assert capsys.readouterr().out.strip()

    def test_run_gpu_reports_simulated_time(
        self, model_path, inputs_path, tmp_path, capsys
    ):
        out_path = str(tmp_path / "out.npy")
        assert main([
            "run", model_path, inputs_path, "-o", out_path, "--target", "gpu"
        ]) == 0
        out = capsys.readouterr().out
        assert "simulated GPU time" in out
        assert "data movement" in out


class TestSample:
    def test_sample_writes_array(self, model_path, tmp_path, capsys):
        out_path = str(tmp_path / "samples.npy")
        assert main(["sample", model_path, "25", "-o", out_path, "--seed", "7"]) == 0
        samples = np.load(out_path)
        assert samples.shape == (25, 2)
        assert not np.isnan(samples).any()

    def test_sample_seed_reproducible(self, model_path, tmp_path):
        a_path = str(tmp_path / "a.npy")
        b_path = str(tmp_path / "b.npy")
        main(["sample", model_path, "10", "-o", a_path, "--seed", "3"])
        main(["sample", model_path, "10", "-o", b_path, "--seed", "3"])
        np.testing.assert_array_equal(np.load(a_path), np.load(b_path))


class TestOpt:
    IR_TEXT = (
        '"builtin.module"() ({\n'
        '  "func.func"() ({\n'
        '    %0 = "arith.constant"() {value = 2.0 : f64} : () -> f64\n'
        '    %1 = "arith.constant"() {value = 3.0 : f64} : () -> f64\n'
        '    %2 = "arith.addf"(%0, %1) : (f64, f64) -> f64\n'
        '    "func.return"(%2) : (f64) -> ()\n'
        '  }) {arg_types = [], result_types = [f64], sym_name = "f"} : () -> ()\n'
        '}) : () -> ()'
    )

    def test_opt_folds_constants(self, tmp_path, capsys):
        path = tmp_path / "m.mlir"
        path.write_text(self.IR_TEXT)
        assert main(["opt", str(path), "--pipeline", "canonicalize"]) == 0
        out = capsys.readouterr().out
        assert "5.0" in out
        assert "arith.addf" not in out

    def test_opt_unknown_pass(self, tmp_path, capsys):
        path = tmp_path / "m.mlir"
        path.write_text(self.IR_TEXT)
        assert main(["opt", str(path), "--pipeline", "frobnicate"]) == 1
        assert "unknown pass" in capsys.readouterr().err

    def test_opt_analysis_violation_is_clean_error(self, tmp_path, capsys):
        # An ERROR-severity finding under instrumentation must surface
        # as a one-line error and exit code 1, not a traceback.
        fixture = "tests/analysis/fixtures/buffer_safety_bug.mlir"
        assert main([
            "opt", fixture, "--pipeline", "canonicalize",
            "--verify-each", "every-pass",
        ]) == 1
        err = capsys.readouterr().err
        assert "buffer-safety.use-after-free" in err

    def test_opt_prints_accumulated_warnings(self, tmp_path, capsys):
        # WARNING-severity findings never abort, but they must be
        # echoed to stderr: a leaked alloc in a function that already
        # deallocates is a mid-phase buffer-safety warning.
        ir = (
            '"builtin.module"() ({\n'
            '  "func.func"() ({\n'
            '    %0 = "memref.alloc"() {memref_type = memref<4xf64>} : () -> memref<4xf64>\n'
            '    %1 = "memref.alloc"() {memref_type = memref<8xf64>} : () -> memref<8xf64>\n'
            '    "memref.dealloc"(%0) : (memref<4xf64>) -> ()\n'
            '    "func.return"() : () -> ()\n'
            '  }) {arg_types = [], result_types = [], sym_name = "f"} : () -> ()\n'
            '}) : () -> ()'
        )
        path = tmp_path / "leak.mlir"
        path.write_text(ir)
        assert main([
            "opt", str(path), "--pipeline", "cse",
            "--verify-each", "every-pass",
        ]) == 0
        assert "buffer-safety.leak" in capsys.readouterr().err

    def test_opt_timing_report(self, tmp_path, capsys):
        path = tmp_path / "m.mlir"
        path.write_text(self.IR_TEXT)
        assert main([
            "opt", str(path), "--pipeline", "cse,dce", "--timing", "--verify-each"
        ]) == 0
        captured = capsys.readouterr()
        assert "pass timing" in captured.err
