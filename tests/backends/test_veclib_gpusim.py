"""Tests for the vector math library and the GPU simulator substrate."""

import math

import numpy as np
import pytest

from repro.backends.cpu import veclib
from repro.gpusim import (
    DeviceBuffer,
    DeviceSpec,
    ExecutionProfile,
    GPUSimulator,
    OutOfDeviceMemory,
)


class TestVecLib:
    def test_vlog_matches_numpy(self):
        x = np.array([0.5, 1.0, 2.0])
        np.testing.assert_allclose(veclib.vlog(x), np.log(x))

    def test_vlog_edge_cases_silent(self):
        out = veclib.vlog(np.array([0.0, -1.0]))
        assert out[0] == -np.inf
        assert np.isnan(out[1])

    def test_vexp_overflow_silent(self):
        assert veclib.vexp(np.array([1e4]))[0] == np.inf

    def test_scalar_guards(self):
        assert veclib.slog(0.0) == -math.inf
        assert math.isnan(veclib.slog(-1.0))
        assert veclib.slog(math.e) == pytest.approx(1.0)
        assert veclib.sexp(1e4) == math.inf
        assert veclib.slog1p(-1.0) == -math.inf
        assert math.isnan(veclib.ssqrt(-1.0))

    @pytest.mark.parametrize("fn", ["log", "exp", "log1p", "sqrt"])
    def test_scalarized_matches_vectorized(self, fn):
        x = np.abs(np.random.default_rng(0).normal(size=32)) + 0.1
        np.testing.assert_allclose(
            veclib.scalarized(fn, x), veclib.VECTOR_FN[fn](x), rtol=1e-12
        )

    def test_scalarized_preserves_dtype(self):
        x = np.ones(8, dtype=np.float32)
        assert veclib.scalarized("log", x).dtype == np.float32


class TestDeviceModel:
    def test_transfer_time_scales_with_bytes(self):
        spec = DeviceSpec()
        small = spec.transfer_seconds(1024)
        large = spec.transfer_seconds(1024 * 1024)
        assert large > small
        assert small >= spec.pcie_latency

    def test_occupancy_block_sweep_optimum_near_64(self):
        """The paper's sweep found block size 64 preferable (V-A1)."""
        spec = DeviceSpec()
        n = 100_000
        compute = 0.05

        def simulated(block):
            grid = -(-n // block)
            return spec.launch_seconds(
                grid, block, compute, spec.default_registers_per_thread
            )

        times = {b: simulated(b) for b in (16, 32, 64, 128, 256, 512, 1024)}
        assert min(times, key=times.get) == 64

    def test_occupancy_bounds(self):
        spec = DeviceSpec()
        for block in (1, 32, 64, 1024):
            occ = spec.occupancy(block, 110)
            assert 0 < occ <= 1

    def test_subwarp_blocks_penalized(self):
        spec = DeviceSpec()
        assert spec.occupancy(8, 110) < spec.occupancy(32, 110)


class TestSimulator:
    def test_alloc_dealloc_accounting(self):
        sim = GPUSimulator()
        buf = sim.alloc((1024,), np.float32)
        assert sim.allocated_bytes == 4096
        sim.dealloc(buf)
        assert sim.allocated_bytes == 0

    def test_out_of_memory(self):
        sim = GPUSimulator(DeviceSpec(device_memory_bytes=1024))
        with pytest.raises(OutOfDeviceMemory):
            sim.alloc((1024,), np.float64)

    def test_memcpy_directions_enforced(self):
        sim = GPUSimulator()
        host = np.zeros(8, dtype=np.float32)
        dev = sim.alloc((8,), np.float32)
        sim.memcpy(dev, host, "h2d")
        sim.memcpy(host, dev, "d2h")
        with pytest.raises(TypeError):
            sim.memcpy(host, host, "h2d")
        with pytest.raises(TypeError):
            sim.memcpy(dev, dev, "d2h")
        with pytest.raises(ValueError):
            sim.memcpy(dev, host, "zigzag")

    def test_memcpy_moves_data(self):
        sim = GPUSimulator()
        host = np.arange(8, dtype=np.float32)
        dev = sim.alloc((8,), np.float32)
        sim.memcpy(dev, host, "h2d")
        back = np.zeros(8, dtype=np.float32)
        sim.memcpy(back, dev, "d2h")
        np.testing.assert_array_equal(back, host)

    def test_launch_runs_kernel_over_valid_threads(self):
        sim = GPUSimulator()
        dev = sim.alloc((10,), np.float64)

        def kernel(n, block, buf):
            lin = np.arange(n)
            buf[lin] = lin * 2.0

        sim.register_kernel("k", kernel)
        sim.launch("k", grid_size=2, block_size=8, valid_threads=10, args=[dev])
        np.testing.assert_array_equal(dev.data, np.arange(10) * 2.0)

    def test_launch_grid_must_cover_batch(self):
        sim = GPUSimulator()
        sim.register_kernel("k", lambda n, b: None)
        with pytest.raises(ValueError):
            sim.launch("k", grid_size=1, block_size=8, valid_threads=10, args=[])

    def test_unknown_kernel(self):
        sim = GPUSimulator()
        with pytest.raises(KeyError):
            sim.launch("nope", 1, 8, 4, [])

    def test_profile_accumulates_and_resets(self):
        sim = GPUSimulator()
        host = np.zeros(1024, dtype=np.float32)
        dev = sim.alloc((1024,), np.float32)
        sim.memcpy(dev, host, "h2d")
        sim.register_kernel("k", lambda n, b, buf: None)
        sim.launch("k", 16, 64, 1024, [dev])
        profile = sim.profile
        assert len(profile.transfers) == 1
        assert len(profile.launches) == 1
        assert profile.transfer_seconds > 0
        assert profile.compute_seconds > 0
        assert profile.total_seconds == pytest.approx(
            profile.transfer_seconds + profile.compute_seconds
        )
        sim.reset_profile()
        assert sim.profile.transfers == []

    def test_device_buffer_repr_and_props(self):
        buf = DeviceBuffer(np.zeros((2, 3), dtype=np.float64))
        assert buf.shape == (2, 3)
        assert buf.nbytes == 48
