"""Multi-stream GPU pipelining: schedule model and end-to-end behavior.

The overlapped timing model runs the recorded op stream through an
event-driven two-engine schedule (one copy engine, one compute engine,
per-stream program order, recorded event waits). These tests pin the
schedule's semantics on hand-built op records — where the exact
makespan is computable by inspection — then drive the compiled
:class:`GPUExecutable` to verify that multi-stream execution is
bit-identical to the serialized run and actually hides transfer time.
"""

import numpy as np
import pytest

from repro.compiler import CompilerOptions, compile_spn
from repro.diagnostics import OptionsError
from repro.gpusim import (
    EventRecord,
    ExecutionProfile,
    GPUSimulator,
    LaunchRecord,
    TransferRecord,
    WaitRecord,
)
from repro.spn import JointProbability

from ..conftest import make_gaussian_spn


def _h2d(seconds, stream, seq):
    return TransferRecord(
        direction="h2d", num_bytes=0, seconds=seconds, stream=stream, seq=seq
    )


def _kernel(seconds, stream, seq):
    return LaunchRecord(
        kernel="k",
        grid_size=1,
        block_size=64,
        measured_compute=seconds,
        simulated_seconds=seconds,
        stream=stream,
        seq=seq,
    )


class TestScheduleModel:
    def test_single_stream_makespan_equals_serialized(self):
        profile = ExecutionProfile(
            transfers=[_h2d(10.0, 0, 0), _h2d(5.0, 0, 2)],
            launches=[_kernel(7.0, 0, 1), _kernel(3.0, 0, 3)],
        )
        assert profile.serialized_seconds == pytest.approx(25.0)
        # One stream chains every op: the two views agree exactly.
        assert profile.makespan_seconds == pytest.approx(25.0)
        assert profile.overlap_fraction == pytest.approx(0.0)

    def test_two_streams_overlap_copy_with_compute(self):
        # stream 0: H2D(10) K(10); stream 1: H2D(10) K(10).
        # Copy engine: [0,10] s0, [10,20] s1.
        # Compute engine: s0 K at 10 -> [10,20]; s1 K at 20 -> [20,30].
        profile = ExecutionProfile(
            transfers=[_h2d(10.0, 0, 0), _h2d(10.0, 1, 1)],
            launches=[_kernel(10.0, 0, 2), _kernel(10.0, 1, 3)],
        )
        assert profile.serialized_seconds == pytest.approx(40.0)
        assert profile.makespan_seconds == pytest.approx(30.0)
        assert profile.overlap_seconds == pytest.approx(10.0)
        # 10 of the 20 serialized transfer seconds were hidden.
        assert profile.overlap_fraction == pytest.approx(0.5)
        assert profile.num_streams == 2

    def test_engines_do_not_overlap_within_one_engine(self):
        # Two transfers on different streams still serialize on the one
        # copy engine (a single PCIe link, not one per stream).
        profile = ExecutionProfile(
            transfers=[_h2d(10.0, 0, 0), _h2d(10.0, 1, 1)],
        )
        assert profile.makespan_seconds == pytest.approx(20.0)

    def test_stream_program_order_is_preserved(self):
        # A stream's own ops never reorder: the kernel issued after a
        # transfer on the same stream waits for it even if the compute
        # engine is free earlier.
        profile = ExecutionProfile(
            transfers=[_h2d(10.0, 0, 0)],
            launches=[_kernel(1.0, 0, 1)],
        )
        assert profile.makespan_seconds == pytest.approx(11.0)

    def test_event_wait_synchronizes_across_streams(self):
        # stream 0: H2D(10), record event; stream 1 waits on the event
        # before its kernel -> kernel starts at 10 even though stream 1
        # issued nothing before it.
        profile = ExecutionProfile(
            transfers=[_h2d(10.0, 0, 0)],
            launches=[_kernel(5.0, 1, 3)],
            events=[EventRecord(event_id=0, stream=0, seq=1)],
            waits=[WaitRecord(event_id=0, stream=1, seq=2)],
        )
        assert profile.makespan_seconds == pytest.approx(15.0)

    def test_overlapped_transfer_fraction_shrinks(self):
        profile = ExecutionProfile(
            transfers=[_h2d(10.0, 0, 0), _h2d(10.0, 1, 1)],
            launches=[_kernel(10.0, 0, 2), _kernel(10.0, 1, 3)],
        )
        assert profile.serial_transfer_fraction == pytest.approx(0.5)
        # Exposed transfer drops to 10 of the 30-second makespan.
        assert profile.overlapped_transfer_fraction == pytest.approx(1 / 3)


class TestSimulatorStreams:
    def test_records_stamp_stream_and_seq(self):
        sim = GPUSimulator()
        buf = sim.alloc((64,), np.float64)
        host = np.zeros(64)
        sim.memcpy(buf, host, "h2d")
        with sim.use_stream(sim.stream(1)):
            sim.memcpy(host, buf, "d2h")
        transfers = sim.profile.transfers
        assert [t.stream for t in transfers] == [0, 1]
        assert transfers[0].seq < transfers[1].seq

    def test_use_stream_restores_previous(self):
        sim = GPUSimulator()
        with sim.use_stream(1):
            assert sim.current_stream.stream_id == 1
            with sim.use_stream(2):
                assert sim.current_stream.stream_id == 2
            assert sim.current_stream.stream_id == 1
        assert sim.current_stream.stream_id == 0

    def test_reset_profile_resets_stream_state(self):
        sim = GPUSimulator()
        with sim.use_stream(3):
            pass
        sim.reset_profile()
        assert sim.current_stream.stream_id == 0
        buf = sim.alloc((8,), np.float64)
        sim.memcpy(buf, np.zeros(8), "h2d")
        assert sim.profile.transfers[0].seq == 0

    def test_event_record_and_wait(self):
        sim = GPUSimulator()
        event = sim.record_event(stream=0)
        sim.wait_event(event, stream=1)
        assert sim.profile.events[0].event_id == event.event_id
        assert sim.profile.waits[0].stream == 1


class TestPipelinedExecutable:
    @pytest.fixture(scope="class")
    def kernels(self):
        spn = make_gaussian_spn()
        query = JointProbability(batch_size=64, relative_error=1e-9)
        serial = compile_spn(
            spn, query, CompilerOptions(target="gpu", streams=1)
        ).executable
        piped = compile_spn(
            spn, query, CompilerOptions(target="gpu", streams=4)
        ).executable
        yield serial, piped
        serial.close()
        piped.close()

    @pytest.mark.parametrize("batch", [16, 255, 256, 257, 4096, 4099])
    def test_bit_identical_to_serialized(self, kernels, batch, rng):
        serial, piped = kernels
        inputs = rng.normal(size=(batch, 2))
        np.testing.assert_array_equal(
            piped.execute(inputs), serial.execute(inputs)
        )

    def test_pipeline_chunks_and_streams(self, kernels, rng):
        serial, piped = kernels
        inputs = rng.normal(size=(4096, 2))
        piped.execute(inputs)
        assert piped.last_pipeline_chunks >= 2 * piped.streams
        assert piped.last_profile.num_streams == piped.streams
        serial.execute(inputs)
        assert serial.last_pipeline_chunks == 1
        assert serial.last_profile.num_streams == 1

    def test_overlap_reduces_makespan(self, kernels, rng):
        serial, piped = kernels
        inputs = rng.normal(size=(8192, 2))
        piped.execute(inputs)
        profile = piped.last_profile
        assert profile.makespan_seconds < profile.serialized_seconds
        assert profile.overlap_fraction > 0.0
        assert piped.simulated_seconds() == pytest.approx(
            profile.makespan_seconds
        )

    def test_small_batch_runs_unsliced(self, kernels, rng):
        _, piped = kernels
        piped.execute(rng.normal(size=(32, 2)))
        assert piped.last_pipeline_chunks == 1

    def test_single_stream_makespan_matches_serialized(self, kernels, rng):
        serial, _ = kernels
        serial.execute(rng.normal(size=(2048, 2)))
        profile = serial.last_profile
        assert profile.makespan_seconds == pytest.approx(
            profile.serialized_seconds
        )

    def test_invalid_stream_count(self):
        with pytest.raises(OptionsError):
            CompilerOptions(target="gpu", streams=0)


class TestStreamsInFingerprint:
    def test_streams_change_cache_fingerprint(self):
        base = CompilerOptions(target="gpu", streams=1)
        piped = CompilerOptions(target="gpu", streams=4)
        assert base.cache_fingerprint() != piped.cache_fingerprint()

    def test_threads_change_cache_fingerprint(self):
        one = CompilerOptions(num_threads=1)
        four = CompilerOptions(num_threads=4)
        assert one.cache_fingerprint() != four.cache_fingerprint()
