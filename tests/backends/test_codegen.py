"""Tests for the CPU Python-codegen backend."""

import numpy as np
import pytest

from repro.backends.cpu.codegen import (
    CodeGenerator,
    CodegenError,
    generate_cpu_module,
    numpy_dtype,
)
from repro.dialects.arith import AddFOp, ConstantOp, MulFOp, SubFOp
from repro.dialects.func import FuncOp, ReturnOp
from repro.dialects.math_dialect import ExpOp, LogOp
from repro.dialects.memref import AllocOp, ConstantBufferOp, DimOp, LoadOp, StoreOp
from repro.dialects.scf import ForOp, YieldOp
from repro.ir import Builder, MemRefType, ModuleOp, VectorType, f32, f64, index
from repro.ir.types import i1, i64


def make_module():
    module = ModuleOp.build()
    return module, Builder.at_end(module.body)


class TestDtypeMapping:
    def test_float_types(self):
        assert numpy_dtype(f32) == np.float32
        assert numpy_dtype(f64) == np.float64

    def test_int_and_index(self):
        assert numpy_dtype(i64) == np.int64
        assert numpy_dtype(index) == np.int64
        assert numpy_dtype(i1) == np.bool_

    def test_log_type_uses_storage(self):
        from repro.dialects.lospn import LogType

        assert numpy_dtype(LogType(f32)) == np.float32


class TestGeneratedExecution:
    def test_scalar_arithmetic_function(self):
        module, b = make_module()
        in_t, out_t = MemRefType((1,), f64), MemRefType((1,), f64)
        fn = b.create(FuncOp, "f", [in_t, out_t], [])
        fb = Builder.at_end(fn.body)
        c0 = fb.create(ConstantOp, 0, index)
        x = fb.create(LoadOp, fn.body.arguments[0], [c0.result])
        two = fb.create(ConstantOp, 2.0, f64)
        doubled = fb.create(MulFOp, x.result, two.result)
        fb.create(StoreOp, doubled.result, fn.body.arguments[1], [c0.result])
        fb.create(ReturnOp, [])
        gen = generate_cpu_module(module)
        out = np.zeros(1)
        gen.get("f")(np.array([21.0]), out)
        assert out[0] == 42.0

    def test_loop_with_accumulator(self):
        module, b = make_module()
        in_t, out_t = MemRefType((None,), f64), MemRefType((1,), f64)
        fn = b.create(FuncOp, "total", [in_t, out_t], [])
        fb = Builder.at_end(fn.body)
        n = fb.create(DimOp, fn.body.arguments[0], 0)
        c0 = fb.create(ConstantOp, 0, index)
        c1 = fb.create(ConstantOp, 1, index)
        zero = fb.create(ConstantOp, 0.0, f64)
        loop = fb.create(ForOp, c0.result, n.result, c1.result, [zero.result])
        lb = Builder.at_end(loop.body_block)
        value = lb.create(LoadOp, fn.body.arguments[0], [loop.induction_var])
        acc = lb.create(AddFOp, loop.iter_args[0], value.result)
        lb.create(YieldOp, [acc.result])
        fb.create(StoreOp, loop.results[0], fn.body.arguments[1], [c0.result])
        fb.create(ReturnOp, [])
        gen = generate_cpu_module(module)
        out = np.zeros(1)
        gen.get("total")(np.array([1.0, 2.0, 3.5]), out)
        assert out[0] == 6.5

    def test_guarded_scalar_log(self):
        module, b = make_module()
        in_t, out_t = MemRefType((1,), f64), MemRefType((1,), f64)
        fn = b.create(FuncOp, "g", [in_t, out_t], [])
        fb = Builder.at_end(fn.body)
        c0 = fb.create(ConstantOp, 0, index)
        x = fb.create(LoadOp, fn.body.arguments[0], [c0.result])
        log = fb.create(LogOp, x.result)
        fb.create(StoreOp, log.result, fn.body.arguments[1], [c0.result])
        fb.create(ReturnOp, [])
        gen = generate_cpu_module(module)
        out = np.zeros(1)
        gen.get("g")(np.array([0.0]), out)
        assert out[0] == -np.inf  # libm semantics, no exception

    def test_constant_tables_are_globals(self):
        module, b = make_module()
        fn = b.create(FuncOp, "t", [MemRefType((1,), f64), MemRefType((1,), f64)], [])
        fb = Builder.at_end(fn.body)
        table = fb.create(ConstantBufferOp, np.array([10.0, 20.0, 30.0]), f64)
        c0 = fb.create(ConstantOp, 0, index)
        c2 = fb.create(ConstantOp, 2, index)
        v = fb.create(LoadOp, table.result, [c2.result])
        fb.create(StoreOp, v.result, fn.body.arguments[1], [c0.result])
        fb.create(ReturnOp, [])
        gen = generate_cpu_module(module)
        assert any(name.startswith("_tbl") for name in gen.namespace)
        out = np.zeros(1)
        gen.get("t")(np.zeros(1), out)
        assert out[0] == 30.0

    def test_unknown_op_rejected(self):
        from repro.ir import Operation

        module, b = make_module()
        fn = b.create(FuncOp, "bad", [], [])
        fb = Builder.at_end(fn.body)
        fb.insert(Operation(name="mystery.op"))
        fb.create(ReturnOp, [])
        with pytest.raises(CodegenError):
            generate_cpu_module(module)


class TestRegisterAllocation:
    def _chain_module(self, length=40):
        module, b = make_module()
        in_t, out_t = MemRefType((1,), f64), MemRefType((1,), f64)
        fn = b.create(FuncOp, "chain", [in_t, out_t], [])
        fb = Builder.at_end(fn.body)
        c0 = fb.create(ConstantOp, 0, index)
        value = fb.create(LoadOp, fn.body.arguments[0], [c0.result]).result
        one = fb.create(ConstantOp, 1.0, f64).result
        for _ in range(length):
            value = fb.create(AddFOp, value, one).result
        fb.create(StoreOp, value, fn.body.arguments[1], [c0.result])
        fb.create(ReturnOp, [])
        return module

    def test_linear_chain_reuses_registers(self):
        module = self._chain_module(40)
        gen = generate_cpu_module(module)
        # A 40-op chain where each value dies immediately needs only a
        # handful of names, not 40.
        assert gen.stats.registers_allocated < 10
        out = np.zeros(1)
        gen.get("chain")(np.array([2.0]), out)
        assert out[0] == 42.0

    def test_stats_populated(self):
        gen = generate_cpu_module(self._chain_module(10))
        assert gen.stats.functions == 1
        assert gen.stats.ir_operations > 10
        assert gen.stats.source_lines > 10
        assert gen.stats.values_assigned > 10

    def test_deterministic_output(self):
        a = generate_cpu_module(self._chain_module(20)).source
        b = generate_cpu_module(self._chain_module(20)).source
        assert a == b

    def test_live_across_loop_not_clobbered(self):
        """A value defined before a loop and used inside must keep its
        register for the whole loop, even if the loop body churns names."""
        module, b = make_module()
        in_t, out_t = MemRefType((None,), f64), MemRefType((1,), f64)
        fn = b.create(FuncOp, "f", [in_t, out_t], [])
        fb = Builder.at_end(fn.body)
        n = fb.create(DimOp, fn.body.arguments[0], 0)
        c0 = fb.create(ConstantOp, 0, index)
        c1 = fb.create(ConstantOp, 1, index)
        bias = fb.create(ConstantOp, 100.0, f64)  # live across the loop
        zero = fb.create(ConstantOp, 0.0, f64)
        loop = fb.create(ForOp, c0.result, n.result, c1.result, [zero.result])
        lb = Builder.at_end(loop.body_block)
        x = lb.create(LoadOp, fn.body.arguments[0], [loop.induction_var])
        t1 = lb.create(AddFOp, x.result, bias.result)
        t2 = lb.create(SubFOp, t1.result, x.result)  # t1 dies here
        acc = lb.create(AddFOp, loop.iter_args[0], t2.result)
        lb.create(YieldOp, [acc.result])
        fb.create(StoreOp, loop.results[0], fn.body.arguments[1], [c0.result])
        fb.create(ReturnOp, [])
        gen = generate_cpu_module(module)
        out = np.zeros(1)
        gen.get("f")(np.array([1.0, 2.0, 3.0]), out)
        assert out[0] == 300.0


class TestVectorRegisterReuse:
    def _vector_module(self):
        from repro.dialects.vector import LoadOp as VLoadOp, StoreOp as VStoreOp

        module, b = make_module()
        vec = VectorType((4,), f64)
        in_t, out_t = MemRefType((None,), f64), MemRefType((None,), f64)
        fn = b.create(FuncOp, "vf", [in_t, out_t], [])
        fb = Builder.at_end(fn.body)
        c0 = fb.create(ConstantOp, 0, index)
        x = fb.create(VLoadOp, fn.body.arguments[0], [c0.result], vec)
        doubled = fb.create(AddFOp, x.result, x.result)
        squared = fb.create(MulFOp, doubled.result, doubled.result)
        logged = fb.create(LogOp, squared.result)
        fb.create(VStoreOp, logged.result, fn.body.arguments[1], [c0.result])
        fb.create(ReturnOp, [])
        return module

    def test_out_parameter_used_at_reuse_mode(self):
        gen = generate_cpu_module(self._vector_module(), reuse_vector_registers=True)
        assert "out=" in gen.source
        assert "np.empty(4" in gen.source  # preallocated scratch

    def test_no_out_parameter_by_default(self):
        gen = generate_cpu_module(self._vector_module())
        assert "out=" not in gen.source

    def test_reuse_mode_matches_plain_mode(self):
        plain = generate_cpu_module(self._vector_module())
        reuse = generate_cpu_module(self._vector_module(), reuse_vector_registers=True)
        x = np.array([1.0, 2.0, 3.0, 4.0])
        out_a, out_b = np.zeros(4), np.zeros(4)
        plain.get("vf")(x, out_a)
        reuse.get("vf")(x, out_b)
        np.testing.assert_allclose(out_a, np.log((2 * x) ** 2))
        np.testing.assert_allclose(out_a, out_b)

    def test_views_never_used_as_out_targets(self):
        gen = generate_cpu_module(self._vector_module(), reuse_vector_registers=True)
        # vector.load produces a view; it must get an 'r' name, not 'v'.
        load_lines = [l for l in gen.source.splitlines() if "a0[" in l and "=" in l]
        assert load_lines
        assert all(l.strip().startswith("r") for l in load_lines)
