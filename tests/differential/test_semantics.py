"""Cross-backend semantic regression tests.

These pin the input-domain contracts every backend must implement
identically — NaN evidence means marginalization, out-of-domain
discrete evidence means probability zero — against the reference
evaluator, across all CPU vectorization modes and the GPU simulator.
Before the contracts were unified, compiled non-marginal kernels
propagated NaN and discrete leaves clamped out-of-range indices.
"""

import math

import numpy as np
import pytest

from repro.api import CPUCompiler, GPUCompiler
from repro.spn import Categorical, Gaussian, Histogram, Product, Sum
from repro.spn.inference import log_likelihood

from ..conftest import make_discrete_spn, make_gaussian_spn

VECTORIZE_MODES = ("off", "lanes", "batch")


def compilers(batch_size=8):
    for mode in VECTORIZE_MODES:
        yield f"cpu-{mode}", CPUCompiler(batch_size=batch_size, vectorize=mode)
    yield "gpu", GPUCompiler(batch_size=batch_size)


CONFIGS = list(compilers())
CONFIG_IDS = [label for label, _ in CONFIGS]


class TestNaNMeansMarginalized:
    """NaN evidence auto-routes to a marginal kernel on every backend."""

    @pytest.fixture(params=CONFIGS, ids=CONFIG_IDS)
    def compiler(self, request):
        return request.param[1]

    def test_partial_nan_matches_reference(self, compiler, rng):
        spn = make_gaussian_spn()
        x = rng.normal(size=(21, 2))
        x[3, 0] = np.nan
        x[7, 1] = np.nan
        x[11] = np.nan  # fully marginalized row: log-likelihood exactly 0
        result = compiler.log_likelihood(spn, x)
        reference = log_likelihood(spn, x)
        assert not np.isnan(result).any()
        np.testing.assert_allclose(result, reference, rtol=1e-5, atol=1e-5)
        assert result[11] == pytest.approx(0.0, abs=1e-6)

    def test_discrete_nan_matches_reference(self, compiler, rng):
        spn = make_discrete_spn()
        x = np.column_stack(
            [
                rng.integers(0, 3, size=13).astype(float),
                rng.uniform(-0.5, 4.5, size=13),
            ]
        )
        x[0, 0] = np.nan
        x[5, 1] = np.nan
        result = compiler.log_likelihood(spn, x)
        reference = log_likelihood(spn, x)
        assert not np.isnan(result).any()
        np.testing.assert_allclose(result, reference, rtol=1e-5, atol=1e-5)

    def test_nan_batch_does_not_poison_cache(self, rng):
        """After a NaN batch, fully-observed batches still use the
        non-marginal kernel and stay exact."""
        compiler = CPUCompiler(batch_size=8)
        spn = make_gaussian_spn()
        clean = rng.normal(size=(8, 2))
        with_nan = clean.copy()
        with_nan[0, 0] = np.nan
        before = compiler.log_likelihood(spn, clean)
        compiler.log_likelihood(spn, with_nan)
        after = compiler.log_likelihood(spn, clean)
        np.testing.assert_array_equal(before, after)


class TestOutOfDomainDiscrete:
    """Discrete evidence outside [0, K) has probability zero everywhere."""

    SPN = Sum(
        [
            Product([Categorical(0, [0.2, 0.5, 0.3]), Gaussian(1, 0.0, 1.0)]),
            Product([Categorical(0, [0.6, 0.3, 0.1]), Gaussian(1, 1.0, 2.0)]),
        ],
        [0.4, 0.6],
    )

    @pytest.mark.parametrize("value", [-1.0, -0.4, 3.0, 7.5])
    def test_reference_gives_zero_probability(self, value):
        x = np.array([[value, 0.5]])
        assert log_likelihood(self.SPN, x)[0] == -math.inf

    @pytest.mark.parametrize("label,compiler", CONFIGS, ids=CONFIG_IDS)
    def test_backends_agree_with_reference(self, label, compiler, rng):
        x = np.column_stack(
            [
                np.array([0.0, 1.0, 2.0, -1.0, 3.0, 2.9, -0.4, 99.0]),
                rng.normal(size=8),
            ]
        )
        result = compiler.log_likelihood(self.SPN, x)
        reference = log_likelihood(self.SPN, x)
        in_domain = np.isfinite(reference)
        np.testing.assert_array_equal(np.isneginf(result), ~in_domain)
        np.testing.assert_allclose(
            result[in_domain], reference[in_domain], rtol=1e-5, atol=1e-5
        )

    def test_fractional_values_truncate_to_bucket(self):
        compiler = CPUCompiler(batch_size=4)
        x = np.array([[1.5, 0.0], [2.9, 0.0]])
        result = compiler.log_likelihood(self.SPN, x)
        reference = log_likelihood(self.SPN, x)
        exact = log_likelihood(self.SPN, np.array([[1.0, 0.0], [2.0, 0.0]]))
        np.testing.assert_allclose(result, reference, rtol=1e-5, atol=1e-5)
        np.testing.assert_allclose(reference, exact)

    def test_histogram_out_of_range_gets_epsilon_floor(self, rng):
        spn = Product(
            [
                Histogram(0, [0.0, 1.0, 2.0], [0.75, 0.25]),
                Gaussian(1, 0.0, 1.0),
            ]
        )
        x = np.column_stack([np.array([-1.0, 0.5, 5.0]), rng.normal(size=3)])
        reference = log_likelihood(spn, x)
        assert np.isfinite(reference).all()  # epsilon floor, not -inf
        for label, compiler in compilers(batch_size=4):
            result = compiler.log_likelihood(spn, x)
            np.testing.assert_allclose(
                result, reference, rtol=1e-5, atol=1e-5, err_msg=label
            )

    def test_zero_probability_bucket_is_exactly_neg_inf(self, rng):
        spn = Product(
            [Categorical(0, [0.0, 1.0]), Gaussian(1, 0.0, 1.0)]
        )
        x = np.column_stack([np.zeros(3), rng.normal(size=3)])
        assert np.isneginf(log_likelihood(spn, x)).all()
        for label, compiler in compilers(batch_size=4):
            assert np.isneginf(compiler.log_likelihood(spn, x)).all(), label
