"""Oracle enforcement of the structure-suite accuracy budget.

The structure passes carry a semantic contract — CSE is exact,
prune/compress stay within the accuracy budget over the modeled input
domain — and :meth:`DifferentialOracle.check_structure_case` /
``python -m repro fuzz --structure-opt`` are the machinery that
enforces it across the execution-configuration matrix. These tests
cover the clean path, the modeled-domain input projection, and the
injected-violation path (a deliberately unsound pruning bound must be
caught, shrunk and dumped as a reproducer).
"""

import numpy as np

from repro.spn import Gaussian, Histogram, JointProbability, Product, Sum
from repro.testing.generators import Case
from repro.testing.oracle import (
    DifferentialOracle,
    clamp_to_modeled_domain,
    DEFAULT_STRUCTURE_BUDGET,
)
from repro.tools.cli import main as cli_main


def _case(spn, inputs, num_features):
    return Case(
        seed=0,
        index=0,
        spn=spn,
        num_features=num_features,
        query=JointProbability(batch_size=inputs.shape[0]),
        inputs=inputs,
    )


def _bimodal_spn():
    return Sum(
        [Gaussian(0, -3.0, 0.5), Gaussian(0, 3.0, 0.5)], [0.95, 0.05]
    )


class TestClampToModeledDomain:
    def test_gaussian_features_clipped_to_six_sigma(self):
        spn = Product([Gaussian(0, 0.0, 1.0), Gaussian(1, 2.0, 0.5)])
        x = np.array([[100.0, -50.0], [0.5, 2.0]])
        clamped = clamp_to_modeled_domain(spn, x)
        np.testing.assert_allclose(clamped[0], [6.0, -1.0])
        np.testing.assert_allclose(clamped[1], [0.5, 2.0])

    def test_nan_evidence_passes_through(self):
        spn = Product([Gaussian(0, 0.0, 1.0), Gaussian(1, 0.0, 1.0)])
        x = np.array([[np.nan, 42.0]])
        clamped = clamp_to_modeled_domain(spn, x)
        assert np.isnan(clamped[0, 0])
        assert clamped[0, 1] == 6.0

    def test_histogram_edges_strictly_inside_in_f32(self):
        spn = Histogram(0, [0.0, 1.0, 2.0], [0.4, 0.6])
        x = np.array([[-5.0], [7.0]])
        clamped = clamp_to_modeled_domain(spn, x)
        low, high = clamped[0, 0], clamped[1, 0]
        assert 0.0 < low < high < 2.0
        # One f32 round-trip keeps the values strictly inside the range.
        assert 0.0 < np.float32(low) and np.float32(high) < np.float32(2.0)

    def test_dtype_preserved(self):
        spn = Gaussian(0, 0.0, 1.0)
        x = np.array([[30.0]], dtype=np.float32)
        assert clamp_to_modeled_domain(spn, x).dtype == np.float32


class TestCheckStructureCase:
    def test_clean_on_prunable_mixture(self, tmp_path, rng):
        case = _case(
            _bimodal_spn(),
            rng.normal(0.0, 4.0, size=(16, 1)).astype(np.float32),
            num_features=1,
        )
        oracle = DifferentialOracle(artifact_dir=str(tmp_path))
        divergences = oracle.check_structure_case(case, "cse,prune")
        assert divergences == []

    def test_support_covering_component_never_pruned(self, tmp_path, rng):
        # The 5% component is the only cover of the right mode; inputs
        # there would show log-likelihood collapse if it were dropped.
        case = _case(
            _bimodal_spn(),
            np.array([[3.0], [2.5], [-3.0]], dtype=np.float32),
            num_features=1,
        )
        oracle = DifferentialOracle(artifact_dir=str(tmp_path))
        assert oracle.check_structure_case(case, "prune") == []

    def test_unsound_prune_bound_is_caught(self, tmp_path, monkeypatch, rng):
        import repro.compiler.structure.prune as prune_mod

        # Sabotage the soundness gate: every drop looks free, so the
        # pass prunes the sole cover of category 1 and the likelihood
        # there collapses far past the budget. (Categorical features are
        # not subject to the modeled-domain input projection, so the
        # discriminating input survives enforcement.)
        monkeypatch.setattr(
            prune_mod, "sum_perturbation_bound", lambda *args: 0.0
        )
        from repro.spn import Categorical

        spn = Sum(
            [Categorical(0, [1.0, 0.0]), Categorical(0, [0.0, 1.0])],
            [0.95, 0.05],
        )
        case = _case(
            spn,
            np.array([[1.0], [0.0]], dtype=np.float32),
            num_features=1,
        )
        oracle = DifferentialOracle(artifact_dir=str(tmp_path))
        divergences = oracle.check_structure_case(case, "prune")
        assert divergences
        worst = divergences[0]
        assert "structure[prune]" in worst.config
        assert worst.reproducer_path is not None
        assert worst.max_gap > DEFAULT_STRUCTURE_BUDGET

    def test_cse_suite_checked_exactly(self, tmp_path, rng):
        shared = Product([Gaussian(0, 0.0, 1.0), Gaussian(1, 1.0, 2.0)])
        spn = Sum(
            [
                Product([Gaussian(0, 0.0, 1.0), Gaussian(1, 1.0, 2.0)]),
                shared,
            ],
            [0.5, 0.5],
        )
        case = _case(
            spn,
            rng.normal(0.0, 100.0, size=(8, 2)).astype(np.float32),
            num_features=2,
        )
        oracle = DifferentialOracle(artifact_dir=str(tmp_path))
        # Exact suite: no budget slack, arbitrary (unclamped) inputs.
        assert oracle.check_structure_case(case, "cse") == []


class TestStructureFuzz:
    def test_short_run_is_clean(self, tmp_path):
        oracle = DifferentialOracle(artifact_dir=str(tmp_path))
        report = oracle.fuzz_structure(4, seed=0)
        assert report.ok, report.summary()
        assert report.cases_run == 4
        assert report.configs_compared > 0

    def test_cli_entry_point(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("SPNC_ARTIFACT_DIR", str(tmp_path))
        code = cli_main(["fuzz", "2", "--seed", "0", "--structure-opt"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 divergence(s)" in out
