"""Tests for the differential-testing subsystem itself.

Covers the seeded generators (validity, reproducibility, adversarial
coverage), the oracle's comparison rules and tolerance calibration, a
short clean fuzz run over every backend configuration, the
injected-bug detection path (shrinking + reproducer dump) and the
``python -m repro fuzz`` CLI entry point.
"""

import json
import os

import numpy as np
import pytest

import repro.compiler.emitters as emitters
from repro.spn.inference import log_likelihood
from repro.spn.nodes import Categorical, Gaussian, Histogram, num_nodes
from repro.spn.serialization import deserialize_from_file
from repro.spn.validity import assert_valid
from repro.testing.generators import Case, CaseGenerator, SPNGenerator
from repro.testing.oracle import (
    DEFAULT_CONFIGS,
    DifferentialOracle,
    IRFuzzer,
    compute_tolerance,
    outputs_match,
    run_interpreter,
)
from repro.tools.cli import main as cli_main


class TestSPNGenerator:
    def test_same_seed_same_structure(self):
        a, na = SPNGenerator(42).spn()
        b, nb = SPNGenerator(42).spn()
        assert na == nb
        assert num_nodes(a) == num_nodes(b)

    def test_generated_spns_are_valid(self):
        for seed in range(25):
            spn, _ = SPNGenerator(seed).spn()
            assert_valid(spn)

    @pytest.mark.parametrize("shape", ["balanced", "deep", "wide"])
    def test_every_shape_is_valid(self, shape):
        for seed in range(5):
            spn, _ = SPNGenerator(seed).spn(shape=shape)
            assert_valid(spn)

    def test_leaf_kinds_all_reachable(self):
        gen = SPNGenerator(0)
        kinds = {type(gen.leaf(0)) for _ in range(50)}
        assert kinds == {Gaussian, Categorical, Histogram}

    def test_multi_head_shares_feature_count(self):
        roots, num_features = SPNGenerator(3).multi_head(3)
        assert len(roots) == 3
        for root in roots:
            assert_valid(root)


class TestCaseGenerator:
    def test_cases_are_reproducible(self):
        a = CaseGenerator(seed=7).case(11)
        b = CaseGenerator(seed=7).case(11)
        assert np.array_equal(a.inputs, b.inputs, equal_nan=True)
        assert a.query == b.query

    def test_independent_of_generation_order(self):
        direct = CaseGenerator(seed=7).case(11)
        generator = CaseGenerator(seed=7)
        generator.case(0), generator.case(5)
        again = generator.case(11)
        assert np.array_equal(direct.inputs, again.inputs, equal_nan=True)

    def test_nan_cases_compile_marginal_kernels(self):
        for case in CaseGenerator(seed=0).cases(60):
            if np.isnan(case.inputs).any():
                assert case.query.support_marginal

    def test_adversarial_coverage(self):
        """Over a modest budget, the generator must hit NaN evidence,
        out-of-domain values, tail batch sizes and both input dtypes."""
        cases = list(CaseGenerator(seed=0).cases(80))
        assert any(np.isnan(c.inputs).any() for c in cases)
        assert any(c.inputs.shape[0] == 1 for c in cases)
        assert any(
            c.inputs.shape[0] == c.query.batch_size + 1 for c in cases
        )
        assert {c.query.input_dtype for c in cases} == {"f32", "f64"}
        assert any(c.query.relative_error > 0 for c in cases)
        assert any(np.nanmax(np.abs(c.inputs)) >= 1e4 for c in cases)


class TestComparisonRules:
    def test_both_neg_inf_agree(self):
        tol = np.array([1e-9])
        assert outputs_match(
            np.array([-np.inf]), np.array([-np.inf]), tol
        ).all()

    def test_one_sided_neg_inf_diverges(self):
        tol = np.array([np.inf])  # even infinite tolerance can't excuse it
        assert not outputs_match(
            np.array([-np.inf]), np.array([-3.0]), tol
        ).any()

    def test_nan_diverges(self):
        tol = np.array([np.inf])
        assert not outputs_match(
            np.array([np.nan]), np.array([-3.0]), tol
        ).any()

    def test_within_tolerance_agrees(self):
        tol = np.array([1e-3, 1e-3])
        assert outputs_match(
            np.array([-1.0, -2.0]), np.array([-1.0005, -2.0]), tol
        ).all()

    def test_tolerance_scales_with_log_magnitude(self):
        case = CaseGenerator(seed=0).case(0)
        small = compute_tolerance(
            case.spn, case.query, np.array([-10.0])
        )
        large = compute_tolerance(
            case.spn, case.query, np.array([-1.0e8])
        )
        assert large[0] > small[0]


class TestDifferentialOracle:
    def test_short_fuzz_run_is_clean(self, tmp_path):
        oracle = DifferentialOracle(artifact_dir=str(tmp_path))
        report = oracle.fuzz(6, seed=0)
        assert report.ok, report.summary()
        assert report.cases_run == 6
        assert report.configs_compared == 6 * len(DEFAULT_CONFIGS)

    def test_interpreter_config_matches_reference(self):
        case = CaseGenerator(seed=1).case(2)
        observed = run_interpreter(case, row_limit=4)
        reference = log_likelihood(
            case.spn,
            case.inputs[:4].astype(np.float64),
            marginal=case.query.support_marginal,
        )
        tolerance = compute_tolerance(case.spn, case.query, reference)
        assert outputs_match(observed, reference, tolerance).all()

    def test_injected_bug_is_caught_and_shrunk(self, tmp_path, monkeypatch):
        """A deliberate semantic defect (perturbed Gaussian normalization
        constant) must be detected, shrunk to a minimal witness and
        dumped as a replayable reproducer."""
        monkeypatch.setattr(emitters, "LOG_2PI", emitters.LOG_2PI + 1e-3)
        oracle = DifferentialOracle(
            configs=[DEFAULT_CONFIGS[0]], artifact_dir=str(tmp_path)
        )
        report = oracle.fuzz(6, seed=0, ir_share=0)
        assert not report.ok
        divergence = report.divergences[0]
        original = CaseGenerator(seed=0).case(divergence.case.index)
        # Shrunk: a single input row, no more nodes than the original.
        assert divergence.case.inputs.shape[0] == 1
        assert num_nodes(divergence.case.spn) <= num_nodes(original.spn)

        path = divergence.reproducer_path
        assert path is not None and path.startswith(str(tmp_path))
        files = set(os.listdir(path))
        assert {"model.spnb", "inputs.npy", "diagnostic.json",
                "module.mlir", "README.txt"} <= files
        with open(os.path.join(path, "diagnostic.json")) as handle:
            diagnostic = json.load(handle)
        assert diagnostic["code"] == "differential-divergence"
        # The dump is self-contained: model + inputs replay the failure.
        spn, query = deserialize_from_file(os.path.join(path, "model.spnb"))
        inputs = np.load(os.path.join(path, "inputs.npy"))
        replayed = oracle.run_config(
            DEFAULT_CONFIGS[0],
            Case(seed=0, index=0, spn=spn, num_features=inputs.shape[1],
                 query=query, inputs=inputs),
        )
        reference = log_likelihood(
            spn, inputs.astype(np.float64), marginal=query.support_marginal
        )
        tolerance = compute_tolerance(spn, query, reference)
        assert not outputs_match(replayed, reference, tolerance).all()

    def test_backend_crash_reported_as_divergence(self, tmp_path):
        case = CaseGenerator(seed=0).case(0)
        oracle = DifferentialOracle(
            configs=[DEFAULT_CONFIGS[0]], artifact_dir=str(tmp_path)
        )

        def boom(spec, case):
            raise RuntimeError("backend exploded")

        oracle.run_config = boom
        divergences = oracle.check_case(case)
        assert len(divergences) == 1
        assert "backend exploded" in divergences[0].describe()


class TestIRFuzzer:
    def test_roundtrip_and_permutations_clean(self, tmp_path):
        fuzzer = IRFuzzer(artifact_dir=str(tmp_path))
        failures = []
        for case in CaseGenerator(seed=0).cases(4):
            failures.extend(fuzzer.fuzz_case(case))
        assert failures == []

    def test_parse_failure_is_reported(self, tmp_path, monkeypatch):
        import repro.testing.oracle as oracle_module
        from repro.testing.oracle import _lowered_module

        def injected(text):
            raise ValueError("injected parse failure")

        monkeypatch.setattr(oracle_module, "parse_module", injected)
        fuzzer = IRFuzzer(artifact_dir=str(tmp_path))
        case = CaseGenerator(seed=0).case(0)
        module = _lowered_module(case, "off")
        failures = fuzzer.check_roundtrip(case, module, "off")
        assert len(failures) == 1
        assert "round-trip" in failures[0]
        assert "injected parse failure" in failures[0]


class TestFuzzCLI:
    def test_flag_alias_and_clean_exit(self, capsys):
        code = cli_main(["--fuzz", "3", "--seed", "0", "--no-ir",
                         "--configs", "cpu-o2-batch"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 divergence(s)" in out

    def test_divergence_exits_nonzero(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(emitters, "LOG_2PI", emitters.LOG_2PI + 1e-3)
        monkeypatch.setenv("SPNC_ARTIFACT_DIR", str(tmp_path))
        code = cli_main(["fuzz", "2", "--seed", "0", "--no-ir",
                         "--configs", "cpu-o0-scalar"])
        out = capsys.readouterr().out
        assert code == 1
        assert "DIVERGENCE" in out
        assert any(os.scandir(tmp_path))  # reproducer landed

    def test_unknown_config_rejected(self, capsys):
        assert cli_main(["fuzz", "1", "--configs", "nope"]) == 2
