"""Differential tests for the non-joint query modalities.

Compiled kernels (CPU off/lanes/batch and the simulated GPU) against the
reference implementations in :mod:`repro.spn`:

- MPE: scores agree at oracle tolerances and completed states either
  match exactly or are tie-equivalent (rescoring the compiled completion
  achieves the reference max score);
- conditional: log P(Q | E) agrees, NaN rows (zero-probability
  evidence) agree as NaN;
- expectation: posterior moments agree elementwise in linear space with
  identical NaN (off-scope) patterns;
- sampling: the same seed is bit-identical, different seeds differ,
  observed evidence passes through bit-exactly, and sampled values pass
  chi-squared goodness-of-fit checks against the model marginals;
- sharding: every modality is bit-identical between ``num_threads=1``
  and ``num_threads=4`` (the PR-7 worker sharding must not change
  results);
- NaN routing: joint queries with NaN evidence reroute to a
  marginal-supporting kernel, while a NaN on a *conditional query
  variable* is a structured ``query-variable-nan`` error — on the
  strict and on the degradable path alike.
"""

import math

import numpy as np
import pytest

from repro.api import CPUCompiler, GPUCompiler
from repro.diagnostics import ErrorCode, ExecutionError
from repro.spn import inference
from repro.spn.mpe import max_log_likelihood
from repro.spn.mpe import mpe as reference_mpe

from ..conftest import make_discrete_spn, make_gaussian_spn, make_shared_spn

# One compiler per backend configuration the oracle exercises: scalar,
# lane-vectorized and whole-batch-vectorized CPU, plus the simulated GPU.
CONFIGS = (
    ("cpu-off", CPUCompiler, {"vectorize": "off"}),
    ("cpu-lanes", CPUCompiler, {"vectorize": "lanes"}),
    ("cpu-batch", CPUCompiler, {"vectorize": "batch"}),
    ("gpu", GPUCompiler, {}),
)

MODELS = {
    "gaussian": make_gaussian_spn,
    "discrete": make_discrete_spn,
    "shared": make_shared_spn,
}

SCORE_RTOL, SCORE_ATOL = 1e-4, 1e-6


def make_compiler(name, batch_size=32, **extra):
    _, cls, options = next(cfg for cfg in CONFIGS if cfg[0] == name)
    return cls(batch_size=batch_size, **{**options, **extra})


def evidence_for(model_name, rng, n=24, nan_share=0.4):
    """Evidence with NaN holes, one all-NaN row, one fully observed row."""
    if model_name == "discrete":
        data = np.column_stack(
            [
                rng.integers(0, 3, size=n).astype(np.float64),
                rng.uniform(0.0, 4.0, size=n),
            ]
        )
    else:
        data = rng.normal(size=(n, 2))
    mask = rng.random((n, 2)) < nan_share
    data[mask] = np.nan
    data[0] = np.nan  # unconditional row
    if np.isnan(data[1]).any():  # fully observed row
        data[1] = 0.5
    return data


@pytest.fixture(params=[name for name, *_ in CONFIGS])
def config(request):
    return request.param


class TestMPEAgreement:
    @pytest.mark.parametrize("model_name", sorted(MODELS))
    def test_compiled_matches_reference(self, config, model_name, rng):
        spn = MODELS[model_name]()
        evidence = evidence_for(model_name, rng)
        compiler = make_compiler(config)
        completions, scores = compiler.mpe(spn, evidence)
        ref_completions, ref_scores = reference_mpe(spn, evidence)
        np.testing.assert_allclose(
            scores, ref_scores, rtol=SCORE_RTOL, atol=SCORE_ATOL
        )
        # Observed evidence passes through bit-exactly.
        observed = ~np.isnan(evidence)
        assert np.array_equal(completions[observed], evidence[observed])
        # States: exact, or tie-equivalent — rescoring the compiled
        # completion must achieve the reference max-product score.
        exact = np.all(
            (completions == ref_completions)
            | (np.isnan(completions) & np.isnan(ref_completions)),
            axis=1,
        )
        if not exact.all():
            rescored = max_log_likelihood(spn, completions[~exact])
            np.testing.assert_allclose(
                rescored,
                ref_scores[~exact],
                rtol=SCORE_RTOL,
                atol=SCORE_ATOL,
            )

    def test_fully_observed_is_identity(self, config, rng):
        spn = make_gaussian_spn()
        data = rng.normal(size=(8, 2))
        compiler = make_compiler(config)
        completions, scores = compiler.mpe(spn, data)
        assert np.array_equal(completions, data)
        np.testing.assert_allclose(
            scores,
            max_log_likelihood(spn, data),
            rtol=SCORE_RTOL,
            atol=SCORE_ATOL,
        )


class TestConditionalAgreement:
    @pytest.mark.parametrize("query_variables", [(0,), (1,), (0, 1)])
    def test_compiled_matches_reference(self, config, query_variables, rng):
        spn = make_gaussian_spn()
        data = rng.normal(size=(24, 2))
        # NaN only on evidence features (marginalized out).
        evidence_columns = [v for v in (0, 1) if v not in query_variables]
        for column in evidence_columns:
            data[rng.random(24) < 0.5, column] = np.nan
        compiler = make_compiler(config)
        observed = compiler.conditional_log_likelihood(spn, data, query_variables)
        reference = inference.conditional_log_likelihood(
            spn, data, query_variables
        )
        # Conditional tolerance is the joint tolerance doubled (the
        # result is a difference of two kernel evaluations).
        np.testing.assert_allclose(
            observed, reference, rtol=2e-4, atol=2e-6, equal_nan=True
        )

    def test_discrete_model(self, config, rng):
        spn = make_discrete_spn()
        data = np.column_stack(
            [
                rng.integers(0, 3, size=24).astype(np.float64),
                rng.uniform(0.0, 4.0, size=24),
            ]
        )
        data[rng.random(len(data)) < 0.5, 1] = np.nan  # evidence NaNs only
        compiler = make_compiler(config)
        observed = compiler.conditional_log_likelihood(spn, data, (0,))
        reference = inference.conditional_log_likelihood(spn, data, (0,))
        np.testing.assert_allclose(
            observed, reference, rtol=2e-4, atol=2e-6, equal_nan=True
        )


class TestExpectationAgreement:
    @pytest.mark.parametrize("moment", [1, 2])
    @pytest.mark.parametrize("model_name", sorted(MODELS))
    def test_compiled_matches_reference(self, config, model_name, moment, rng):
        spn = MODELS[model_name]()
        evidence = evidence_for(model_name, rng)
        compiler = make_compiler(config)
        observed = compiler.expectation(spn, evidence, moment=moment)
        reference = inference.expectation(spn, evidence, moment=moment)
        assert np.array_equal(np.isnan(observed), np.isnan(reference))
        np.testing.assert_allclose(
            observed, reference, rtol=1e-4, atol=1e-6, equal_nan=True
        )


class TestSamplingDeterminism:
    def test_same_seed_bit_identical(self, config, rng):
        spn = make_gaussian_spn()
        evidence = evidence_for("gaussian", rng)
        compiler = make_compiler(config)
        first = compiler.sample(spn, evidence, seed=11)
        second = compiler.sample(spn, evidence, seed=11)
        assert np.array_equal(first, second)

    def test_different_seeds_differ(self, config, rng):
        spn = make_gaussian_spn()
        evidence = np.full((16, 2), np.nan)
        compiler = make_compiler(config)
        assert not np.array_equal(
            compiler.sample(spn, evidence, seed=1),
            compiler.sample(spn, evidence, seed=2),
        )

    def test_observed_evidence_passes_through(self, config, rng):
        spn = make_gaussian_spn()
        evidence = evidence_for("gaussian", rng)
        compiler = make_compiler(config)
        samples = compiler.sample(spn, evidence, seed=3)
        observed = ~np.isnan(evidence)
        assert np.array_equal(samples[observed], evidence[observed])
        assert np.isfinite(samples).all()


# 99.9th-percentile chi-squared critical values by degrees of freedom:
# a deterministic (seeded) draw failing this indicates a real sampler
# defect, not noise.
CHI2_CRIT = {2: 13.816, 3: 16.266, 5: 20.515}


def chi_squared(counts, probabilities):
    expected = probabilities * counts.sum()
    return float(((counts - expected) ** 2 / expected).sum())


class TestSamplingGoodnessOfFit:
    N = 4000

    def draw(self, spn, num_features=2, seed=29):
        compiler = make_compiler("cpu-off", batch_size=1024)
        evidence = np.full((self.N, num_features), np.nan)
        return compiler.sample(spn, evidence, seed=seed)

    def test_categorical_marginal(self):
        spn = make_discrete_spn()
        samples = self.draw(spn)
        # Mixture marginal of variable 0:
        # 0.6*[0.2, 0.5, 0.3] + 0.4*[0.7, 0.2, 0.1]
        probabilities = np.array([0.4, 0.38, 0.22])
        counts = np.bincount(samples[:, 0].astype(int), minlength=3)
        assert chi_squared(counts, probabilities) < CHI2_CRIT[2]

    def test_histogram_marginal(self):
        spn = make_discrete_spn()
        samples = self.draw(spn)
        values = samples[:, 1]
        assert (values >= 0.0).all() and (values < 4.0).all()
        # Unit-width buckets: bucket masses are the mixed densities.
        probabilities = 0.6 * np.array([0.1, 0.2, 0.3, 0.4]) + 0.4 * np.array(
            [0.4, 0.3, 0.2, 0.1]
        )
        counts = np.bincount(np.floor(values).astype(int), minlength=4)
        assert chi_squared(counts, probabilities) < CHI2_CRIT[3]

    def test_gaussian_marginal(self):
        spn = make_gaussian_spn()
        samples = self.draw(spn)[:, 0]  # 0.3*N(0,1) + 0.7*N(2,1)

        def mixture_cdf(x):
            return 0.3 * 0.5 * (1 + math.erf(x / math.sqrt(2))) + 0.7 * 0.5 * (
                1 + math.erf((x - 2.0) / math.sqrt(2))
            )

        edges = [-1.0, 0.0, 1.0, 2.0, 3.0]
        cdf = [0.0] + [mixture_cdf(edge) for edge in edges] + [1.0]
        probabilities = np.diff(cdf)
        counts = np.histogram(samples, bins=[-np.inf] + edges + [np.inf])[0]
        assert chi_squared(counts, probabilities) < CHI2_CRIT[5]


class TestShardingBitIdentity:
    """PR-7 worker sharding must not change any modality's results."""

    @pytest.fixture
    def compilers(self):
        # batch_size=8 over 32 rows => 4 chunks for the sharded kernel.
        return (
            CPUCompiler(batch_size=8, num_threads=1),
            CPUCompiler(batch_size=8, num_threads=4),
        )

    def test_mpe(self, compilers, rng):
        spn = make_gaussian_spn()
        evidence = evidence_for("gaussian", rng, n=32)
        single, sharded = compilers
        c1, s1 = single.mpe(spn, evidence)
        c4, s4 = sharded.mpe(spn, evidence)
        assert np.array_equal(s1, s4)
        assert np.array_equal(c1, c4, equal_nan=True)

    def test_conditional(self, compilers, rng):
        spn = make_gaussian_spn()
        data = rng.normal(size=(32, 2))
        data[rng.random(32) < 0.5, 0] = np.nan
        single, sharded = compilers
        assert np.array_equal(
            single.conditional_log_likelihood(spn, data, (1,)),
            sharded.conditional_log_likelihood(spn, data, (1,)),
            equal_nan=True,
        )

    def test_sample(self, compilers, rng):
        spn = make_gaussian_spn()
        evidence = evidence_for("gaussian", rng, n=32)
        single, sharded = compilers
        assert np.array_equal(
            single.sample(spn, evidence, seed=5),
            sharded.sample(spn, evidence, seed=5),
        )

    def test_expectation(self, compilers, rng):
        spn = make_gaussian_spn()
        evidence = evidence_for("gaussian", rng, n=32)
        single, sharded = compilers
        assert np.array_equal(
            single.expectation(spn, evidence, moment=2),
            sharded.expectation(spn, evidence, moment=2),
            equal_nan=True,
        )


class TestNaNRouting:
    """Pin the evidence-NaN vs query-NaN composition rules."""

    def test_joint_nan_reroutes_to_marginal_kernel(self, rng):
        spn = make_gaussian_spn()
        compiler = CPUCompiler(batch_size=16, support_marginal=False)
        clean = rng.normal(size=(8, 2))
        holes = clean.copy()
        holes[::2, 0] = np.nan
        np.testing.assert_allclose(
            compiler.log_likelihood(spn, clean),
            inference.log_likelihood(spn, clean),
            rtol=1e-4,
            atol=1e-6,
        )
        np.testing.assert_allclose(
            compiler.log_likelihood(spn, holes),
            inference.log_likelihood(spn, holes),
            rtol=1e-4,
            atol=1e-6,
        )
        # Two distinct kernels: the cheap fully-observed one and the
        # marginal-supporting variant the NaN batch rerouted to.
        assert len(compiler._cache) == 2

    def test_conditional_evidence_nan_marginalizes_without_reroute(self, rng):
        spn = make_gaussian_spn()
        compiler = CPUCompiler(batch_size=16)
        data = rng.normal(size=(8, 2))
        data[::2, 0] = np.nan  # evidence feature only
        observed = compiler.conditional_log_likelihood(spn, data, (1,))
        reference = inference.conditional_log_likelihood(spn, data, (1,))
        np.testing.assert_allclose(
            observed, reference, rtol=2e-4, atol=2e-6, equal_nan=True
        )
        # Exactly one compiled kernel: no silent reroute to a marginal
        # *joint* kernel (which would compute the wrong query).
        assert len(compiler._cache) == 1
        ((_, fingerprint),) = compiler._cache.keys()
        assert fingerprint[2] == "conditional"

    def test_conditional_query_nan_is_structured_error(self, rng):
        spn = make_gaussian_spn()
        compiler = CPUCompiler(batch_size=16)
        data = rng.normal(size=(8, 2))
        data[3, 1] = np.nan  # NaN on the query variable
        with pytest.raises(ExecutionError) as excinfo:
            compiler.conditional_log_likelihood(spn, data, (1,))
        diagnostic = excinfo.value.diagnostic
        assert diagnostic.code == ErrorCode.QUERY_NAN
        assert diagnostic.detail["first_bad_sample"] == 3
        assert diagnostic.detail["query_variables"] == [1]

    def test_query_nan_not_swallowed_by_degradation(self, rng):
        # fallback="interpret" degrades compiler defects, never caller
        # errors: the NaN query variable must still raise, not silently
        # fall back to a rung that would reject it anyway.
        spn = make_gaussian_spn()
        compiler = CPUCompiler(batch_size=16, fallback="interpret")
        data = rng.normal(size=(8, 2))
        data[0, 0] = np.nan
        with pytest.raises(ExecutionError) as excinfo:
            compiler.conditional_log_likelihood(spn, data, (0,))
        assert excinfo.value.diagnostic.code == ErrorCode.QUERY_NAN

    def test_other_modalities_keep_nan_semantics(self, rng):
        # MPE/sample/expectation consume NaN intrinsically: no
        # support_marginal flip, one kernel per modality.
        spn = make_gaussian_spn()
        compiler = CPUCompiler(batch_size=16)
        evidence = rng.normal(size=(8, 2))
        evidence[::2, 1] = np.nan
        compiler.mpe(spn, evidence)
        compiler.sample(spn, evidence, seed=0)
        compiler.expectation(spn, evidence)
        kinds = sorted(fingerprint[2] for _, fingerprint in compiler._cache)
        assert kinds == ["expectation", "mpe", "sample"]
        for _, fingerprint in compiler._cache:
            # astuple field 2 is support_marginal: stays False for all.
            assert fingerprint[3][2] is False
