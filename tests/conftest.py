"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.spn import Categorical, Gaussian, Histogram, JointProbability, Product, Sum


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def make_gaussian_spn():
    """The running example: a 2-feature mixture of factorizations (Fig. 1)."""
    return Sum(
        [
            Product([Gaussian(0, 0.0, 1.0), Gaussian(1, 1.0, 2.0)]),
            Product([Gaussian(0, 2.0, 1.0), Gaussian(1, -1.0, 1.0)]),
        ],
        [0.3, 0.7],
    )


def make_discrete_spn():
    """A 2-feature SPN with categorical + histogram leaves."""
    return Sum(
        [
            Product(
                [
                    Categorical(0, [0.2, 0.5, 0.3]),
                    Histogram(1, [0.0, 1.0, 2.0, 3.0, 4.0], [0.1, 0.2, 0.3, 0.4]),
                ]
            ),
            Product(
                [
                    Categorical(0, [0.7, 0.2, 0.1]),
                    Histogram(1, [0.0, 1.0, 2.0, 3.0, 4.0], [0.4, 0.3, 0.2, 0.1]),
                ]
            ),
        ],
        [0.6, 0.4],
    )


def make_shared_spn():
    """An SPN with a shared sub-DAG (leaf used by both mixture components)."""
    shared = Gaussian(0, 0.5, 1.5)
    return Sum(
        [
            Product([shared, Gaussian(1, 1.0, 1.0)]),
            Product([shared, Gaussian(1, -2.0, 0.5)]),
        ],
        [0.4, 0.6],
    )


def make_deep_spn(depth: int = 8):
    """A deep alternating sum/product chain over 2 features."""
    left = Gaussian(0, 0.0, 1.0)
    right = Gaussian(1, 0.0, 1.0)
    node = Product([left, right])
    for level in range(depth):
        alt = Product(
            [Gaussian(0, float(level), 1.0), Gaussian(1, -float(level), 1.0)]
        )
        node = Sum([node, alt], [0.5, 0.5])
    return node


@pytest.fixture
def gaussian_spn():
    return make_gaussian_spn()


@pytest.fixture
def discrete_spn():
    return make_discrete_spn()


@pytest.fixture
def shared_spn():
    return make_shared_spn()


@pytest.fixture
def gaussian_inputs(rng):
    return rng.normal(0.0, 1.5, size=(97, 2)).astype(np.float32)


@pytest.fixture
def discrete_inputs(rng):
    return np.column_stack(
        [
            rng.integers(0, 3, size=97).astype(np.float32),
            rng.uniform(-0.5, 4.5, size=97).astype(np.float32),
        ]
    )


@pytest.fixture
def query():
    return JointProbability(batch_size=16)
