"""Integration tests: full application pipelines end to end."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import CPUCompiler, GPUCompiler
from repro.compiler import CompilerOptions, compile_spn
from repro.data import (
    SpeakerDatasetConfig,
    generate_speaker_dataset,
    train_speaker_spns,
)
from repro.spn import (
    GraphStatistics,
    JointProbability,
    RatSpnConfig,
    build_rat_spn,
    classify,
    log_likelihood,
    serialize,
    deserialize,
)

from repro.testing.generators import random_spns


@pytest.fixture(scope="module")
def speaker_setup():
    config = SpeakerDatasetConfig(
        num_speakers=3,
        train_samples_per_speaker=250,
        clean_samples=120,
        noisy_samples=120,
        seed=3,
    )
    dataset = generate_speaker_dataset(config)
    spns = train_speaker_spns(dataset)
    return dataset, spns


class TestSpeakerIdentification:
    """Application 1: the paper's speaker-ID workflow (Section V-A)."""

    def test_learned_spns_have_paper_like_shape(self, speaker_setup):
        _, spns = speaker_setup
        for spn in spns:
            stats = GraphStatistics(spn)
            assert stats.num_features == 26
            assert stats.gaussian_share > 0.3

    @pytest.mark.parametrize(
        "options",
        [
            CompilerOptions(),
            CompilerOptions(vectorize=True, superword_factor=4),
            CompilerOptions(target="gpu"),
        ],
        ids=["cpu-scalar", "cpu-vectorized", "gpu"],
    )
    def test_compiled_clean_classification_matches_reference(
        self, speaker_setup, options
    ):
        dataset, spns = speaker_setup
        reference = classify(spns, dataset.clean.astype(np.float64))
        compiled_scores = np.stack(
            [
                compile_spn(spn, JointProbability(batch_size=64), options).executable(
                    dataset.clean
                )
                for spn in spns
            ],
            axis=1,
        )
        predictions = np.argmax(compiled_scores, axis=1)
        # f32 kernels may flip ties; demand near-perfect agreement.
        agreement = (predictions == reference).mean()
        assert agreement > 0.99

    def test_noisy_marginalized_pipeline(self, speaker_setup):
        dataset, spns = speaker_setup
        query = JointProbability(batch_size=64, support_marginal=True)
        for spn in spns[:1]:
            ref = log_likelihood(spn, dataset.noisy.astype(np.float64))
            for options in (
                CompilerOptions(),
                CompilerOptions(vectorize=True, superword_factor=4),
                CompilerOptions(target="gpu"),
            ):
                out = compile_spn(spn, query, options).executable(dataset.noisy)
                np.testing.assert_allclose(out, ref, rtol=5e-3, atol=5e-4)

    def test_serialization_hand_off(self, speaker_setup):
        dataset, spns = speaker_setup
        payload = serialize(spns[0], JointProbability(batch_size=64))
        restored, query = deserialize(payload)
        ref = log_likelihood(spns[0], dataset.clean[:32].astype(np.float64))
        out = compile_spn(restored, query).executable(dataset.clean[:32])
        np.testing.assert_allclose(out, ref, rtol=5e-3, atol=5e-4)


class TestRatSpnPipeline:
    """Application 2: RAT-SPN compilation stress (Section V-B, scaled)."""

    @pytest.fixture(scope="class")
    def rat(self):
        return build_rat_spn(
            RatSpnConfig(
                num_features=16,
                num_classes=2,
                depth=2,
                num_repetitions=3,
                num_sums=3,
                num_input_distributions=2,
                seed=9,
            )
        )

    def test_partitioned_cpu_and_gpu_agree(self, rat, rng):
        spn = rat[0]
        x = rng.normal(size=(64, 16)).astype(np.float32)
        ref = log_likelihood(spn, x.astype(np.float64))
        cpu = compile_spn(
            spn,
            JointProbability(batch_size=32),
            CompilerOptions(max_partition_size=60, vectorize=True, superword_factor=4),
        )
        gpu = compile_spn(
            spn,
            JointProbability(batch_size=32),
            CompilerOptions(target="gpu", max_partition_size=60),
        )
        assert cpu.num_tasks > 1
        np.testing.assert_allclose(cpu.executable(x), ref, rtol=5e-3, atol=5e-4)
        np.testing.assert_allclose(gpu.executable(x), ref, rtol=5e-3, atol=5e-4)

    def test_ten_class_compilation(self, rat, rng):
        x = rng.normal(size=(32, 16)).astype(np.float32)
        compiler = CPUCompiler(batch_size=32)
        scores = np.stack(
            [compiler.log_likelihood(spn, x) for spn in rat], axis=1
        )
        expected = np.stack(
            [log_likelihood(spn, x.astype(np.float64)) for spn in rat], axis=1
        )
        np.testing.assert_allclose(scores, expected, rtol=5e-3, atol=5e-4)


class TestPropertyCompiledEqualsReference:
    """Property: for random valid SPNs, every backend equals the oracle."""

    @settings(max_examples=15, deadline=None)
    @given(random_spns())
    def test_cpu_scalar(self, spn_and_features):
        spn, num_features = spn_and_features
        rng = np.random.default_rng(21)
        x = rng.uniform(0.0, 1.9, size=(9, num_features)).astype(np.float32)
        ref = log_likelihood(spn, x.astype(np.float64))
        out = compile_spn(spn, JointProbability(batch_size=4)).executable(x)
        np.testing.assert_allclose(out, ref, rtol=5e-3, atol=5e-4)

    @settings(max_examples=10, deadline=None)
    @given(random_spns())
    def test_cpu_vectorized(self, spn_and_features):
        spn, num_features = spn_and_features
        rng = np.random.default_rng(22)
        x = rng.uniform(0.0, 1.9, size=(11, num_features)).astype(np.float32)
        ref = log_likelihood(spn, x.astype(np.float64))
        out = compile_spn(
            spn,
            JointProbability(batch_size=4),
            CompilerOptions(vectorize=True, superword_factor=1),
        ).executable(x)
        np.testing.assert_allclose(out, ref, rtol=5e-3, atol=5e-4)

    @settings(max_examples=10, deadline=None)
    @given(random_spns())
    def test_gpu(self, spn_and_features):
        spn, num_features = spn_and_features
        rng = np.random.default_rng(23)
        x = rng.uniform(0.0, 1.9, size=(9, num_features)).astype(np.float32)
        ref = log_likelihood(spn, x.astype(np.float64))
        out = compile_spn(
            spn, JointProbability(batch_size=4), CompilerOptions(target="gpu")
        ).executable(x)
        np.testing.assert_allclose(out, ref, rtol=5e-3, atol=5e-4)
