#!/usr/bin/env python
"""Extending the compiler: a custom analysis + rewrite pass over LoSPN.

SPNC is built on an MLIR-style infrastructure, so new passes slot into
the pipeline like the built-in ones. This example adds two:

1. an *analysis* that reports the operation mix of a LoSPN kernel (how a
   compiler engineer would size partitions or estimate register
   pressure), and
2. a *rewrite pattern* that strength-reduces `mul(x, x)` in log space —
   `log x + log x` — into `2 * log x` … expressed on LoSPN as replacing
   the self-multiplication with an add of the value with itself and then
   demonstrating the greedy pattern driver (the built-in canonicalizer
   later folds further).

Run:  python examples/custom_pass.py
"""

from collections import Counter

import numpy as np

from repro import Gaussian, JointProbability, Product, Sum
from repro.compiler.frontend import build_hispn_module
from repro.compiler.lower_to_lospn import lower_to_lospn
from repro.dialects import lospn
from repro.ir import Pass, PassManager, RewritePattern, apply_patterns_greedily, print_op, verify
from repro.spn import log_likelihood


class OperationMixAnalysis(Pass):
    """Counts LoSPN operations per kind (an analysis pass)."""

    name = "lospn-op-mix"

    def __init__(self):
        super().__init__()
        self.counts = Counter()

    def run(self, op):
        for nested in op.walk():
            if nested.dialect == "lo_spn":
                self.counts[nested.op_name] += 1


class FuseSelfMultiply(RewritePattern):
    """Rewrite mul(x, x) into add(x, x): in log space a probability
    squared is its log doubled, and add-of-same-value is cheaper to
    vectorize than a second multiplication chain."""

    op_name = lospn.MulOp.name

    def match_and_rewrite(self, op, rewriter):
        if op.operands[0] is not op.operands[1]:
            return False
        if not lospn.is_log_type(op.results[0].type):
            return False
        builder = rewriter.builder_before(op)
        doubled = builder.create(lospn.AddOp, op.operands[0], op.operands[1])
        # NOTE: in log space lo_spn.mul == float add, so this rewrite is
        # *not* semantics-preserving for lo_spn.add (which is logsumexp);
        # we only demonstrate driver mechanics on a synthetic kernel and
        # revert below. Real patterns must prove equivalence!
        rewriter.replace_op(op, [doubled.result])
        return True


def main():
    spn = Sum(
        [
            Product([Gaussian(0, 0.0, 1.0), Gaussian(1, 1.0, 2.0)]),
            Product([Gaussian(0, 2.0, 1.0), Gaussian(1, -1.0, 1.0)]),
        ],
        [0.4, 0.6],
    )
    module = lower_to_lospn(build_hispn_module(spn, JointProbability(batch_size=32)))
    verify(module)

    analysis = OperationMixAnalysis()
    PassManager().add(analysis).run(module)
    print("LoSPN operation mix:")
    for name, count in sorted(analysis.counts.items()):
        print(f"  {name:28s} {count}")

    # Build a tiny synthetic kernel exhibiting mul(x, x) and run the
    # custom pattern through the greedy driver.
    from repro.ir import Builder, ModuleOp, TensorType, f32

    ct = lospn.LogType(f32)
    demo = ModuleOp.build()
    body = lospn.BodyOp.build(
        [], []
    )  # free-standing body op for demonstration
    demo.body.append(body)
    bb = Builder.at_end(body.body_block)
    c = bb.create(lospn.ConstantOp, -0.5, ct)
    squared = bb.create(lospn.MulOp, c.result, c.result)
    bb.create(lospn.YieldOp, [squared.result])

    print("\nbefore the custom pattern:")
    print(print_op(demo))
    changed = apply_patterns_greedily(demo, [FuseSelfMultiply()])
    print(f"\nafter (changed={changed}):")
    print(print_op(demo))

    reference = log_likelihood(spn, np.array([[0.1, -0.2]]))
    print(f"\nreference inference still available: {reference[0]:.4f}")


if __name__ == "__main__":
    main()
