#!/usr/bin/env python
"""Application 2: Random (RAT-)SPNs as a compiler stress test (paper §V-B).

Builds a RAT-SPN over image-like data, trains its weights with EM, and
explores the two compile-time knobs the paper investigates: the maximum
graph-partition size and the optimization level. Prints the compile-time
vs execution-time trade-off table the user would consult to pick a
configuration (the paper picks 25k/-O1 for CPU, 10k/-O1 for GPU).

Run:  python examples/rat_spn_stress.py
"""

import time

import numpy as np

from repro import CompilerOptions, JointProbability, compile_spn
from repro.data import ImageDatasetConfig, generate_image_dataset
from repro.spn import GraphStatistics, RatSpnConfig, build_rat_spn, train_rat_spn


def main():
    config = RatSpnConfig(
        num_features=64,
        num_classes=3,
        depth=3,
        num_repetitions=4,
        num_sums=6,
        num_input_distributions=3,
        seed=11,
    )
    print("constructing RAT-SPN ...")
    roots = build_rat_spn(config)
    stats = GraphStatistics(roots[0])
    print(
        f"  per-class graph: {stats.num_nodes} nodes "
        f"({stats.num_sums} sums, {stats.num_products} products, "
        f"{stats.num_leaves} leaves)"
    )

    images = generate_image_dataset(
        ImageDatasetConfig(num_classes=3, side=8, train_per_class=120, test_samples=2048)
    )
    print("training weights with EM ...")
    train_rat_spn(roots, images.train, images.train_labels, em_iterations=2)

    spn = roots[0]
    inputs = images.test
    query = JointProbability(batch_size=inputs.shape[0])

    print("\npartition-size sweep (CPU, -O1):")
    print(f"  {'max size':>9} {'tasks':>6} {'compile':>9} {'execute':>9}")
    for psize in (400, 1500, 6000, 20000):
        start = time.perf_counter()
        result = compile_spn(
            spn, query, CompilerOptions(max_partition_size=psize, vectorize=True)
        )
        compile_s = time.perf_counter() - start
        start = time.perf_counter()
        result.executable(inputs)
        exec_s = time.perf_counter() - start
        print(
            f"  {psize:>9} {result.num_tasks:>6} {compile_s:>8.2f}s {exec_s:>8.3f}s"
        )

    print("\noptimization-level sweep (CPU, partition size 2500):")
    print(f"  {'level':>9} {'compile':>9} {'execute':>9}")
    for opt in (0, 1, 2, 3):
        options = CompilerOptions(
            max_partition_size=2500, vectorize=True, opt_level=opt
        )
        start = time.perf_counter()
        result = compile_spn(spn, query, options)
        compile_s = time.perf_counter() - start
        start = time.perf_counter()
        result.executable(inputs)
        exec_s = time.perf_counter() - start
        print(f"  {'-O' + str(opt):>9} {compile_s:>8.2f}s {exec_s:>8.3f}s")

    print("\nclassifying the test set with the compiled kernels (-O1, 2500):")
    options = CompilerOptions(max_partition_size=2500, vectorize=True)
    start = time.perf_counter()
    scores = np.stack(
        [compile_spn(r, query, options).executable(inputs) for r in roots], axis=1
    )
    total = time.perf_counter() - start
    accuracy = (np.argmax(scores, axis=1) == images.test_labels).mean()
    print(f"  accuracy {accuracy:.3f} over {inputs.shape[0]} images "
          f"(compile+run {total:.1f}s for {len(roots)} class kernels)")


if __name__ == "__main__":
    main()
