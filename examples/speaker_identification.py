#!/usr/bin/env python
"""Application 1: robust automatic speaker identification (paper §V-A).

Reproduces the paper's first evaluation workflow end to end:

1. generate speech-like data for several speakers (26 features),
2. learn one SPN per speaker with LearnSPN (the SPFlow role),
3. compile each SPN for the CPU (vectorized) and the simulated GPU,
4. identify speakers on clean samples and on noisy samples with
   marginalized missing features, and
5. compare throughput against the SPFlow-style Python baseline.

Run:  python examples/speaker_identification.py
"""

import time

import numpy as np

from repro import CPUCompiler, GPUCompiler
from repro.baselines import log_likelihood_python
from repro.data import SpeakerDatasetConfig, generate_speaker_dataset, train_speaker_spns
from repro.spn import GraphStatistics


def identify(compiler, spns, samples, labels, name):
    for spn in spns:  # compile up front so the timing is execution only
        compiler.compile(spn)
    start = time.perf_counter()
    scores = np.stack([compiler.log_likelihood(spn, samples) for spn in spns], axis=1)
    elapsed = time.perf_counter() - start
    predictions = np.argmax(scores, axis=1)
    accuracy = (predictions == labels).mean()
    per_sample = elapsed / samples.shape[0] * 1e6
    print(
        f"  {name:18s} accuracy {accuracy:6.3f}   "
        f"{per_sample:8.2f} us/sample (wall, incl. all speakers)"
    )
    return accuracy


def main():
    print("generating speech-like data and training per-speaker SPNs ...")
    dataset = generate_speaker_dataset(
        SpeakerDatasetConfig(
            num_speakers=4,
            train_samples_per_speaker=800,
            clean_samples=4096,
            noisy_samples=4096,
            seed=5,
        )
    )
    spns = train_speaker_spns(dataset)
    for i, spn in enumerate(spns):
        stats = GraphStatistics(spn)
        print(
            f"  speaker {i}: {stats.num_nodes} nodes "
            f"({stats.gaussian_share:.0%} Gaussian leaves, depth {stats.depth})"
        )

    cpu = CPUCompiler(batch_size=4096, vectorize=True)
    cpu_marginal = CPUCompiler(batch_size=4096, vectorize=True, support_marginal=True)
    gpu = GPUCompiler(batch_size=64)

    print("\nclean speech identification:")
    identify(cpu, spns, dataset.clean, dataset.clean_labels, "SPNC CPU (AVX2)")
    identify(gpu, spns, dataset.clean, dataset.clean_labels, "SPNC GPU (sim)")
    sim = sum(gpu.simulated_seconds(spn) for spn in spns)
    print(f"  {'':18s} simulated GPU device time: "
          f"{sim / dataset.clean.shape[0] * 1e6:.2f} us/sample")

    print("\nnoisy speech identification (marginalized missing features):")
    identify(cpu_marginal, spns, dataset.noisy, dataset.noisy_labels, "SPNC CPU (AVX2)")

    print("\nmulti-head kernel (all speakers in one compiled kernel):")
    multi = CPUCompiler(batch_size=4096, vectorize=True)
    multi.compile(list(spns))  # compile once up front
    start = time.perf_counter()
    predictions = multi.classify(spns, dataset.clean)
    elapsed = time.perf_counter() - start
    accuracy = (predictions == dataset.clean_labels).mean()
    print(f"  {'SPNC multi-head':18s} accuracy {accuracy:6.3f}   "
          f"{elapsed / dataset.clean.shape[0] * 1e6:8.2f} us/sample")

    # Baseline probe: interpreted Python inference on a subsample.
    probe = dataset.clean[:128].astype(np.float64)
    start = time.perf_counter()
    for spn in spns:
        log_likelihood_python(spn, probe)
    per_sample = (time.perf_counter() - start) / probe.shape[0] * 1e6
    print(f"\nSPFlow-style Python baseline: {per_sample:.1f} us/sample "
          "(all speakers, 128-sample probe)")
    print("done.")


if __name__ == "__main__":
    main()
