#!/usr/bin/env python
"""Quickstart: build the paper's example SPN, compile it, run inference.

Walks the full SPNC flow on the Fig. 1 example network and prints the
intermediate representations at every stage — the HiSPN query (Fig. 2),
the LoSPN kernel (Fig. 3) and the CPU-lowered loop nest (Fig. 4) — before
executing the compiled kernel and checking it against the reference
NumPy inference.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CompilerOptions, Gaussian, JointProbability, Product, Sum, compile_spn
from repro.spn import log_likelihood


def build_example_spn():
    """The example SPN of the paper's Fig. 1: a 2-feature mixture."""
    return Sum(
        children=[
            Product([Gaussian(0, 0.0, 1.0), Gaussian(1, 1.0, 2.0)]),
            Product([Gaussian(0, 2.0, 1.0), Gaussian(1, -1.0, 1.0)]),
        ],
        weights=[0.3, 0.7],
    )


def main():
    spn = build_example_spn()
    query = JointProbability(batch_size=96)

    # collect_ir keeps a textual dump of each pipeline stage.
    result = compile_spn(
        spn, query, CompilerOptions(vectorize=True, superword_factor=4, collect_ir=True)
    )

    for stage in ("frontend", "lower-to-lospn", "cpu-lowering"):
        banner = {
            "frontend": "HiSPN (cf. paper Fig. 2)",
            "lower-to-lospn": "LoSPN (cf. paper Fig. 3)",
            "cpu-lowering": "CPU loop nest (cf. paper Fig. 4)",
        }[stage]
        print(f"\n{'=' * 72}\n{banner}\n{'=' * 72}")
        print(result.ir_dumps[stage])

    print(f"\n{'=' * 72}\nGenerated kernel (Python-ISA object code, excerpt)\n{'=' * 72}")
    print("\n".join(result.executable.source.splitlines()[:25]))

    rng = np.random.default_rng(0)
    inputs = rng.normal(0.0, 1.5, size=(1000, 2)).astype(np.float32)
    compiled = result.executable(inputs)
    reference = log_likelihood(spn, inputs.astype(np.float64))

    print(f"\ncompiled log-likelihoods (first 5): {compiled[:5]}")
    print(f"reference log-likelihoods (first 5): {reference[:5]}")
    print(f"max abs deviation: {np.max(np.abs(compiled - reference)):.2e}")
    print(f"compile stages: { {k: f'{v * 1e3:.1f}ms' for k, v in result.stage_seconds.items()} }")
    assert np.allclose(compiled, reference, rtol=2e-3, atol=1e-5)
    print("\nOK: compiled kernel matches the reference inference.")


if __name__ == "__main__":
    main()
